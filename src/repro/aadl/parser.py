"""Recursive-descent parser for the textual AADL subset.

The grammar covered is the subset the paper's translation consumes (and that
the case studies exercise): packages, component types and implementations of
every category, features (data / event / event data ports, data, subprogram
and bus accesses, parameters), subcomponents, port and access connections,
modes and mode transitions, property associations (including record values
such as ``Input_Time``, list values, references and ``applies to`` clauses),
and property-set declarations (recorded but not interpreted).

The parser is deliberately forgiving about constructs outside this subset:
sections it does not interpret (``flows``, ``calls``, ``annex`` blocks) are
skipped with a balanced scan so that larger industrial models still parse.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .errors import AadlSyntaxError, SourceLocation
from .lexer import Token, TokenKind, tokenize
from .model import (
    AadlModel,
    AadlPackage,
    AccessKind,
    BusAccess,
    ComponentCategory,
    ComponentImplementation,
    ComponentType,
    Connection,
    ConnectionEnd,
    ConnectionKind,
    DataAccess,
    Feature,
    Mode,
    ModeTransition,
    Parameter,
    Port,
    PortDirection,
    PortKind,
    PropertySetDeclaration,
    Subcomponent,
    SubprogramAccess,
)
from .properties import (
    BooleanValue,
    ClassifierValue,
    EnumerationValue,
    IntegerValue,
    ListValue,
    PropertyAssociation,
    PropertyMap,
    PropertyValue,
    RangeValue,
    RealValue,
    RecordValue,
    ReferenceValue,
    StringValue,
)

_CATEGORY_KEYWORDS = {
    "system",
    "process",
    "thread",
    "subprogram",
    "data",
    "processor",
    "memory",
    "bus",
    "device",
    "abstract",
    "virtual",
}

_TIME_UNITS = {"ps", "ns", "us", "ms", "sec", "min", "hr"}
_OTHER_UNITS = {"bits", "bytes", "kbyte", "mbyte", "gbyte", "hz", "khz", "mhz", "ghz", "mips"}


class Parser:
    """Parser state over the token stream."""

    def __init__(self, tokens: List[Token], filename: str = "<aadl>") -> None:
        self.tokens = tokens
        self.index = 0
        self.filename = filename

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.END_OF_FILE:
            self.index += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind is TokenKind.END_OF_FILE

    def error(self, message: str, token: Optional[Token] = None) -> AadlSyntaxError:
        token = token or self.peek()
        return AadlSyntaxError(f"{message} (found {token})", token.location)

    def expect_punct(self, symbol: str) -> Token:
        token = self.peek()
        if not token.is_punct(symbol):
            raise self.error(f"expected {symbol!r}")
        return self.advance()

    def expect_keyword(self, *keywords: str) -> Token:
        token = self.peek()
        if not token.is_keyword(*keywords):
            raise self.error(f"expected keyword {' or '.join(keywords)}")
        return self.advance()

    def expect_identifier(self) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.IDENTIFIER:
            raise self.error("expected an identifier")
        return self.advance()

    def accept_keyword(self, *keywords: str) -> Optional[Token]:
        if self.peek().is_keyword(*keywords):
            return self.advance()
        return None

    def accept_punct(self, symbol: str) -> Optional[Token]:
        if self.peek().is_punct(symbol):
            return self.advance()
        return None

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse_model(self) -> AadlModel:
        model = AadlModel()
        while not self.at_end():
            token = self.peek()
            if token.is_keyword("package"):
                model.add_package(self.parse_package())
            elif token.is_keyword("property"):
                model.add_property_set(self.parse_property_set())
            else:
                raise self.error("expected 'package' or 'property set'")
        return model

    def parse_package(self) -> AadlPackage:
        start = self.expect_keyword("package")
        name = self.parse_qualified_name()
        package = AadlPackage(name=name, location=start.location)
        self.accept_keyword("public")
        while not self.at_end():
            token = self.peek()
            if token.is_keyword("end"):
                self.advance()
                # optional repeated package name
                if self.peek().kind is TokenKind.IDENTIFIER:
                    self.parse_qualified_name()
                self.expect_punct(";")
                return package
            if token.is_keyword("private"):
                self.advance()
                continue
            if token.is_keyword("with"):
                self.advance()
                package.imports.append(self.parse_qualified_name())
                while self.accept_punct(","):
                    package.imports.append(self.parse_qualified_name())
                self.expect_punct(";")
                continue
            if token.is_keyword("properties"):
                self.advance()
                for association in self.parse_property_associations():
                    package.properties.add(association)
                continue
            if token.is_keyword("annex"):
                self._skip_annex()
                continue
            category, is_implementation = self._peek_classifier_header()
            if category is None:
                raise self.error("expected a component classifier declaration")
            if is_implementation:
                package.add_implementation(self.parse_component_implementation(category))
            else:
                package.add_type(self.parse_component_type(category))
        raise self.error("unterminated package (missing 'end')")

    def parse_property_set(self) -> PropertySetDeclaration:
        start = self.expect_keyword("property")
        self.expect_keyword("set")
        name = self.expect_identifier().text
        self.expect_keyword("is")
        declarations = {}
        # Record raw declaration text per declared name; contents are not
        # interpreted (the standard property sets are built in, see stdlib).
        while not self.at_end():
            if self.peek().is_keyword("end"):
                self.advance()
                if self.peek().kind is TokenKind.IDENTIFIER:
                    self.advance()
                self.expect_punct(";")
                return PropertySetDeclaration(name=name, declarations=declarations, location=start.location)
            decl_tokens: List[str] = []
            decl_name: Optional[str] = None
            while not self.at_end() and not self.peek().is_punct(";"):
                token = self.advance()
                if decl_name is None and token.kind is TokenKind.IDENTIFIER:
                    decl_name = token.text
                decl_tokens.append(token.text)
            self.accept_punct(";")
            if decl_name:
                declarations[decl_name] = " ".join(decl_tokens)
        raise self.error("unterminated property set (missing 'end')")

    # ------------------------------------------------------------------
    # classifiers
    # ------------------------------------------------------------------
    def _peek_classifier_header(self) -> Tuple[Optional[ComponentCategory], bool]:
        """Look ahead for ``category [group] [implementation]``."""
        token = self.peek()
        if token.kind is not TokenKind.IDENTIFIER or token.lowered not in _CATEGORY_KEYWORDS:
            return None, False
        keyword = token.lowered
        offset = 1
        if keyword == "virtual":
            second = self.peek(1)
            keyword = f"virtual {second.lowered}"
            offset = 2
        elif keyword in ("thread", "subprogram") and self.peek(1).is_keyword("group"):
            keyword = f"{keyword} group"
            offset = 2
        category = ComponentCategory.from_keyword(keyword)
        is_implementation = self.peek(offset).is_keyword("implementation")
        return category, is_implementation

    def _consume_category(self) -> ComponentCategory:
        token = self.expect_identifier()
        keyword = token.lowered
        if keyword == "virtual":
            keyword = f"virtual {self.expect_identifier().lowered}"
        elif keyword in ("thread", "subprogram") and self.peek().is_keyword("group"):
            self.advance()
            keyword = f"{keyword} group"
        return ComponentCategory.from_keyword(keyword)

    def parse_component_type(self, category: Optional[ComponentCategory] = None) -> ComponentType:
        start = self.peek()
        if category is None:
            category = self._consume_category()
        else:
            self._consume_category()
        name = self.expect_identifier().text
        extends = None
        if self.accept_keyword("extends"):
            extends = self.parse_qualified_name()
        component = ComponentType(name=name, category=category, extends=extends, location=start.location)

        while not self.at_end():
            token = self.peek()
            if token.is_keyword("end"):
                self.advance()
                self.expect_identifier()
                self.expect_punct(";")
                return component
            if token.is_keyword("features"):
                self.advance()
                self._parse_features(component)
                continue
            if token.is_keyword("properties"):
                self.advance()
                for association in self.parse_property_associations():
                    component.properties.add(association)
                continue
            if token.is_keyword("flows"):
                self.advance()
                self._skip_section()
                continue
            if token.is_keyword("modes"):
                self.advance()
                self._skip_section()
                continue
            if token.is_keyword("annex"):
                self._skip_annex()
                continue
            raise self.error(f"unexpected token in component type {name!r}")
        raise self.error(f"unterminated component type {name!r}")

    def parse_component_implementation(
        self, category: Optional[ComponentCategory] = None
    ) -> ComponentImplementation:
        start = self.peek()
        if category is None:
            category = self._consume_category()
        else:
            self._consume_category()
        self.expect_keyword("implementation")
        type_name = self.expect_identifier().text
        self.expect_punct(".")
        impl_name = self.expect_identifier().text
        extends = None
        if self.accept_keyword("extends"):
            extends = self.parse_qualified_name()
            if self.accept_punct("."):
                extends = f"{extends}.{self.expect_identifier().text}"
        implementation = ComponentImplementation(
            name=f"{type_name}.{impl_name}",
            category=category,
            extends=extends,
            location=start.location,
        )

        while not self.at_end():
            token = self.peek()
            if token.is_keyword("end"):
                self.advance()
                self.expect_identifier()
                self.expect_punct(".")
                self.expect_identifier()
                self.expect_punct(";")
                return implementation
            if token.is_keyword("subcomponents"):
                self.advance()
                self._parse_subcomponents(implementation)
                continue
            if token.is_keyword("connections"):
                self.advance()
                self._parse_connections(implementation)
                continue
            if token.is_keyword("properties"):
                self.advance()
                for association in self.parse_property_associations():
                    implementation.properties.add(association)
                continue
            if token.is_keyword("modes"):
                self.advance()
                self._parse_modes(implementation)
                continue
            if token.is_keyword("calls"):
                self.advance()
                self._parse_calls(implementation)
                continue
            if token.is_keyword("flows"):
                self.advance()
                self._skip_section()
                continue
            if token.is_keyword("annex"):
                self._skip_annex()
                continue
            raise self.error(f"unexpected token in implementation {implementation.name!r}")
        raise self.error(f"unterminated component implementation {implementation.name!r}")

    # ------------------------------------------------------------------
    # sections
    # ------------------------------------------------------------------
    def _parse_features(self, component: ComponentType) -> None:
        if self.accept_keyword("none"):
            self.expect_punct(";")
            return
        while self.peek().kind is TokenKind.IDENTIFIER and not self._at_section_keyword():
            component.add_feature(self._parse_feature())

    def _parse_feature(self) -> Feature:
        name_token = self.expect_identifier()
        self.expect_punct(":")
        location = name_token.location
        token = self.peek()

        if token.is_keyword("in", "out"):
            direction = self._parse_direction()
            next_token = self.peek()
            if next_token.is_keyword("event", "data"):
                kind, classifier = self._parse_port_tail()
                feature: Feature = Port(
                    name=name_token.text,
                    direction=direction,
                    kind=kind,
                    classifier=classifier,
                    location=location,
                )
            elif next_token.is_keyword("parameter"):
                self.advance()
                classifier = self._parse_optional_classifier()
                feature = Parameter(
                    name=name_token.text, direction=direction, classifier=classifier, location=location
                )
            else:
                raise self.error("expected 'event', 'data' or 'parameter' after the port direction")
        elif token.is_keyword("requires", "provides"):
            access = AccessKind.REQUIRES if token.lowered == "requires" else AccessKind.PROVIDES
            self.advance()
            target = self.expect_keyword("data", "subprogram", "bus")
            self.expect_keyword("access")
            classifier = self._parse_optional_classifier()
            if target.lowered == "data":
                feature = DataAccess(name=name_token.text, access=access, classifier=classifier, location=location)
            elif target.lowered == "subprogram":
                feature = SubprogramAccess(
                    name=name_token.text, access=access, classifier=classifier, location=location
                )
            else:
                feature = BusAccess(name=name_token.text, access=access, classifier=classifier, location=location)
        else:
            raise self.error("unsupported feature declaration")

        for association in self._parse_optional_property_block():
            feature.properties.add(association)
        self.expect_punct(";")
        return feature

    def _parse_direction(self) -> PortDirection:
        first = self.expect_keyword("in", "out")
        if first.lowered == "in" and self.peek().is_keyword("out"):
            self.advance()
            return PortDirection.IN_OUT
        return PortDirection.IN if first.lowered == "in" else PortDirection.OUT

    def _parse_port_tail(self) -> Tuple[PortKind, Optional[str]]:
        token = self.expect_keyword("event", "data")
        if token.lowered == "event":
            if self.peek().is_keyword("data"):
                self.advance()
                kind = PortKind.EVENT_DATA
            else:
                kind = PortKind.EVENT
        else:
            kind = PortKind.DATA
        self.expect_keyword("port")
        classifier = self._parse_optional_classifier()
        return kind, classifier

    def _parse_optional_classifier(self) -> Optional[str]:
        if self.peek().kind is TokenKind.IDENTIFIER and not self.peek().is_punct(";") and not self.peek().is_punct("{"):
            if self._at_section_keyword():
                return None
            if self.peek().is_keyword("in") and self.peek(1).is_keyword("modes"):
                return None
            name = self.parse_qualified_name()
            if self.accept_punct("."):
                name = f"{name}.{self.expect_identifier().text}"
            return name
        return None

    def _parse_subcomponents(self, implementation: ComponentImplementation) -> None:
        if self.accept_keyword("none"):
            self.expect_punct(";")
            return
        while self.peek().kind is TokenKind.IDENTIFIER and not self._at_section_keyword():
            name_token = self.expect_identifier()
            self.expect_punct(":")
            category = self._consume_category()
            classifier = self._parse_optional_classifier()
            subcomponent = Subcomponent(
                name=name_token.text,
                category=category,
                classifier=classifier,
                location=name_token.location,
            )
            for association in self._parse_optional_property_block():
                subcomponent.properties.add(association)
            if self.accept_keyword("in"):
                self.expect_keyword("modes")
                subcomponent = Subcomponent(
                    name=subcomponent.name,
                    category=subcomponent.category,
                    classifier=subcomponent.classifier,
                    properties=subcomponent.properties,
                    in_modes=tuple(self._parse_mode_list()),
                    location=subcomponent.location,
                )
            self.expect_punct(";")
            implementation.add_subcomponent(subcomponent)

    def _parse_mode_list(self) -> List[str]:
        self.expect_punct("(")
        modes = [self.expect_identifier().text]
        while self.accept_punct(","):
            modes.append(self.expect_identifier().text)
        self.expect_punct(")")
        return modes

    def _parse_connections(self, implementation: ComponentImplementation) -> None:
        if self.accept_keyword("none"):
            self.expect_punct(";")
            return
        while self.peek().kind is TokenKind.IDENTIFIER and not self._at_section_keyword():
            name_token = self.expect_identifier()
            self.expect_punct(":")
            kind_token = self.peek()
            if kind_token.is_keyword("port"):
                self.advance()
                kind = ConnectionKind.PORT
            elif kind_token.is_keyword("data"):
                self.advance()
                self.expect_keyword("access")
                kind = ConnectionKind.DATA_ACCESS
            elif kind_token.is_keyword("subprogram"):
                self.advance()
                self.expect_keyword("access")
                kind = ConnectionKind.SUBPROGRAM_ACCESS
            elif kind_token.is_keyword("bus"):
                self.advance()
                self.expect_keyword("access")
                kind = ConnectionKind.BUS_ACCESS
            elif kind_token.is_keyword("parameter"):
                self.advance()
                kind = ConnectionKind.PARAMETER
            elif kind_token.is_keyword("feature"):
                self.advance()
                kind = ConnectionKind.FEATURE
            else:
                raise self.error("unsupported connection kind")
            source = self._parse_connection_end()
            bidirectional = False
            if self.accept_punct("<->"):
                bidirectional = True
            else:
                self.expect_punct("->")
            destination = self._parse_connection_end()
            connection = Connection(
                name=name_token.text,
                kind=kind,
                source=source,
                destination=destination,
                bidirectional=bidirectional,
                location=name_token.location,
            )
            for association in self._parse_optional_property_block():
                connection.properties.add(association)
            if self.accept_keyword("in"):
                self.expect_keyword("modes")
                connection.in_modes = tuple(self._parse_mode_list())
            self.expect_punct(";")
            implementation.add_connection(connection)

    def _parse_connection_end(self) -> ConnectionEnd:
        first = self.expect_identifier().text
        if self.accept_punct("."):
            second = self.expect_identifier().text
            return ConnectionEnd(subcomponent=first, feature=second)
        return ConnectionEnd(subcomponent=None, feature=first)

    def _parse_modes(self, implementation: ComponentImplementation) -> None:
        if self.accept_keyword("none"):
            self.expect_punct(";")
            return
        while self.peek().kind is TokenKind.IDENTIFIER and not self._at_section_keyword():
            first = self.expect_identifier()
            if self.accept_punct(":"):
                # Either a mode declaration or a named transition.
                if self.peek().is_keyword("initial", "mode"):
                    initial = bool(self.accept_keyword("initial"))
                    self.expect_keyword("mode")
                    mode = Mode(name=first.text, initial=initial, location=first.location)
                    for association in self._parse_optional_property_block():
                        mode.properties.add(association)
                    self.expect_punct(";")
                    implementation.modes[mode.name] = mode
                    continue
                transition_source = self.expect_identifier().text
                self._parse_mode_transition(implementation, name=first.text, source=transition_source)
                continue
            self._parse_mode_transition(implementation, name=None, source=first.text)

    def _parse_mode_transition(
        self, implementation: ComponentImplementation, name: Optional[str], source: str
    ) -> None:
        self.expect_punct("-[")
        triggers = [self.parse_qualified_path()]
        while self.accept_punct(","):
            triggers.append(self.parse_qualified_path())
        self.expect_punct("]->")
        destination = self.expect_identifier().text
        transition = ModeTransition(
            name=name,
            source=source,
            destination=destination,
            triggers=tuple(triggers),
        )
        for association in self._parse_optional_property_block():
            transition.properties.add(association)
        self.expect_punct(";")
        implementation.mode_transitions.append(transition)

    def _parse_calls(self, implementation: ComponentImplementation) -> None:
        """Record subprogram call sequences by name; the call graph itself is
        not interpreted by the translation subset."""
        while self.peek().kind is TokenKind.IDENTIFIER and not self._at_section_keyword():
            name = self.expect_identifier().text
            implementation.calls.append(name)
            # skip to the terminating '};' or ';' of the call sequence
            depth = 0
            while not self.at_end():
                token = self.advance()
                if token.is_punct("{"):
                    depth += 1
                elif token.is_punct("}"):
                    depth -= 1
                elif token.is_punct(";") and depth <= 0:
                    break

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def parse_property_associations(self) -> List[PropertyAssociation]:
        associations: List[PropertyAssociation] = []
        if self.accept_keyword("none"):
            self.expect_punct(";")
            return associations
        while self.peek().kind is TokenKind.IDENTIFIER and not self._at_section_keyword():
            associations.append(self.parse_property_association())
        return associations

    def _parse_optional_property_block(self) -> List[PropertyAssociation]:
        if not self.accept_punct("{"):
            return []
        associations: List[PropertyAssociation] = []
        while not self.peek().is_punct("}"):
            associations.append(self.parse_property_association())
        self.expect_punct("}")
        return associations

    def parse_property_association(self) -> PropertyAssociation:
        name = self.parse_qualified_name()
        append = False
        if self.accept_punct("+=>"):
            append = True
        else:
            self.expect_punct("=>")
        constant = bool(self.accept_keyword("constant"))
        value = self.parse_property_value()
        applies_to: List[Tuple[str, ...]] = []
        in_modes: List[str] = []
        if self.accept_keyword("applies"):
            self.expect_keyword("to")
            applies_to.append(tuple(self.parse_qualified_path().split(".")))
            while self.accept_punct(","):
                applies_to.append(tuple(self.parse_qualified_path().split(".")))
        if self.accept_keyword("in"):
            self.expect_keyword("modes")
            in_modes = self._parse_mode_list()
        self.expect_punct(";")
        return PropertyAssociation(
            name=name,
            value=value,
            applies_to=tuple(applies_to),
            append=append,
            constant=constant,
            in_modes=tuple(in_modes),
        )

    def parse_property_value(self) -> PropertyValue:
        value = self._parse_simple_property_value()
        if self.accept_punct(".."):
            high = self._parse_simple_property_value()
            if not isinstance(value, (IntegerValue, RealValue)) or not isinstance(high, (IntegerValue, RealValue)):
                raise self.error("range bounds must be numeric")
            return RangeValue(value, high)
        return value

    def _parse_simple_property_value(self) -> PropertyValue:
        token = self.peek()
        if token.is_punct("("):
            self.advance()
            items: List[PropertyValue] = []
            if not self.peek().is_punct(")"):
                items.append(self.parse_property_value())
                while self.accept_punct(","):
                    items.append(self.parse_property_value())
            self.expect_punct(")")
            return ListValue(tuple(items))
        if token.is_punct("["):
            self.advance()
            fields: List[Tuple[str, PropertyValue]] = []
            while not self.peek().is_punct("]"):
                field_name = self.expect_identifier().text
                self.expect_punct("=>")
                fields.append((field_name, self.parse_property_value()))
                self.accept_punct(";")
            self.expect_punct("]")
            return RecordValue(tuple(fields))
        if token.kind in (TokenKind.INTEGER, TokenKind.REAL) or token.is_punct("-"):
            negative = bool(self.accept_punct("-"))
            number = self.advance()
            unit = None
            if self.peek().kind is TokenKind.IDENTIFIER and self.peek().lowered in (_TIME_UNITS | _OTHER_UNITS):
                unit = self.advance().text
            if number.kind is TokenKind.INTEGER:
                return IntegerValue(-int(number.text) if negative else int(number.text), unit)
            return RealValue(-float(number.text) if negative else float(number.text), unit)
        if token.kind is TokenKind.STRING:
            self.advance()
            return StringValue(token.text)
        if token.is_keyword("true", "false"):
            self.advance()
            return BooleanValue(token.lowered == "true")
        if token.is_keyword("reference"):
            self.advance()
            self.expect_punct("(")
            path = self.parse_qualified_path()
            self.expect_punct(")")
            return ReferenceValue(tuple(path.split(".")))
        if token.is_keyword("classifier"):
            self.advance()
            self.expect_punct("(")
            name = self.parse_qualified_name()
            if self.accept_punct("."):
                name = f"{name}.{self.expect_identifier().text}"
            self.expect_punct(")")
            return ClassifierValue(name)
        if token.kind is TokenKind.IDENTIFIER:
            name = self.parse_qualified_name()
            if self.accept_punct("."):
                name = f"{name}.{self.expect_identifier().text}"
            return EnumerationValue(name)
        raise self.error("unsupported property value")

    # ------------------------------------------------------------------
    # names and skipping helpers
    # ------------------------------------------------------------------
    def parse_qualified_name(self) -> str:
        parts = [self.expect_identifier().text]
        while self.peek().is_punct("::"):
            self.advance()
            parts.append(self.expect_identifier().text)
        return "::".join(parts)

    def parse_qualified_path(self) -> str:
        parts = [self.expect_identifier().text]
        while self.peek().is_punct("."):
            self.advance()
            parts.append(self.expect_identifier().text)
        return ".".join(parts)

    _SECTION_KEYWORDS = {
        "features",
        "flows",
        "modes",
        "properties",
        "subcomponents",
        "connections",
        "calls",
        "annex",
        "end",
        "requires",
        "provides",
    }

    def _at_section_keyword(self) -> bool:
        token = self.peek()
        return token.kind is TokenKind.IDENTIFIER and token.lowered in {
            "features",
            "flows",
            "modes",
            "properties",
            "subcomponents",
            "connections",
            "calls",
            "annex",
            "end",
        }

    def _skip_section(self) -> None:
        """Skip an uninterpreted section up to (not including) the next section keyword."""
        while not self.at_end() and not self._at_section_keyword():
            self.advance()

    def _skip_annex(self) -> None:
        """Skip an annex block ``annex name {** … **};``."""
        self.expect_keyword("annex")
        self.expect_identifier()
        if self.accept_punct("{"):
            depth = 1
            while not self.at_end() and depth > 0:
                token = self.advance()
                if token.is_punct("{"):
                    depth += 1
                elif token.is_punct("}"):
                    depth -= 1
        self.accept_punct(";")


def parse_string(text: str, filename: str = "<aadl>") -> AadlModel:
    """Parse AADL source text into a declarative :class:`AadlModel`."""
    tokens = tokenize(text, filename)
    return Parser(tokens, filename).parse_model()


def parse_file(path: str) -> AadlModel:
    """Parse an AADL source file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_string(handle.read(), filename=path)
