"""Diagnostics for the AADL front-end.

All front-end failures carry a :class:`SourceLocation` so that error messages
point back to the textual model, the way the OSATE editor does.  Non-fatal
findings (warnings produced by the legality checks) are collected in a
:class:`DiagnosticCollector` instead of being raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class SourceLocation:
    """Position of a construct in an AADL source text."""

    line: int
    column: int
    filename: str = "<aadl>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class AadlError(Exception):
    """Base class of all AADL front-end errors."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.location = location
        self.message = message
        super().__init__(f"{location}: {message}" if location else message)


class AadlSyntaxError(AadlError):
    """Lexical or syntactic error in the textual model."""


class AadlSemanticError(AadlError):
    """Name-resolution, typing or legality error in the declarative model."""


class AadlInstantiationError(AadlError):
    """Error raised while building the instance model."""


@dataclass
class Diagnostic:
    """A single warning or error finding."""

    severity: str  # "error" | "warning" | "info"
    message: str
    location: Optional[SourceLocation] = None
    subject: Optional[str] = None  # qualified name of the model element

    def __str__(self) -> str:
        prefix = f"[{self.severity}]"
        where = f" ({self.location})" if self.location else ""
        about = f" {self.subject}:" if self.subject else ""
        return f"{prefix}{about} {self.message}{where}"


@dataclass
class DiagnosticCollector:
    """Accumulates findings of the validation passes."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def error(self, message: str, subject: Optional[str] = None, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("error", message, location, subject))

    def warning(self, message: str, subject: Optional[str] = None, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("warning", message, location, subject))

    def info(self, message: str, subject: Optional[str] = None, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("info", message, location, subject))

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def extend(self, other: "DiagnosticCollector") -> None:
        self.diagnostics.extend(other.diagnostics)

    def summary(self) -> str:
        if not self.diagnostics:
            return "no findings"
        return "\n".join(str(d) for d in self.diagnostics)
