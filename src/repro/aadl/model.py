"""Declarative AADL metamodel.

This is the Python counterpart of the ASME (AADL Syntax Model under Eclipse)
metamodel used by the paper's tool chain: packages, component types and
implementations for every AADL component category, features (ports, data /
subprogram accesses, parameters), subcomponents, connections, modes and
property associations.

The metamodel is purely declarative; :mod:`repro.aadl.instance` builds the
instance tree a translator actually works on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .errors import AadlSemanticError, SourceLocation
from .properties import PropertyAssociation, PropertyMap


class ComponentCategory(enum.Enum):
    """AADL component categories (software, execution platform, composite)."""

    SYSTEM = "system"
    PROCESS = "process"
    THREAD = "thread"
    THREAD_GROUP = "thread group"
    SUBPROGRAM = "subprogram"
    SUBPROGRAM_GROUP = "subprogram group"
    DATA = "data"
    PROCESSOR = "processor"
    VIRTUAL_PROCESSOR = "virtual processor"
    MEMORY = "memory"
    BUS = "bus"
    VIRTUAL_BUS = "virtual bus"
    DEVICE = "device"
    ABSTRACT = "abstract"

    @classmethod
    def from_keyword(cls, keyword: str) -> "ComponentCategory":
        lowered = " ".join(keyword.lower().split())
        for member in cls:
            if member.value == lowered:
                return member
        raise AadlSemanticError(f"unknown component category {keyword!r}")

    @property
    def is_software(self) -> bool:
        return self in (
            ComponentCategory.PROCESS,
            ComponentCategory.THREAD,
            ComponentCategory.THREAD_GROUP,
            ComponentCategory.SUBPROGRAM,
            ComponentCategory.SUBPROGRAM_GROUP,
            ComponentCategory.DATA,
        )

    @property
    def is_execution_platform(self) -> bool:
        return self in (
            ComponentCategory.PROCESSOR,
            ComponentCategory.VIRTUAL_PROCESSOR,
            ComponentCategory.MEMORY,
            ComponentCategory.BUS,
            ComponentCategory.VIRTUAL_BUS,
            ComponentCategory.DEVICE,
        )


class PortDirection(enum.Enum):
    IN = "in"
    OUT = "out"
    IN_OUT = "in out"


class PortKind(enum.Enum):
    DATA = "data"
    EVENT = "event"
    EVENT_DATA = "event data"


class AccessKind(enum.Enum):
    REQUIRES = "requires"
    PROVIDES = "provides"


# ----------------------------------------------------------------------
# features
# ----------------------------------------------------------------------
@dataclass
class Feature:
    """Base class of component features."""

    name: str
    properties: PropertyMap = field(default_factory=PropertyMap)
    location: Optional[SourceLocation] = None

    @property
    def kind_keyword(self) -> str:
        raise NotImplementedError


@dataclass
class Port(Feature):
    """A data, event or event data port."""

    direction: PortDirection = PortDirection.IN
    kind: PortKind = PortKind.EVENT
    classifier: Optional[str] = None

    @property
    def kind_keyword(self) -> str:
        return f"{self.direction.value} {self.kind.value} port"

    @property
    def is_in(self) -> bool:
        return self.direction in (PortDirection.IN, PortDirection.IN_OUT)

    @property
    def is_out(self) -> bool:
        return self.direction in (PortDirection.OUT, PortDirection.IN_OUT)

    @property
    def carries_data(self) -> bool:
        return self.kind in (PortKind.DATA, PortKind.EVENT_DATA)

    @property
    def is_event(self) -> bool:
        return self.kind in (PortKind.EVENT, PortKind.EVENT_DATA)


@dataclass
class DataAccess(Feature):
    """``requires/provides data access`` feature (shared data)."""

    access: AccessKind = AccessKind.REQUIRES
    classifier: Optional[str] = None

    @property
    def kind_keyword(self) -> str:
        return f"{self.access.value} data access"


@dataclass
class SubprogramAccess(Feature):
    """``requires/provides subprogram access`` feature."""

    access: AccessKind = AccessKind.REQUIRES
    classifier: Optional[str] = None

    @property
    def kind_keyword(self) -> str:
        return f"{self.access.value} subprogram access"


@dataclass
class BusAccess(Feature):
    """``requires/provides bus access`` feature."""

    access: AccessKind = AccessKind.REQUIRES
    classifier: Optional[str] = None

    @property
    def kind_keyword(self) -> str:
        return f"{self.access.value} bus access"


@dataclass
class Parameter(Feature):
    """Subprogram parameter."""

    direction: PortDirection = PortDirection.IN
    classifier: Optional[str] = None

    @property
    def kind_keyword(self) -> str:
        return f"{self.direction.value} parameter"


# ----------------------------------------------------------------------
# classifiers
# ----------------------------------------------------------------------
@dataclass
class ComponentType:
    """An AADL component type: category, features, properties."""

    name: str
    category: ComponentCategory
    features: Dict[str, Feature] = field(default_factory=dict)
    properties: PropertyMap = field(default_factory=PropertyMap)
    extends: Optional[str] = None
    flows: List[str] = field(default_factory=list)
    location: Optional[SourceLocation] = None

    def add_feature(self, feature: Feature) -> Feature:
        if feature.name in self.features:
            raise AadlSemanticError(f"duplicate feature {feature.name!r} in {self.name}", feature.location)
        self.features[feature.name] = feature
        return feature

    def ports(self) -> List[Port]:
        return [f for f in self.features.values() if isinstance(f, Port)]

    def data_accesses(self) -> List[DataAccess]:
        return [f for f in self.features.values() if isinstance(f, DataAccess)]

    def subprogram_accesses(self) -> List[SubprogramAccess]:
        return [f for f in self.features.values() if isinstance(f, SubprogramAccess)]

    @property
    def qualified_name(self) -> str:
        return self.name


@dataclass
class Subcomponent:
    """A subcomponent declaration inside a component implementation."""

    name: str
    category: ComponentCategory
    classifier: Optional[str] = None
    properties: PropertyMap = field(default_factory=PropertyMap)
    in_modes: Tuple[str, ...] = ()
    location: Optional[SourceLocation] = None


class ConnectionKind(enum.Enum):
    PORT = "port"
    DATA_ACCESS = "data access"
    SUBPROGRAM_ACCESS = "subprogram access"
    BUS_ACCESS = "bus access"
    PARAMETER = "parameter"
    FEATURE = "feature"


@dataclass(frozen=True)
class ConnectionEnd:
    """One end of a connection: ``subcomponent.feature`` or a local ``feature``."""

    subcomponent: Optional[str]
    feature: str

    def __str__(self) -> str:
        if self.subcomponent:
            return f"{self.subcomponent}.{self.feature}"
        return self.feature


@dataclass
class Connection:
    """A connection declaration (port, access or parameter connection)."""

    name: str
    kind: ConnectionKind
    source: ConnectionEnd
    destination: ConnectionEnd
    bidirectional: bool = False
    properties: PropertyMap = field(default_factory=PropertyMap)
    in_modes: Tuple[str, ...] = ()
    location: Optional[SourceLocation] = None

    @property
    def timing(self) -> str:
        """Connection timing: ``immediate`` (default) or ``delayed``."""
        value = self.properties.value("Timing", "Immediate")
        return str(value).lower()


@dataclass
class Mode:
    """An operational mode of a component implementation."""

    name: str
    initial: bool = False
    properties: PropertyMap = field(default_factory=PropertyMap)
    location: Optional[SourceLocation] = None


@dataclass
class ModeTransition:
    """A mode transition ``source -[ trigger, … ]-> destination``."""

    name: Optional[str]
    source: str
    destination: str
    triggers: Tuple[str, ...] = ()
    properties: PropertyMap = field(default_factory=PropertyMap)
    location: Optional[SourceLocation] = None

    @property
    def priority(self) -> Optional[int]:
        value = self.properties.value("Priority")
        return int(value) if value is not None else None


@dataclass
class ComponentImplementation:
    """An AADL component implementation: subcomponents, connections, modes."""

    name: str  # "Type.Impl"
    category: ComponentCategory
    subcomponents: Dict[str, Subcomponent] = field(default_factory=dict)
    connections: List[Connection] = field(default_factory=list)
    properties: PropertyMap = field(default_factory=PropertyMap)
    modes: Dict[str, Mode] = field(default_factory=dict)
    mode_transitions: List[ModeTransition] = field(default_factory=list)
    calls: List[str] = field(default_factory=list)
    extends: Optional[str] = None
    location: Optional[SourceLocation] = None

    @property
    def type_name(self) -> str:
        return self.name.split(".")[0]

    @property
    def implementation_name(self) -> str:
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else ""

    def add_subcomponent(self, subcomponent: Subcomponent) -> Subcomponent:
        if subcomponent.name in self.subcomponents:
            raise AadlSemanticError(
                f"duplicate subcomponent {subcomponent.name!r} in {self.name}", subcomponent.location
            )
        self.subcomponents[subcomponent.name] = subcomponent
        return subcomponent

    def add_connection(self, connection: Connection) -> Connection:
        self.connections.append(connection)
        return connection

    def initial_mode(self) -> Optional[Mode]:
        for mode in self.modes.values():
            if mode.initial:
                return mode
        return None


# ----------------------------------------------------------------------
# packages and the model root
# ----------------------------------------------------------------------
@dataclass
class PropertySetDeclaration:
    """A (possibly only partially interpreted) ``property set`` declaration."""

    name: str
    declarations: Dict[str, str] = field(default_factory=dict)
    location: Optional[SourceLocation] = None


@dataclass
class AadlPackage:
    """An AADL package: named container of classifiers."""

    name: str
    imports: List[str] = field(default_factory=list)
    types: Dict[str, ComponentType] = field(default_factory=dict)
    implementations: Dict[str, ComponentImplementation] = field(default_factory=dict)
    properties: PropertyMap = field(default_factory=PropertyMap)
    location: Optional[SourceLocation] = None

    def add_type(self, component_type: ComponentType) -> ComponentType:
        if component_type.name in self.types:
            raise AadlSemanticError(
                f"duplicate component type {component_type.name!r} in package {self.name}",
                component_type.location,
            )
        self.types[component_type.name] = component_type
        return component_type

    def add_implementation(self, implementation: ComponentImplementation) -> ComponentImplementation:
        if implementation.name in self.implementations:
            raise AadlSemanticError(
                f"duplicate component implementation {implementation.name!r} in package {self.name}",
                implementation.location,
            )
        self.implementations[implementation.name] = implementation
        return implementation

    def classifiers(self) -> List[str]:
        return list(self.types) + list(self.implementations)


class AadlModel:
    """Root of a declarative AADL model: packages and property sets."""

    def __init__(self) -> None:
        self.packages: Dict[str, AadlPackage] = {}
        self.property_sets: Dict[str, PropertySetDeclaration] = {}

    # ------------------------------------------------------------------
    def add_package(self, package: AadlPackage) -> AadlPackage:
        if package.name in self.packages:
            raise AadlSemanticError(f"duplicate package {package.name!r}")
        self.packages[package.name] = package
        return package

    def add_property_set(self, property_set: PropertySetDeclaration) -> PropertySetDeclaration:
        self.property_sets[property_set.name] = property_set
        return property_set

    def merge(self, other: "AadlModel") -> "AadlModel":
        """Merge the packages of another model into this one (shared library use)."""
        for package in other.packages.values():
            if package.name not in self.packages:
                self.packages[package.name] = package
        for property_set in other.property_sets.values():
            self.property_sets.setdefault(property_set.name, property_set)
        return self

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _split(self, qualified_name: str) -> Tuple[Optional[str], str]:
        if "::" in qualified_name:
            package, _, name = qualified_name.rpartition("::")
            return package, name
        return None, qualified_name

    def find_type(self, qualified_name: str, default_package: Optional[str] = None) -> Optional[ComponentType]:
        package_name, name = self._split(qualified_name)
        candidates: Iterable[AadlPackage]
        if package_name:
            package = self.packages.get(package_name)
            candidates = [package] if package else []
        elif default_package and default_package in self.packages:
            candidates = [self.packages[default_package]] + [
                p for n, p in self.packages.items() if n != default_package
            ]
        else:
            candidates = self.packages.values()
        for package in candidates:
            if name in package.types:
                return package.types[name]
        return None

    def find_implementation(
        self, qualified_name: str, default_package: Optional[str] = None
    ) -> Optional[ComponentImplementation]:
        package_name, name = self._split(qualified_name)
        if package_name:
            package = self.packages.get(package_name)
            return package.implementations.get(name) if package else None
        if default_package and default_package in self.packages:
            package = self.packages[default_package]
            if name in package.implementations:
                return package.implementations[name]
        for package in self.packages.values():
            if name in package.implementations:
                return package.implementations[name]
        return None

    def find_classifier(
        self, qualified_name: str, default_package: Optional[str] = None
    ):
        """Find a type or an implementation by (possibly qualified) name."""
        implementation = self.find_implementation(qualified_name, default_package)
        if implementation is not None:
            return implementation
        return self.find_type(qualified_name, default_package)

    def type_of_implementation(
        self, implementation: ComponentImplementation, default_package: Optional[str] = None
    ) -> Optional[ComponentType]:
        return self.find_type(implementation.type_name, default_package)

    # ------------------------------------------------------------------
    # statistics (used by the scalability experiment)
    # ------------------------------------------------------------------
    def component_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for package in self.packages.values():
            for component_type in package.types.values():
                key = component_type.category.value
                counts[key] = counts.get(key, 0) + 1
        return counts

    def classifier_count(self) -> int:
        return sum(len(p.types) + len(p.implementations) for p in self.packages.values())

    def all_implementations(self) -> List[ComponentImplementation]:
        out: List[ComponentImplementation] = []
        for package in self.packages.values():
            out.extend(package.implementations.values())
        return out

    def all_types(self) -> List[ComponentType]:
        out: List[ComponentType] = []
        for package in self.packages.values():
            out.extend(package.types.values())
        return out
