"""Built-in knowledge of the AADL standard property sets.

The parser stores property associations verbatim; this module records what the
tool chain knows about the *predeclared* property sets (``Timing_Properties``,
``Thread_Properties``, ``Communication_Properties``, ``Deployment_Properties``)
— expected value type, applicable component categories and default values —
so that validation can warn about suspicious associations and the translator
can fall back on standard defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .model import ComponentCategory


@dataclass(frozen=True)
class PropertyDefinition:
    """Declaration of a predeclared AADL property."""

    name: str
    property_set: str
    value_kind: str  # "time", "integer", "enumeration", "reference-list", "record-list", "string", "range"
    applies_to: Tuple[ComponentCategory, ...]
    default: Any = None
    literals: Tuple[str, ...] = ()


_THREAD_LIKE = (
    ComponentCategory.THREAD,
    ComponentCategory.DEVICE,
    ComponentCategory.VIRTUAL_PROCESSOR,
)

#: The predeclared properties interpreted by this tool chain.
STANDARD_PROPERTIES: Dict[str, PropertyDefinition] = {
    definition.name.lower(): definition
    for definition in [
        PropertyDefinition(
            name="Dispatch_Protocol",
            property_set="Thread_Properties",
            value_kind="enumeration",
            applies_to=_THREAD_LIKE,
            literals=("Periodic", "Sporadic", "Aperiodic", "Timed", "Hybrid", "Background"),
        ),
        PropertyDefinition(
            name="Period",
            property_set="Timing_Properties",
            value_kind="time",
            applies_to=_THREAD_LIKE + (ComponentCategory.SYSTEM, ComponentCategory.PROCESS),
        ),
        PropertyDefinition(
            name="Deadline",
            property_set="Timing_Properties",
            value_kind="time",
            applies_to=_THREAD_LIKE,
        ),
        PropertyDefinition(
            name="Compute_Execution_Time",
            property_set="Timing_Properties",
            value_kind="range",
            applies_to=(ComponentCategory.THREAD, ComponentCategory.SUBPROGRAM, ComponentCategory.DEVICE),
        ),
        PropertyDefinition(
            name="Input_Time",
            property_set="Communication_Properties",
            value_kind="record-list",
            applies_to=(ComponentCategory.THREAD,),
            default="Dispatch",
        ),
        PropertyDefinition(
            name="Output_Time",
            property_set="Communication_Properties",
            value_kind="record-list",
            applies_to=(ComponentCategory.THREAD,),
            default="Completion",
        ),
        PropertyDefinition(
            name="Queue_Size",
            property_set="Communication_Properties",
            value_kind="integer",
            applies_to=(ComponentCategory.THREAD, ComponentCategory.DEVICE, ComponentCategory.PROCESS),
            default=1,
        ),
        PropertyDefinition(
            name="Queue_Processing_Protocol",
            property_set="Communication_Properties",
            value_kind="enumeration",
            applies_to=(ComponentCategory.THREAD, ComponentCategory.DEVICE),
            default="FIFO",
            literals=("FIFO", "LIFO"),
        ),
        PropertyDefinition(
            name="Overflow_Handling_Protocol",
            property_set="Communication_Properties",
            value_kind="enumeration",
            applies_to=(ComponentCategory.THREAD, ComponentCategory.DEVICE),
            default="DropOldest",
            literals=("DropOldest", "DropNewest", "Error"),
        ),
        PropertyDefinition(
            name="Priority",
            property_set="Thread_Properties",
            value_kind="integer",
            applies_to=_THREAD_LIKE + (ComponentCategory.PROCESS, ComponentCategory.DATA),
        ),
        PropertyDefinition(
            name="Actual_Processor_Binding",
            property_set="Deployment_Properties",
            value_kind="reference-list",
            applies_to=(
                ComponentCategory.PROCESS,
                ComponentCategory.THREAD,
                ComponentCategory.THREAD_GROUP,
                ComponentCategory.SYSTEM,
                ComponentCategory.DEVICE,
                ComponentCategory.VIRTUAL_PROCESSOR,
            ),
        ),
        PropertyDefinition(
            name="Scheduling_Protocol",
            property_set="Deployment_Properties",
            value_kind="enumeration",
            applies_to=(ComponentCategory.PROCESSOR, ComponentCategory.VIRTUAL_PROCESSOR, ComponentCategory.SYSTEM),
            literals=("RMS", "EDF", "DM", "Static", "RoundRobin"),
        ),
        PropertyDefinition(
            name="Timing",
            property_set="Communication_Properties",
            value_kind="enumeration",
            applies_to=(),
            default="Immediate",
            literals=("Sampled", "Immediate", "Delayed"),
        ),
        PropertyDefinition(
            name="Concurrency_Control_Protocol",
            property_set="Data_Model",
            value_kind="enumeration",
            applies_to=(ComponentCategory.DATA,),
            literals=("None_Specified", "Priority_Ceiling", "Protected_Access", "Semaphore"),
        ),
    ]
}


def lookup(name: str) -> Optional[PropertyDefinition]:
    """Find the definition of a predeclared property (case-insensitive)."""
    return STANDARD_PROPERTIES.get(name.split("::")[-1].lower())


def default_value(name: str) -> Any:
    """The standard default of a predeclared property (or ``None``)."""
    definition = lookup(name)
    return definition.default if definition else None


def is_standard(name: str) -> bool:
    return lookup(name) is not None
