"""Command-line interface of the tool chain.

``python -m repro`` exposes the paper's workflow on textual AADL files::

    python -m repro analyse  model.aadl --root MySystem.impl          # full tool chain
    python -m repro schedule model.aadl --root MySystem.impl --policy EDF
    python -m repro translate model.aadl --root MySystem.impl -o out/ # SIGNAL sources
    python -m repro simulate model.aadl --root MySystem.impl --hyperperiods 4 --vcd trace.vcd
    python -m repro casestudy --list                                  # bundled case studies
    python -m repro serve --port 8000                                 # HTTP simulation service

When ``--root`` is omitted the tool picks the first system implementation of
the first package, which is the common single-system case.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .aadl.model import AadlModel, ComponentCategory
from .aadl.parser import parse_file, parse_string
from .casestudies import CATALOG, PRODUCER_CONSUMER_AADL, load_case_study
from .core import ToolchainOptions, TranslationConfig, run_toolchain
from .scheduling import SchedulingPolicy, export_affine_clocks
from .sig.engine import (
    DEFAULT_BACKEND,
    DEFAULT_BLOCK_SIZE,
    backend_names,
    create_backend,
    default_scenario,
    simulate_batch,
)
from .sig.printer import to_signal_source
from .sig.sinks import DeltaSink, StatisticsSink, TraceSink, WindowSink
from .sig.vcd import StreamingVcdSink


def _non_negative_int(text: str) -> int:
    """argparse type for count flags where 0 means "off" (e.g. --window)."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {text}")
    return value


def _print_plan_stats(model, backend_name, backend_options) -> None:
    """Print the execution-plan partition breakdown for ``--plan-stats``.

    Shows the compiled plan shape for every backend, the stratum partition
    (pre-sweep / recurrence / residual clusters / post-sweep) for the
    vectorized backend, and the generated-evaluator counts for the lowered
    backend — the residue composition, without digging through benchmark
    extras.
    """
    runner = create_backend(model, backend=backend_name, strict=False, **backend_options)
    plan = getattr(runner, "plan", None)
    if plan is None:  # reference backend: compile the plan just for the report
        from .sig.engine import compile_plan

        plan = compile_plan(model)
    print(f"plan statistics [{backend_name} backend]")
    print(f"  {plan.statistics().summary()}")
    vector = getattr(runner, "vector_plan", None)
    if vector is not None:
        print(f"  {vector.statistics().summary()}")
    lowered = getattr(plan, "lowered_targets", None)
    if lowered is not None:
        print(
            f"  lowered evaluators: {lowered} target(s) generated, "
            f"{plan.interpreted_targets} interpreted"
        )


def _stats_sink_factory(index: int) -> StatisticsSink:
    """One fresh statistics sink per ``--batch`` scenario (picklable, so the
    sweep can shard over ``--workers`` processes)."""
    return StatisticsSink()


class _AlarmSink(TraceSink):
    """Track the instants at which ``*_Alarm`` signals fire during streaming.

    With ``--no-trace`` there is no materialised trace to scan, but the
    deadline-alarm report (and the command's non-zero exit code on fired
    alarms) must survive: this O(alarm signals) sink watches just the alarm
    columns of each instant.
    """

    def __init__(self) -> None:
        self.fired = {}
        self._watch = []

    def on_header(self, header) -> None:
        super().on_header(header)
        self._watch = [
            (index, name)
            for index, name in enumerate(header.signals)
            if name.endswith("_Alarm")
        ]

    def on_instant(self, instant, statuses, values) -> None:
        for index, name in self._watch:
            if statuses[index]:
                self.fired.setdefault(name, []).append(instant)

    def result(self):
        """Mapping of fired alarm signal -> instants of activation."""
        return self.fired


def _load_model(path: str) -> AadlModel:
    if path == "producer_consumer":
        return parse_string(PRODUCER_CONSUMER_AADL, filename="ProducerConsumer.aadl")
    return parse_file(path)


def _default_root(model: AadlModel) -> Optional[str]:
    """Pick the most plausible root: a system implementation that is not itself
    used as a subcomponent anywhere, preferring the one with the most
    subcomponents; fall back to the first process implementation."""
    used_classifiers = {
        subcomponent.classifier
        for implementation in model.all_implementations()
        for subcomponent in implementation.subcomponents.values()
        if subcomponent.classifier
    }
    candidates = [
        implementation
        for implementation in model.all_implementations()
        if implementation.category is ComponentCategory.SYSTEM
    ]
    top_level = [c for c in candidates if c.name not in used_classifiers] or candidates
    if top_level:
        return max(top_level, key=lambda impl: len(impl.subcomponents)).name
    for implementation in model.all_implementations():
        if implementation.category is ComponentCategory.PROCESS:
            return implementation.name
    return None


def _toolchain(
    args: argparse.Namespace,
    simulate: bool = True,
    sinks=None,
    materialize_trace: bool = True,
) -> "ToolchainResult":
    model = _load_model(args.model)
    root = args.root or _default_root(model)
    if root is None:
        raise SystemExit("error: no system implementation found; pass --root explicitly")
    backend_options = {}
    if getattr(args, "block_size", None):
        backend_options["block_size"] = args.block_size
    options = ToolchainOptions(
        root_implementation=root,
        default_package=next(iter(model.packages), None),
        translation=TranslationConfig(
            include_scheduler=not getattr(args, "no_scheduler", False),
            scheduling_policy=SchedulingPolicy.from_name(getattr(args, "policy", "RM")),
        ),
        simulate_hyperperiods=getattr(args, "hyperperiods", 2) if simulate else 0,
        strict_validation=not getattr(args, "lenient", False),
        backend=getattr(args, "backend", DEFAULT_BACKEND),
        backend_options=backend_options,
        workers=getattr(args, "workers", 1),
        sinks=sinks,
        materialize_trace=materialize_trace,
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", None),
        max_failures=getattr(args, "max_failures", None),
        # The CLI warm-starts across invocations by default (persistent
        # artifact store under REPRO_CACHE_DIR / ~/.cache/repro);
        # --no-cache keeps a single run self-contained.
        store=not getattr(args, "no_cache", False),
    )
    return run_toolchain(model, options)


# ----------------------------------------------------------------------
# sub-commands
# ----------------------------------------------------------------------
def _print_warm_start(result) -> None:
    """One line acknowledging a persistent-cache restore (CI greps for it)."""
    if result.store_hit:
        print(
            "warm start: analyses restored from the persistent cache "
            f"(fingerprint {result.store_fingerprint[:12]})"
        )


def cmd_analyse(args: argparse.Namespace) -> int:
    result = _toolchain(args)
    _print_warm_start(result)
    print(result.summary())
    print()
    print(result.clock_report.summary())
    print()
    print(result.determinism.summary())
    print(result.deadlocks.summary())
    for processor, report in result.schedulability.items():
        print()
        print(f"[{processor}]")
        print(report.summary())
    if result.diagnostics.diagnostics:
        print()
        print("Validation findings:")
        print(result.diagnostics.summary())
    return 0 if (result.determinism.deterministic and result.deadlocks.deadlock_free) else 1


def cmd_schedule(args: argparse.Namespace) -> int:
    result = _toolchain(args, simulate=False)
    if not result.schedules:
        print("no schedulable threads found (is the process bound to a processor?)")
        return 1
    for processor, schedule in result.schedules.items():
        print(f"Schedule for {processor} ({schedule.policy.value}), "
              f"hyper-period {schedule.hyperperiod_ms} ms, utilisation {schedule.processor_utilisation():.2f}")
        for row in schedule.table():
            print(
                f"  {row['task']:<16s} job {row['job']:<2d} dispatch {row['dispatch_ms']:>7.2f}  "
                f"start {row['start_ms']:>7.2f}  complete {row['complete_ms']:>7.2f}  "
                f"deadline {row['deadline_ms']:>7.2f}"
            )
        if args.affine:
            print()
            print(export_affine_clocks(schedule).summary())
    return 0


def cmd_translate(args: argparse.Namespace) -> int:
    result = _toolchain(args, simulate=False)
    os.makedirs(args.output, exist_ok=True)
    system_path = os.path.join(args.output, f"{result.translation.system_model.name}.sig")
    with open(system_path, "w", encoding="utf-8") as handle:
        handle.write(to_signal_source(result.translation.system_model))
    written = [system_path]
    for process in result.translation.processes.values():
        path = os.path.join(args.output, f"{process.name}.sig")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_signal_source(process.model))
        written.append(path)
    print(f"wrote {len(written)} SIGNAL source file(s) to {args.output}")
    for path in written:
        print(f"  {path}")
    stats = result.translation.statistics()
    print(f"generated {stats['models']} process models, {stats['signals']} signals, "
          f"{stats['equations']} equations, {stats['trace_links']} traceability links")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.no_trace and args.vcd:
        raise SystemExit(
            "error: --vcd renders the materialised trace, which --no-trace disables; "
            "use --stream-vcd to write the waveform while simulating"
        )
    # Streaming sinks observe the simulation instant by instant; with
    # --no-trace nothing else is retained, so memory stays O(signals)
    # however many hyper-periods are simulated.
    sinks = []
    stats_sink = None
    alarm_sink = None
    window_sink = None
    if args.stream_vcd:
        sinks.append(StreamingVcdSink(args.stream_vcd, timescale="1 ms"))
    if args.stats:
        stats_sink = StatisticsSink()
        sinks.append(stats_sink)
    if args.window > 0:
        window_sink = WindowSink(args.window)
        sinks.append(window_sink)
    delta_sink = None
    if args.deltas:
        watched = None if args.deltas.strip().lower() == "all" else [
            name.strip() for name in args.deltas.split(",") if name.strip()
        ]
        delta_sink = DeltaSink(watched)
        sinks.append(delta_sink)
    if args.no_trace:
        # The deadline-alarm report (and exit code) must survive --no-trace.
        alarm_sink = _AlarmSink()
        sinks.append(alarm_sink)

    result = _toolchain(args, sinks=sinks or None, materialize_trace=not args.no_trace)
    _print_warm_start(result)
    if result.trace is None and not result.scenario_length:
        print("nothing was simulated (no schedule could be synthesised)")
        return 1
    if args.plan_stats:
        _print_plan_stats(
            result.translation.system_model,
            args.backend,
            result.options.backend_options if result.options else {},
        )
        if result.calculus_stats is not None:
            print(f"  {result.calculus_stats.summary()}")
        elif result.store_hit:
            print("  clock calculus skipped: analyses restored from the persistent cache")
    if result.trace is not None:
        print(f"simulated {result.trace.length} instants "
              f"({args.hyperperiods} hyper-period(s)), {len(result.trace.flows)} signals recorded "
              f"[{result.backend_name} backend]")
    else:
        print(f"simulated {result.scenario_length} instants "
              f"({args.hyperperiods} hyper-period(s)), streamed to {len(sinks)} sink(s), "
              f"no trace materialised [{result.backend_name} backend]")
    if args.stream_vcd:
        print(f"streaming VCD trace written to {args.stream_vcd}")
    if stats_sink is not None and stats_sink.result() is not None:
        print(stats_sink.result().summary(limit=20))
    if window_sink is not None and window_sink.result() is not None:
        window = window_sink.result()
        present = sum(
            1 for name in window.flows if window.count_present(name)
        )
        print(
            f"window: last {window.length} instant(s) retained "
            f"(from instant {window_sink.start_instant}), "
            f"{present}/{len(window.flows)} signals active in the window"
        )
    if delta_sink is not None and delta_sink.result() is not None:
        print(delta_sink.result().summary(limit=20))
    if args.scenario_length:
        # Horizon sweep: ONE unbounded symbolic scenario (O(inputs) memory
        # however long the horizons are), reused at every requested length
        # by passing length= at simulate time.
        stimuli = result.options.stimuli_periods if result.options else None
        scenario = default_scenario(result.translation.system_model, None, stimuli)
        runner = create_backend(
            result.translation.system_model,
            backend=args.backend,
            strict=False,
            **(result.options.backend_options if result.options else {}),
        )
        print(f"scenario-length sweep over {len(args.scenario_length)} horizon(s) "
              f"[one symbolic scenario, {len(scenario.inputs)} driven signal(s)]")
        for horizon in args.scenario_length:
            stats = StatisticsSink()
            runner.run(scenario, sinks=[stats], length=horizon)
            streamed = stats.result()
            busiest = max(
                streamed.per_signal.values(),
                key=lambda entry: entry.present,
                default=None,
            ) if streamed.per_signal else None
            top = (
                f", busiest {busiest.name} present {busiest.present}"
                if busiest is not None
                else ""
            )
            print(f"  length {horizon:>10d}: {streamed.length} instants streamed, "
                  f"{len(streamed.per_signal)} signals{top}")
    if args.batch > 0:
        from .casestudies.generator import scenario_sweep

        scenarios = scenario_sweep(
            result.translation.system_model,
            length=result.scenario_length,
            variants=args.batch,
            base_stimuli=None,
        )
        workers = result.options.workers if result.options is not None else 1
        batch = simulate_batch(
            result.translation.system_model,
            scenarios,
            strict=False,
            backend=args.backend,
            backend_options=result.options.backend_options if result.options else None,
            collect_errors=True,
            workers=workers,
            # With --no-trace the sweep streams too: each scenario aggregates
            # into a per-worker statistics sink instead of materialising.
            sink_factory=_stats_sink_factory if args.no_trace else None,
            # Any of these being set routes the sweep through the supervised
            # executor: faulted scenarios are reported, not fatal.
            timeout=result.options.timeout if result.options else None,
            retries=result.options.retries if result.options else None,
            max_failures=result.options.max_failures if result.options else None,
        )
        print(batch.summary())
    fired = {}
    if result.trace is not None:
        alarms = {n: result.trace.clock_of(n) for n in result.trace.signals() if n.endswith("_Alarm")}
        fired = {n: ticks for n, ticks in alarms.items() if ticks}
        print(f"deadline alarms: {fired if fired else 'none'}")
    elif alarm_sink is not None:
        fired = alarm_sink.fired
        print(f"deadline alarms: {fired if fired else 'none'}")
    if result.profile is not None:
        print(result.profile.summary())
    if args.vcd:
        signals = None
        if not args.all_signals:
            signals = sorted(
                n for n in result.trace.signals()
                if n.endswith(("_dispatch", "_start", "_complete", "_Alarm"))
            )
        result.write_vcd(args.vcd, signals=signals)
        print(f"VCD trace written to {args.vcd}")
    return 0 if not fired else 1


def cmd_casestudy(args: argparse.Namespace) -> int:
    if args.list or not args.name:
        print("bundled case studies:")
        for entry in CATALOG:
            print(f"  {entry.name:<20s} {entry.description}")
        return 0
    entry = load_case_study(args.name)
    root = entry.instantiate()
    from .aadl.instance import instance_report

    report = instance_report(root)
    print(f"{entry.name}: {entry.description}")
    for key, value in report.as_dict().items():
        print(f"  {key:<12s}: {value}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    # Lazy import: the store package is only needed by cache users.
    from .store import ArtifactStore, default_cache_dir

    store = ArtifactStore(args.dir or default_cache_dir())
    if args.cache_command == "stats":
        stats = store.stats()
        print(f"persistent cache at {stats['root']}")
        print(f"  entries : {stats['entries']} ({stats['bytes'] / 1024.0:.1f} KiB)")
        for kind in sorted(stats["kinds"]):
            bucket = stats["kinds"][kind]
            print(
                f"  {kind:<10s}: {bucket['entries']} artifact(s), "
                f"{bucket['bytes'] / 1024.0:.1f} KiB"
            )
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} artifact(s) from {store.root}")
        return 0
    if args.cache_command == "prune":
        removed = store.prune(args.max_size_mb)
        stats = store.stats()
        print(
            f"pruned {removed} least-recently-used artifact(s); "
            f"{stats['entries']} remain ({stats['bytes'] / 1024.0:.1f} KiB, "
            f"budget {args.max_size_mb:g} MiB)"
        )
        return 0
    raise SystemExit(f"error: unknown cache command {args.cache_command!r}")


def _parse_predicate(text: str):
    """Parse one ``--where`` clause: ``column<op>value`` with ``<op>`` one of
    ``== != <= >= < =`` (``=`` is equality shorthand); the value side is
    JSON where it parses, a bare string otherwise."""
    import json as _json

    for op, canonical in (
        ("==", "=="), ("!=", "!="), ("<=", "<="), (">=", ">="),
        ("<", "<"), (">", ">"), ("=", "=="),
    ):
        if op in text:
            column, _, raw = text.partition(op)
            raw = raw.strip()
            try:
                value = _json.loads(raw)
            except ValueError:
                value = raw
            return (column.strip(), canonical, value)
    raise SystemExit(f"error: cannot parse --where clause {text!r} (use column=value)")


def cmd_sweep(args: argparse.Namespace) -> int:
    # Lazy import in the house style; the sweep package itself needs no
    # optional dependency (pyarrow only upgrades the shard format).
    from .sweep import SweepResultStore, run_sweep, stimulus_space
    from .sweep.shards import dumps_json

    if args.sweep_command == "run":
        result = _toolchain(args, simulate=False)
        model = result.translation.system_model
        space = stimulus_space(
            model, args.scenarios, seed=args.seed,
            period_range=(args.min_period, args.max_period),
        )
        deltas = None
        if args.deltas:
            deltas = [name.strip() for name in args.deltas.split(",") if name.strip()]
        backend_options = {}
        if getattr(args, "block_size", None):
            backend_options["block_size"] = args.block_size
        try:
            sweep_result = run_sweep(
                model,
                space,
                args.out,
                partition_size=args.partition_size,
                strict=False,
                backend=args.backend,
                backend_options=backend_options,
                workers=args.workers,
                length=args.length,
                deltas=deltas,
                timeout=args.timeout,
                retries=args.retries,
                max_failures=args.max_failures,
                shard_format=args.format,
                resume=args.resume,
            )
        except RuntimeError as exc:
            raise SystemExit(f"error: {exc}")
        print(sweep_result.summary())
        if sweep_result.aggregate is not None:
            print(sweep_result.aggregate.summary(limit=10))
        print(f"shard store written to {args.out}")
        return 0 if sweep_result.ok else 1

    store = SweepResultStore(args.dir)
    if args.sweep_command == "info":
        manifest = store.manifest
        state = "complete" if store.complete else "incomplete"
        print(
            f"sweep store at {args.dir}: {store.count} scenario(s), "
            f"{len(store.partitions())}/{-(-store.count // manifest['partition_size']) if store.count else 0} "
            f"partition(s) ({state}), {manifest['shard_format']} shards"
        )
        print(
            f"  process {manifest['process']!r}, backend {manifest['backend']!r}, "
            f"space {manifest['space'].get('kind', '?')} "
            f"(fingerprint {manifest['space_fingerprint'][:12]})"
        )
        for table in ("scenarios", "statistics", "deltas"):
            print(f"  {table:<10s}: {store.rows(table)} row(s)")
        print(
            f"  {manifest['error_count']} error(s), {manifest['fault_count']} "
            f"fault(s), {manifest['warning_count']} warning(s)"
        )
        aggregate = store.aggregate()
        if aggregate is not None:
            print(aggregate.summary(limit=10))
        return 0
    if args.sweep_command == "query":
        columns = None
        if args.columns:
            columns = [name.strip() for name in args.columns.split(",") if name.strip()]
        where = [_parse_predicate(clause) for clause in (args.where or [])]
        count = 0
        for row in store.query(args.table, columns=columns, where=where, limit=args.limit):
            print(dumps_json(row))
            count += 1
        print(f"-- {count} row(s)", file=sys.stderr)
        return 0
    raise SystemExit(f"error: unknown sweep command {args.sweep_command!r}")


def cmd_serve(args: argparse.Namespace) -> int:
    # Lazy imports keep the CLI usable (and tier-1 green) on installations
    # without the serve extra; the error names the missing piece.
    from .serve import (
        SERVE_FALLBACK_MESSAGE,
        ServiceConfig,
        create_app,
        serve_available,
        uvicorn_available,
    )

    config = ServiceConfig(
        cache_capacity=args.cache_capacity,
        max_concurrent=args.max_concurrent,
        default_backend=args.backend,
        # A served process warm-starts from (and publishes to) the
        # persistent store by default; --no-cache isolates it.
        store=not args.no_cache,
    )
    if args.check:
        if not serve_available():
            raise SystemExit(f"error: {SERVE_FALLBACK_MESSAGE}")
        create_app(config)
        print(
            f"serving stack OK (cache capacity {config.cache_capacity}, "
            f"max concurrent {config.max_concurrent}, backend {config.default_backend!r});"
            f" uvicorn {'available' if uvicorn_available() else 'MISSING'}"
        )
        return 0
    if not serve_available() or not uvicorn_available():
        raise SystemExit(f"error: {SERVE_FALLBACK_MESSAGE}")
    import uvicorn

    uvicorn.run(create_app(config), host=args.host, port=args.port)
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Polychronous analysis and validation for timed software architectures in AADL",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("model", help="path to an .aadl file (or 'producer_consumer' for the bundled case study)")
        p.add_argument("--root", help="root system implementation (default: first system implementation found)")
        p.add_argument("--policy", default="RM", help="scheduling policy: RM, DM, EDF or Priority (default RM)")
        p.add_argument("--no-scheduler", action="store_true", help="translate without scheduler synthesis")
        p.add_argument("--lenient", action="store_true", help="continue on validation errors")
        p.add_argument(
            "--backend",
            default=DEFAULT_BACKEND,
            choices=backend_names(),
            help=f"simulation backend (default {DEFAULT_BACKEND})",
        )
        p.add_argument(
            "--block-size",
            type=_non_negative_int,
            default=0,
            metavar="N",
            help="instants per block of the vectorized backend "
            f"(default {DEFAULT_BLOCK_SIZE}; ignored by the other backends)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="bypass the persistent artifact cache for this run: neither "
            "restore analyses from nor publish them to REPRO_CACHE_DIR / "
            "~/.cache/repro (see 'repro cache' for maintenance)",
        )

    analyse = sub.add_parser("analyse", help="run the complete tool chain and print every report")
    add_common(analyse)
    analyse.add_argument("--hyperperiods", type=int, default=2, help="hyper-periods to simulate (default 2)")
    analyse.set_defaults(func=cmd_analyse)

    schedule = sub.add_parser("schedule", help="synthesise and print the static schedule")
    add_common(schedule)
    schedule.add_argument("--affine", action="store_true", help="also print the affine clock export")
    schedule.set_defaults(func=cmd_schedule)

    translate = sub.add_parser("translate", help="generate the SIGNAL sources")
    add_common(translate)
    translate.add_argument("-o", "--output", default="signal_out", help="output directory (default signal_out/)")
    translate.set_defaults(func=cmd_translate)

    simulate = sub.add_parser("simulate", help="simulate the scheduled model and optionally dump a VCD trace")
    add_common(simulate)
    simulate.add_argument("--hyperperiods", type=int, default=2, help="hyper-periods to simulate (default 2)")
    simulate.add_argument("--vcd", help="path of the VCD trace to write")
    simulate.add_argument("--all-signals", action="store_true", help="record every signal in the VCD trace")
    simulate.add_argument(
        "--batch",
        type=int,
        default=0,
        metavar="N",
        help="additionally run N randomised stimulus scenarios through one prepared backend",
    )
    simulate.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="W",
        help="shard the --batch scenarios over W worker processes "
        "(0 = one per core; results are identical to --workers 1)",
    )
    simulate.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervise the --batch sweep with a wall-clock timeout per "
        "scenario attempt: hung or crashed workers are replaced, failed "
        "attempts retried, and unrecoverable scenarios reported as faults "
        "instead of wedging the sweep",
    )
    simulate.add_argument(
        "--retries",
        type=_non_negative_int,
        default=None,
        metavar="N",
        help="retry each failed --batch scenario up to N times with "
        "exponential backoff (setting this enables supervision; supervised "
        "default 2)",
    )
    simulate.add_argument(
        "--max-failures",
        type=_non_negative_int,
        default=None,
        metavar="N",
        help="circuit breaker for the supervised --batch sweep: after more "
        "than N failed attempts, stop retrying and fault the remaining "
        "scenarios fast",
    )
    simulate.add_argument(
        "--stream-vcd",
        metavar="PATH",
        help="write the VCD trace incrementally while simulating "
        "(O(signals) memory; combine with --no-trace for very long runs). "
        "Variable widths come from the declared signal types — unlike --vcd, "
        "which scans the finished trace — so undeclared or unusually-typed "
        "signals may render with generic register widths",
    )
    simulate.add_argument(
        "--stats",
        action="store_true",
        help="aggregate per-signal statistics while simulating and print them",
    )
    simulate.add_argument(
        "--plan-stats",
        action="store_true",
        help="print the execution-plan partition breakdown for the chosen "
        "backend (vectorized strata incl. recurrence scans and residue "
        "clusters, lowered evaluator counts)",
    )
    simulate.add_argument(
        "--window",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help="retain only the last N instants in a ring-buffer window sink "
        "(combine with --no-trace to debug the end of a long run in "
        "O(signals x N) memory)",
    )
    simulate.add_argument(
        "--deltas",
        metavar="SIGNALS",
        help="stream a change-log sink watching the comma-separated SIGNALS "
        "('all' watches every recorded signal) and print its summary: only "
        "instants where a watched signal changed presence or value are "
        "retained — O(changes) memory for sparse long-horizon monitoring",
    )
    simulate.add_argument(
        "--scenario-length",
        type=_non_negative_int,
        nargs="+",
        default=None,
        metavar="N",
        help="additionally sweep the scheduled model over these horizons, "
        "reusing ONE unbounded symbolic scenario with the length supplied "
        "at simulate time (constant scenario memory however long N is)",
    )
    simulate.add_argument(
        "--no-trace",
        action="store_true",
        help="do not materialise the simulation trace (streaming sinks only; "
        "disables the post-hoc --vcd export and profiling — the deadline-alarm "
        "report and exit code are preserved through a streaming alarm sink)",
    )
    simulate.set_defaults(func=cmd_simulate)

    casestudy = sub.add_parser("casestudy", help="inspect the bundled case studies")
    casestudy.add_argument("name", nargs="?", help="case study name")
    casestudy.add_argument("--list", action="store_true", help="list the available case studies")
    casestudy.set_defaults(func=cmd_casestudy)

    cache = sub.add_parser(
        "cache",
        help="inspect and maintain the persistent artifact cache",
    )
    cache.add_argument(
        "--dir",
        metavar="PATH",
        help="cache directory to operate on (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", help="print entry counts and sizes per artifact kind")
    cache_sub.add_parser("clear", help="remove every cached artifact")
    prune = cache_sub.add_parser(
        "prune", help="evict least-recently-used artifacts down to a size budget"
    )
    prune.add_argument(
        "--max-size-mb",
        type=float,
        required=True,
        metavar="N",
        help="target size of the cache after pruning, in MiB",
    )
    cache.set_defaults(func=cmd_cache)

    sweep = sub.add_parser(
        "sweep",
        help="fleet-scale scenario sweeps over a shard store (run / query / info)",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser(
        "run",
        help="execute a randomised stimulus sweep into a columnar shard store",
    )
    add_common(sweep_run)
    sweep_run.add_argument(
        "--out", required=True, metavar="DIR",
        help="sweep directory for the shards and the manifest",
    )
    sweep_run.add_argument(
        "--scenarios", type=int, default=1000, metavar="N",
        help="scenarios to enumerate from the seeded random space (default 1000)",
    )
    sweep_run.add_argument(
        "--seed", type=int, default=0, help="seed of the scenario space (default 0)"
    )
    sweep_run.add_argument(
        "--length", type=int, default=100, metavar="N",
        help="horizon of every scenario, in instants (default 100)",
    )
    sweep_run.add_argument(
        "--partition-size", type=int, default=1024, metavar="P",
        help="scenarios per partition/shard — bounds peak memory (default 1024)",
    )
    sweep_run.add_argument(
        "--min-period", type=int, default=2, metavar="N",
        help="smallest random stimulus period (default 2)",
    )
    sweep_run.add_argument(
        "--max-period", type=int, default=12, metavar="N",
        help="largest random stimulus period (default 12)",
    )
    sweep_run.add_argument(
        "--workers", type=int, default=1, metavar="W",
        help="worker processes per partition (0 = one per core)",
    )
    sweep_run.add_argument(
        "--deltas", metavar="SIGNALS",
        help="also record a change-log table over the comma-separated SIGNALS",
    )
    sweep_run.add_argument(
        "--format", default="auto", choices=["auto", "parquet", "jsonl"],
        help="shard format (default auto: parquet when pyarrow is installed, "
        "jsonl otherwise)",
    )
    sweep_run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="supervise each partition with a per-scenario wall-clock timeout",
    )
    sweep_run.add_argument(
        "--retries", type=_non_negative_int, default=None, metavar="N",
        help="retry failed scenarios up to N times (enables supervision)",
    )
    sweep_run.add_argument(
        "--max-failures", type=_non_negative_int, default=None, metavar="N",
        help="circuit breaker: stop retrying after N failed attempts",
    )
    sweep_run.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted sweep from its manifest: completed "
        "partitions are skipped, crash-torn shards quarantined",
    )
    sweep_run.set_defaults(func=cmd_sweep)

    sweep_query = sweep_sub.add_parser(
        "query",
        help="stream matching rows of a sweep store as JSON lines",
    )
    sweep_query.add_argument("dir", help="sweep directory (shards + manifest)")
    sweep_query.add_argument(
        "--table", default="scenarios", choices=["scenarios", "statistics", "deltas"],
        help="table to scan (default scenarios)",
    )
    sweep_query.add_argument(
        "--columns", metavar="A,B,...",
        help="project the yielded rows onto these comma-separated columns",
    )
    sweep_query.add_argument(
        "--where", action="append", metavar="COL=VALUE",
        help="filter clause (repeatable): column=value, column!=value, "
        "column<=value... — pushed into the parquet scan where possible",
    )
    sweep_query.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="stop after N rows",
    )
    sweep_query.set_defaults(func=cmd_sweep)

    sweep_info = sweep_sub.add_parser(
        "info",
        help="print a sweep store's manifest summary and sweep-level statistics",
    )
    sweep_info.add_argument("dir", help="sweep directory (shards + manifest)")
    sweep_info.set_defaults(func=cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="start the HTTP simulation service (needs the 'serve' extra)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000, help="bind port (default 8000)")
    serve.add_argument(
        "--cache-capacity",
        type=int,
        default=32,
        metavar="N",
        help="compiled models kept resident in the LRU plan cache (default 32)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        metavar="N",
        help="simulations executing at once before requests get 503 busy (default 4)",
    )
    serve.add_argument(
        "--backend",
        default=DEFAULT_BACKEND,
        choices=backend_names(),
        help=f"default simulation backend of requests naming none (default {DEFAULT_BACKEND})",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="do not back the plan cache with the persistent artifact store "
        "(cold starts then always pay the full toolchain)",
    )
    serve.add_argument(
        "--check",
        action="store_true",
        help="verify the serving stack is importable and exit without binding a socket",
    )
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
