"""E6 / Fig. 6 — the shared data component Queue.

Fig. 6 shows the shared data translated as a single fifo_reset() instance with
partial definitions for the write accesses (eq4) and read accesses at the
readers' clocks.  The benchmark simulates producer/consumer accesses at their
scheduled clocks and checks the data-flow (every value read was previously
written), plus the static determinism argument on the partial definitions.
"""

import pytest

from repro.core.data_model import standalone_shared_data_model
from repro.sig.analysis import check_determinism
from repro.sig.simulator import Scenario, Simulator


def _run(length=240):
    model = standalone_shared_data_model(("thProducer",), ("thConsumer",), data_name="Queue")
    scenario = Scenario(length)
    scenario.set_at("thProducer_write", {t: t // 4 + 1 for t in range(0, length, 4)})
    scenario.set_at("thConsumer_read_req", {t: True for t in range(1, length, 6)})
    return Simulator(model).run(scenario)


def test_bench_fig6_shared_data(benchmark):
    trace = benchmark(_run)

    written = trace.present_values("Queue_w")
    read = trace.present_values("Queue_r")
    print("\nFig. 6 — shared data Queue (producer writes every 4, consumer reads every 6)")
    print(f"  writes: {len(written)}, reads: {len(read)}")
    print(f"  first reads: {read[:6]}")

    # Every read value was written before (or is the initial value 0).
    assert all(value in written or value == 0 for value in read)
    # Reads observe a non-decreasing sequence (the producer counts up).
    assert read == sorted(read)
    # The consumer reads at its own clock: 40 reads over 240 ticks.
    assert len(read) == 40


def test_bench_fig6_partial_definition_structure(pc_translation):
    """The translated process holds one fifo_reset instance and one partial
    definition per writer for the Queue (eq1 / eq4 of Fig. 6)."""
    process = pc_translation.processes["ProducerConsumerSystem.prProdCons"]
    queue_instances = [i for i in process.model.instances if i.instance_name == "Queue"]
    assert len(queue_instances) == 1
    partial = [eq for eq in process.model.equations if eq.partial and eq.target == "Queue_w"]
    assert len(partial) == 1  # single writer (the producer)
    report = check_determinism(process.model)
    assert report.deterministic
