"""E4 / Fig. 4 — the SIGNAL model of the thProducer thread.

Fig. 4 shows the translated thread with its added timing signals: the input
bundles ctl1 (Dispatch, Resume, Deadline) and time1 (frozen/output time
events), the output bundle ctl2 (Complete, Error) and the Alarm output, and
the ports translated as subprocess instances.  The benchmark times the
translation of one thread and checks that interface.
"""

import pytest

from repro.core.thread_model import translate_thread
from repro.sig.printer import interface_summary, to_signal_source


def test_bench_fig4_thread_translation(benchmark, pc_root):
    producer = pc_root.find(["prProdCons", "thProducer"])
    translated = benchmark(translate_thread, producer)
    model = translated.model

    summary = interface_summary(model)
    print("\nFig. 4 — thProducer SIGNAL interface")
    print(f"  inputs : {summary['inputs']}")
    print(f"  outputs: {summary['outputs']}")
    print(f"  bundles: {summary['bundles']}")

    assert set(model.bundles["ctl1"].fields) == {"Dispatch", "Resume", "Deadline"}
    assert set(model.bundles["ctl2"].fields) == {"Complete", "Error"}
    assert any(field.endswith("Frozen_time") for field in model.bundles["time1"].fields)
    assert "Alarm" in {d.name for d in model.outputs()}

    # Ports are implemented as SIGNAL processes, not plain signals.
    port_instances = [i.instance_name for i in model.instances if i.instance_name.startswith("port_")]
    assert "port_pProdStart" in port_instances and "port_pProdOK" in port_instances

    text = to_signal_source(model, include_submodels=False)
    assert "process thProducer =" in text
    assert "ctl1_Dispatch" in text and "time1_pProdStart_Frozen_time" in text
