"""E7 / Section V-C — clock calculus and determinism identification.

"The automaton of the thProducer thread has been checked: without correct
priority properties specified on the transitions, the automaton is found to be
non-deterministic."  The benchmark runs the determinism identification on the
faithful translation (partial definitions, no priorities) and on the resolved
translation (priorities / document order), and times the clock-calculus-based
check on the whole translated system.
"""

import pytest

from repro.core import TranslationConfig, translate_system
from repro.core.thread_model import translate_thread
from repro.sig.analysis import build_clock_report, check_determinism


def test_bench_e7_producer_automaton_determinism(benchmark, pc_root):
    producer = pc_root.find(["prProdCons", "thProducer"])

    faithful = translate_thread(producer, resolve_mode_conflicts=False)
    resolved = translate_thread(producer, resolve_mode_conflicts=True)

    report = benchmark(check_determinism, faithful.model)

    print("\nE7 — determinism identification of the thProducer automaton")
    print(f"  without priorities: {'non-deterministic' if not report.deterministic else 'deterministic'}")
    for issue in report.issues:
        print(f"    - {issue.kind} on {issue.signal}")
    resolved_report = check_determinism(resolved.model)
    print(f"  with priorities   : {'deterministic' if resolved_report.deterministic else 'non-deterministic'}")

    # Paper finding: non-deterministic without priorities…
    assert not report.deterministic
    assert any(issue.signal == "mode_update" for issue in report.issues)
    # …and fixed once the transitions are prioritised.
    assert resolved_report.deterministic


def test_bench_e7_clock_calculus_on_system(benchmark, pc_translation):
    flat = pc_translation.system_model.flatten()
    report = benchmark(build_clock_report, flat)
    print("\nE7 — clock calculus on the translated system")
    print(f"  signals: {report.signal_count}, synchronisation classes: {report.clock_count}")
    assert report.clock_count > 50
    # The only null clocks are the deliberately-unused reset accesses of the
    # shared data components (no reset accessor exists in the case study).
    assert all(name.endswith("_reset") for name in report.null_clock_signals)
