"""E19 — persistent warm starts: the artifact store across processes.

E18 showed that a *resident* service amortises the toolchain; this gate
covers the case E18 cannot: the process restarts.  ``repro.store``
persists the analysed toolchain payload (and the per-subprocess clock
extractions) under a structural fingerprint, so a **second process**
skips parsing, translation and every analysis and pays only hash +
unpickle + plan compilation:

* **cold** — ``run_toolchain`` with the store disabled: parse,
  instantiate, translate, full analysis suite, then backend build;
* **warm** — ``run_toolchain`` over a pre-warmed cache directory with a
  *fresh* :class:`~repro.store.ArtifactStore` instance (a new process,
  in effect), then backend build from the restored flat model.

Gate: **the warm start must be at least 3x faster than cold**.  Trace
bit-parity between the warm-restored model and the cold run is asserted
before any timing, so the speedup is never bought with wrong answers.

A second, softer measurement covers the serving angle: a fresh
``SimulationService`` booting over the warm store directory must handle
its first submit measurably faster than a true cold service — this is
E18's ``before_seconds`` dropping when the store is on.

Recorded as ``persistent_warm_start_e19`` in ``BENCH_e10.json``
(``before_seconds`` = cold, ``after_seconds`` = warm).
"""

from bench_timing import best_of

from repro.aadl.printer import render_model
from repro.casestudies import load_case_study
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain
from repro.serve.service import ServiceConfig, SimulationService
from repro.sig.engine import DEFAULT_BACKEND, create_backend
from repro.sig.engine.batch import default_scenario
from repro.store import ArtifactStore

CASE = "large_integration"
LENGTH = 16  # short horizon: the cold/warm gap must come from the analyses
MIN_SPEEDUP = 3.0
MIN_SERVE_SPEEDUP = 1.5


def _options(store):
    entry = load_case_study(CASE)
    return ToolchainOptions(
        root_implementation=entry.root_implementation,
        default_package=entry.default_package,
        # large_integration is not RM-schedulable; analyse it the way a
        # client would resubmit it (same resolution E18 measures).
        translation=TranslationConfig(include_scheduler=False),
        simulate_hyperperiods=0,
        cost_model=None,
        store=store,
    )


def test_bench_e19_persistent_warm_start(bench_e10, tmp_path):
    source = render_model(load_case_study(CASE).load_model())
    warm_dir = str(tmp_path / "warm")

    # --- parity first: a warm restore must answer bit-identically -------
    cold_result = run_toolchain(source, _options(None))
    seeded = run_toolchain(source, _options(ArtifactStore(warm_dir)))
    assert seeded.store_hit is False  # this run wrote the artifacts
    restored = run_toolchain(source, _options(ArtifactStore(warm_dir)))
    assert restored.store_hit is True
    assert restored.clock_report.summary() == cold_result.clock_report.summary()
    assert restored.summary() == cold_result.summary()

    cold_model = cold_result.flat_model
    warm_model = restored.flat_model
    cold_trace = create_backend(cold_model, DEFAULT_BACKEND).run(
        default_scenario(cold_model, LENGTH)
    )
    warm_trace = create_backend(warm_model, DEFAULT_BACKEND).run(
        default_scenario(warm_model, LENGTH)
    )
    assert warm_trace.length == cold_trace.length
    assert warm_trace.flows == cold_trace.flows

    # --- cold: no store, the full pipeline every time -------------------
    def cold():
        result = run_toolchain(source, _options(None))
        assert result.store_hit is False
        return create_backend(result.flat_model, DEFAULT_BACKEND)

    # --- warm: a fresh process over the warm cache directory -------------
    def warm():
        result = run_toolchain(source, _options(ArtifactStore(warm_dir)))
        assert result.store_hit is True
        return create_backend(result.flat_model, DEFAULT_BACKEND)

    _, cold_seconds = best_of(cold)
    _, warm_seconds = best_of(warm)
    speedup = cold_seconds / warm_seconds

    # --- the serving angle: E18's cold start with the store on -----------
    body = {
        "source": source,
        "root": load_case_study(CASE).root_implementation,
        "package": load_case_study(CASE).default_package,
        "include_scheduler": False,
    }

    def serve_cold():
        return SimulationService(ServiceConfig()).submit(dict(body))

    def serve_warm():
        service = SimulationService(
            ServiceConfig(store=ArtifactStore(warm_dir))
        )
        return service.submit(dict(body))

    cold_submit, serve_cold_seconds = best_of(serve_cold)
    warm_submit, serve_warm_seconds = best_of(serve_warm)
    assert warm_submit["fingerprint"] == cold_submit["fingerprint"]
    assert warm_submit["model"]["analysis"] == cold_submit["model"]["analysis"]
    serve_speedup = serve_cold_seconds / serve_warm_seconds

    bench_e10.record(
        "persistent_warm_start_e19",
        before_seconds=cold_seconds,
        after_seconds=warm_seconds,
        backend=DEFAULT_BACKEND,
        workers=1,
        case_study=CASE,
        length=LENGTH,
        serve_cold_seconds=round(serve_cold_seconds, 4),
        serve_warm_seconds=round(serve_warm_seconds, 4),
        serve_speedup=round(serve_speedup, 2),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"persistent warm start only {speedup:.1f}x faster than cold "
        f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s); the artifact "
        f"store is not amortising the analyses across processes"
    )
    assert serve_speedup >= MIN_SERVE_SPEEDUP, (
        f"a service booting over a warm store is only {serve_speedup:.1f}x "
        f"faster than a true cold start (cold {serve_cold_seconds:.3f}s, "
        f"warm {serve_warm_seconds:.3f}s)"
    )
