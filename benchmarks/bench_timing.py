"""Shared wall-clock measurement discipline for the speedup gates.

The gates compare two backends inside one pytest process, with every
previously-collected trace (and, in a full-suite run, every earlier
test's leftovers) resident on the heap.  Cyclic-GC passes scan that heap
and their cost lands on whichever run happens to trigger them — noise
that regularly flips a 4x engine speedup below a 3x gate.  So gate
timings follow the ``timeit`` discipline: collect once, hold the
collector off while the clock runs, and keep the best of a few repeats
(scheduler preemption and frequency scaling only ever add time).
"""

import gc
import time

#: Wall-clock repeats per timed backend; the minimum estimates true cost.
REPEATS = 2


def best_of(run, repeats=REPEATS):
    """Return ``(result, seconds)`` for the fastest of ``repeats`` calls
    to ``run()``, with the cyclic collector disabled while timing."""
    best_result, best = None, None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = run()
            seconds = time.perf_counter() - start
        finally:
            gc.enable()
        if best is None or seconds < best:
            best_result, best = result, seconds
    return best_result, best
