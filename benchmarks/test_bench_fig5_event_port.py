"""E5 / Fig. 5 — the in event port model (pProdStart).

Fig. 5 shows the in event port translated as a SIGNAL process with two FIFOs:
``in_fifo`` stores the received events and its content is moved to
``frozen_fifo`` at Input_Time (the Frozen_time event).  The benchmark
simulates that port over a long random-ish arrival pattern and checks the
conservation law (no event is lost or duplicated while the queue does not
overflow).
"""

import pytest

from repro.core.port_model import standalone_in_event_port_model
from repro.sig.simulator import Scenario, Simulator


def _scenario(length=240, queue_size=4):
    model = standalone_in_event_port_model("pProdStart", queue_size=queue_size)
    scenario = Scenario(length)
    arrivals = {t: t for t in range(length) if t % 3 == 1 or t % 7 == 2}
    scenario.set_at("pProdStart", arrivals)
    scenario.set_periodic("time1_pProdStart_Frozen_time", 4, 0)
    return model, scenario, arrivals


def _run():
    model, scenario, _ = _scenario()
    return Simulator(model).run(scenario)


def test_bench_fig5_in_event_port(benchmark):
    trace = benchmark(_run)
    model, scenario, arrivals = _scenario()

    counts = trace.present_values("pProdStart_frozen_count")
    dropped = trace.clock_of("pProdStart_dropped")
    print("\nFig. 5 — in event port (Queue_Size = 4, freeze every 4 ticks)")
    print(f"  freezes           : {len(counts)}")
    print(f"  frozen items total: {sum(counts)}")
    print(f"  dropped events    : {len(dropped)}")

    # Conservation: every arrival is either frozen at some Input_Time or dropped
    # (arrivals in the last, incomplete window are still pending).
    pending_last_window = len([t for t in arrivals if t >= 236])
    assert sum(counts) + len(dropped) + pending_last_window == len(arrivals)
    # Queue_Size bounds the number of items per freeze.
    assert max(counts) <= 4
    # The frozen value at each freeze is the most recent arrival before it.
    frozen_values = trace.present_values("pProdStart_frozen")
    assert all(value in arrivals.values() for value in frozen_values)


def test_bench_fig5_queue_size_one_overflow(benchmark):
    """Ablation: the default Queue_Size of 1 drops bursts (Overflow behaviour)."""

    def run():
        model = standalone_in_event_port_model("p", queue_size=1)
        scenario = Scenario(40)
        scenario.set_at("p", {t: t for t in range(40) if t % 4 in (1, 2)})
        scenario.set_periodic("time1_p_Frozen_time", 4, 0)
        return Simulator(model).run(scenario)

    trace = benchmark(run)
    assert trace.clock_of("p_dropped")  # bursts of two arrivals overflow a 1-slot queue
    assert max(trace.present_values("p_frozen_count")) == 1
