"""E3 / Fig. 3 — the system-level SIGNAL model of the case study.

Fig. 3 shows the SIGNAL process generated for the system implementation: an
instance of the Processor1 model communicating with the sysEnv and
sysOperatorDisplay instances, plus the System_behavior() and System_property()
subprocesses.  The benchmark measures the full ASME2SSME translation and
checks that structure (and the generated SIGNAL text).
"""

import pytest

from repro.core import translate_system
from repro.sig.printer import to_signal_source


def test_bench_fig3_system_translation(benchmark, pc_root):
    result = benchmark(translate_system, pc_root)

    system = result.system_model
    instance_names = {inst.instance_name for inst in system.instances}
    print("\nFig. 3 — system-level SIGNAL model instances")
    for name in sorted(instance_names):
        print(f"  {name} :: {next(i.model.name for i in system.instances if i.instance_name == name)}")

    assert {"Processor1", "sysEnv", "sysOperatorDisplay", "System_behavior", "System_property"} <= instance_names

    # The processor instance contains the bound process and the scheduler.
    processor = result.processors["ProducerConsumerSystem.Processor1"]
    processor_instances = {inst.instance_name for inst in processor.model.instances}
    assert {"prProdCons", "scheduler"} <= processor_instances

    text = to_signal_source(system, include_submodels=False)
    assert "process ProducerConsumerSystem_others =" in text
    assert "Processor1 ::" in text and "sysEnv ::" in text and "System_property ::" in text

    stats = result.statistics()
    print(f"  generated models   : {stats['models']}")
    print(f"  generated signals  : {stats['signals']}")
    print(f"  generated equations: {stats['equations']}")
    assert stats["models"] > 50 and stats["signals"] > 300
