"""E9 / Section V-C — simulation of the scheduled model and VCD co-simulation.

The complete tool chain output (scheduled, translated ProducerConsumer) is
executed over two hyper-periods; the trace is checked against the schedule and
dumped as a VCD file, our stand-in for the VCD-based co-simulation demo [18].
"""

import os

import pytest

from repro.sig.simulator import Scenario, Simulator
from repro.sig.vcd import VcdWriter, parse_vcd


def test_bench_e9_scheduled_simulation(benchmark, pc_toolchain):
    result = pc_toolchain
    schedule = next(iter(result.schedules.values()))
    model = result.translation.system_model

    def run():
        scenario = Scenario(2 * schedule.hyperperiod_ticks)
        scenario.set_always("tick")
        scenario.set_periodic("sysEnv_pProdStart_stimulus", 4)
        scenario.set_periodic("sysEnv_pConsStart_stimulus", 6)
        return Simulator(model, strict=False).run(scenario)

    trace = benchmark(run)

    print("\nE9 — simulation of the scheduled ProducerConsumer (2 hyper-periods)")
    print(f"  instants simulated : {trace.length}")
    print(f"  recorded signals   : {len(trace.flows)}")

    # The dispatch clocks observed in simulation match the schedule.
    producer_dispatch = next(n for n in trace.signals() if n.endswith("sched_thProducer_dispatch"))
    assert trace.clock_of(producer_dispatch) == [0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44]
    # No deadline alarm in the nominal scenario.
    for name in trace.signals():
        if name.endswith("_Alarm"):
            assert trace.clock_of(name) == []


def test_bench_e9_vcd_generation(benchmark, pc_toolchain, tmp_path):
    trace = pc_toolchain.trace
    signals = sorted(n for n in trace.signals() if n.endswith(("_dispatch", "_start", "_Alarm")))[:16]

    def render():
        return VcdWriter(timescale="1 ms").render(trace, signals=signals)

    text = benchmark(render)
    path = tmp_path / "producer_consumer.vcd"
    path.write_text(text)
    document = parse_vcd(text)
    print("\nE9 — VCD co-simulation trace")
    print(f"  file size    : {os.path.getsize(path)} bytes")
    print(f"  variables    : {len(document.variables)}")
    print(f"  change times : {len(document.times())}")
    assert set(document.variables) == set(signals)
    assert document.times()
