"""E12 / Section IV-D — static affine-clock scheduler vs a Cheddar-like baseline.

The paper motivates a static, non-preemptive scheduler exported to affine
clocks ("our approach to verify scheduled models makes the main difference
compared to other AADL scheduling tools like Cheddar").  The benchmark
compares the two schedulers on the case study and on random task sets along
the axes of that discussion: feasibility, preemptions (predictability) and
whether the result is exportable to affine clocks for formal verification.
"""

import random

import pytest

from repro.scheduling import (
    SchedulingError,
    SchedulingPolicy,
    StaticSchedulerConfig,
    export_affine_clocks,
    simulate_preemptive,
    synthesise_schedule,
)
from repro.scheduling.task import Task, TaskSet


def _random_task_set(seed, tasks=4, max_utilisation=0.7):
    rng = random.Random(seed)
    ts = TaskSet()
    remaining = max_utilisation
    for index in range(tasks):
        period = rng.choice([4, 5, 8, 10, 16, 20])
        share = remaining / (tasks - index) * rng.uniform(0.5, 1.0)
        wcet = max(1, int(period * share))
        remaining -= wcet / period
        ts.add(Task(name=f"t{index}", period_ms=float(period), deadline_ms=float(period), wcet_ms=float(wcet)))
    return ts


def test_bench_e12_case_study_comparison(benchmark, pc_task_set):
    def both():
        static = synthesise_schedule(pc_task_set)
        baseline = simulate_preemptive(pc_task_set)
        return static, baseline

    static, baseline = benchmark(both)

    rows = [
        ("feasible", static.is_valid(), baseline.schedulable),
        ("preemptions", 0, baseline.total_preemptions),
        ("max response thProducer (ms)", static.max_response_ms("thProducer"),
         baseline.max_response_ms("thProducer")),
        ("exportable to affine clocks", True, baseline.exportable_to_affine_clocks()),
    ]
    print("\nE12 — static affine-clock scheduler vs preemptive (Cheddar-like) baseline")
    print(f"  {'criterion':<32s} {'static':>10s} {'baseline':>10s}")
    for name, static_value, baseline_value in rows:
        print(f"  {name:<32s} {str(static_value):>10s} {str(baseline_value):>10s}")

    assert static.is_valid() and baseline.schedulable
    assert export_affine_clocks(static).all_clocks()
    assert not baseline.exportable_to_affine_clocks()


def test_bench_e12_random_task_sets(benchmark):
    """Sweep random task sets: the preemptive baseline accepts at least every
    set the static non-preemptive synthesis accepts (it is strictly more
    flexible), while only the static one yields a verifiable artefact."""

    def sweep():
        static_ok = baseline_ok = both_ok = 0
        for seed in range(30):
            ts = _random_task_set(seed)
            static_feasible = True
            try:
                synthesise_schedule(ts, StaticSchedulerConfig(policy=SchedulingPolicy.RATE_MONOTONIC))
            except SchedulingError:
                static_feasible = False
            baseline_feasible = simulate_preemptive(ts).schedulable
            static_ok += static_feasible
            baseline_ok += baseline_feasible
            both_ok += static_feasible and baseline_feasible
        return static_ok, baseline_ok, both_ok

    static_ok, baseline_ok, both_ok = benchmark(sweep)
    print("\nE12 — random task sets (30 draws, U <= 0.7)")
    print(f"  static non-preemptive feasible : {static_ok}/30")
    print(f"  preemptive baseline feasible   : {baseline_ok}/30")
    print(f"  feasible for both              : {both_ok}/30")
    assert baseline_ok >= static_ok
    assert both_ok == static_ok
