"""E13 — long-horizon simulation with streaming trace sinks.

The scalability story of the reproduction ("no special size limitation")
has a time axis as well as a model-size axis: a model simulated over a
horizon 100× a short baseline (``LONG_INSTANTS`` instants).  The legacy
:class:`~repro.sig.simulator.SimulationTrace` materialises every instant of
every recorded flow — O(signals × instants) memory — while the streaming
sinks of :mod:`repro.sig.sinks` observe each instant and drop it,
O(signals) memory.

Acceptance gate: growing the horizon 100× must leave the peak memory of a
streaming run essentially flat, while the materialising run on the same
horizon allocates at least an order of magnitude more than the streaming
one.  The measurement is persisted into ``BENCH_e10.json`` next to the
other engine-layer trajectories.
"""

import time
import tracemalloc

from repro.sig import builder as b
from repro.sig.engine import CompiledBackend
from repro.sig.process import ProcessModel
from repro.sig.simulator import Scenario
from repro.sig.sinks import StatisticsSink
from repro.sig.values import BOOLEAN, EVENT, INTEGER

#: Short and long horizons of the flat-memory gate (100× apart).
BASE_INSTANTS = 500
LONG_INSTANTS = 50_000


def _counter_model() -> ProcessModel:
    """A small stateful model: counter, parity, alarm over a threshold."""
    model = ProcessModel("e13_long_run")
    model.input("tick", EVENT)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.output("even", BOOLEAN)
    model.output("wrap", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    model.define("even", b.func("=", b.func("%", b.ref("count"), 2), b.const(0)))
    model.define("wrap", b.func("%", b.ref("count"), 1000))
    return model


def _run_peak(action):
    """Peak traced allocation (bytes) and wall-clock seconds of *action*."""
    tracemalloc.start()
    started = time.perf_counter()
    keep = action()
    seconds = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del keep
    return peak, seconds


def test_bench_e13_streaming_memory_flat(bench_e10):
    """Acceptance gate: 100× more instants, roughly flat streaming memory.

    Scenarios are allocated *before* tracing starts, so the peaks measure
    what the run itself retains: the record lists of the materialising path
    versus the per-signal aggregates of the streaming path.
    """
    runner = CompiledBackend(_counter_model(), strict=False)
    base_scenario = Scenario(BASE_INSTANTS).set_periodic("tick", 1)
    long_scenario = Scenario(LONG_INSTANTS).set_periodic("tick", 1)

    # Warm up outside the traced windows, so one-time allocations (operator
    # tables, interned state) do not inflate the base peak.
    runner.run(base_scenario, sinks=[StatisticsSink()])

    streaming_base_peak, _ = _run_peak(
        lambda: runner.run(base_scenario, sinks=[StatisticsSink()])
    )
    streaming_long_peak, streaming_seconds = _run_peak(
        lambda: runner.run(long_scenario, sinks=[StatisticsSink()])
    )
    materialized_long_peak, materialized_seconds = _run_peak(
        lambda: runner.run(long_scenario)
    )

    growth = streaming_long_peak / max(streaming_base_peak, 1)
    blowup = materialized_long_peak / max(streaming_long_peak, 1)
    bench_e10.record_memory(
        "streaming_trace_memory_100x",
        before_bytes=materialized_long_peak,
        after_bytes=streaming_long_peak,
        backend="compiled",
        instants=LONG_INSTANTS,
        base_instants=BASE_INSTANTS,
        signals=len(runner.process.signals),
        streaming_peak_growth_100x=round(growth, 2),
        run_seconds={"streaming": round(streaming_seconds, 3),
                     "materialized": round(materialized_seconds, 3)},
    )
    print(
        f"\nE13 — streaming {LONG_INSTANTS} instants: peak "
        f"{streaming_long_peak / 1024.0:.0f} KiB (vs {streaming_base_peak / 1024.0:.0f} KiB "
        f"at {BASE_INSTANTS}; growth {growth:.2f}x for 100x instants); "
        f"materialised peak {materialized_long_peak / 1024.0:.0f} KiB ({blowup:.0f}x streaming)"
    )

    # O(signals), not O(signals × instants): 100× the horizon may cost at
    # most a small constant factor (allocator noise) plus slack, nowhere
    # near the 100× a materialised run pays.
    assert streaming_long_peak < 3 * streaming_base_peak + 512 * 1024, (
        f"streaming peak grew {growth:.1f}x for 100x instants — not flat"
    )
    assert materialized_long_peak > 10 * streaming_long_peak, (
        f"materialising only allocated {blowup:.1f}x the streaming peak; "
        f"expected an order of magnitude on a {LONG_INSTANTS}-instant horizon"
    )


def test_bench_e13_streaming_and_materialized_agree(bench_e10):
    """The gate is only meaningful if both modes compute the same run: spot
    check the streamed aggregates against the materialised flows on a
    shorter horizon."""
    runner = CompiledBackend(_counter_model(), strict=False)
    scenario = Scenario(BASE_INSTANTS).set_periodic("tick", 1)
    sink = StatisticsSink()
    runner.run(scenario, sinks=[sink])
    trace = runner.run(scenario)
    stats = sink.result()
    for name in trace.signals():
        assert stats.count_present(name) == trace.count_present(name)
    assert stats.per_signal["count"].maximum == BASE_INSTANTS
    assert stats.per_signal["wrap"].maximum == min(BASE_INSTANTS, 999)
