"""E18 — the serving warm path: compile once, simulate many times.

The whole point of ``repro.serve``'s fingerprint-keyed plan cache is that
a model is flattened, analysed and compiled **once**; every later request
for the same model (byte-identical or merely structurally identical
source) skips straight to a resident execution plan.  This benchmark
measures that on the largest catalog entry (``large_integration``):

* **cold** — a fresh service handling its first request: submit (parse,
  canonicalise, analyse, compile, build the default backend) plus one
  short simulation;
* **warm** — the same service handling the same request again: raw-source
  cache hit plus the same simulation on the resident plan.

Gate: **warm must be at least 10x faster than cold** — the plan cache has
to actually amortise the toolchain, not just memoise a parse.  Bit-parity
of the warm response against a direct in-process run is asserted before
timing anything, so the speedup is never bought with wrong answers.

Recorded as ``serving_warm_path_e18`` in ``BENCH_e10.json``
(``before_seconds`` = cold, ``after_seconds`` = warm).
"""

import json

from bench_timing import best_of

from repro.aadl.printer import render_model
from repro.casestudies import load_case_study
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain
from repro.serve.errors import ServeError
from repro.serve.programs import decode_trace
from repro.serve.service import ServiceConfig, SimulationService
from repro.sig.engine import DEFAULT_BACKEND

CASE = "large_integration"
LENGTH = 16  # short horizon: the cold/warm gap must come from compilation
RECORDED = 12  # a client-style record subset keeps response rendering small
MIN_SPEEDUP = 10.0

SIMULATE_BODY = {
    "scenarios": [{"default": True, "length": LENGTH}],
    "backend": DEFAULT_BACKEND,
}


def _submit_body():
    """The submit body, with ``include_scheduler`` resolved up front.

    ``large_integration`` is not RM-schedulable; a real client learns that
    from the first 422 and resubmits without the scheduler, so the steady
    state being measured here is the resolved body.
    """
    entry = load_case_study(CASE)
    body = {
        "source": render_model(entry.load_model()),
        "root": entry.root_implementation,
        "package": entry.default_package,
    }
    probe = SimulationService(ServiceConfig())
    try:
        probe.submit(dict(body))
    except ServeError as error:
        assert error.code == "unschedulable"
        body["include_scheduler"] = False
    return body


def test_bench_e18_serving_warm_path(bench_e10):
    body = _submit_body()

    # --- parity first: the warm path must answer bit-identically --------
    service = SimulationService(ServiceConfig())
    submitted = service.submit(dict(body))
    response = service.simulate(submitted["fingerprint"], dict(SIMULATE_BODY))
    assert response["ok"] is True
    served = decode_trace(
        json.loads(json.dumps(response["results"][0]["trace"]))
    )
    entry = load_case_study(CASE)
    options = ToolchainOptions(
        root_implementation=entry.root_implementation,
        default_package=entry.default_package,
        simulate_hyperperiods=0,
        cost_model=None,
    )
    if body.get("include_scheduler") is False:
        options.translation = TranslationConfig(include_scheduler=False)
    direct_result = run_toolchain(entry.load_model(), options)
    from repro.sig.engine import create_backend
    from repro.sig.engine.batch import default_scenario

    direct_model = direct_result.translation.system_model
    direct_trace = create_backend(direct_model, DEFAULT_BACKEND).run(
        default_scenario(direct_model, LENGTH)
    )
    assert served.length == direct_trace.length
    assert served.flows == direct_trace.flows

    # The timed request records a client-style signal subset: the gate is
    # about amortising compilation, not about rendering 2000+ flows.
    timed_body = dict(SIMULATE_BODY, record=sorted(served.flows)[:RECORDED])

    # --- cold: fresh service, first request ----------------------------
    def cold():
        fresh = SimulationService(ServiceConfig())
        fingerprint = fresh.submit(dict(body))["fingerprint"]
        return fresh.simulate(fingerprint, dict(timed_body))

    # --- warm: resident plan, byte-identical resubmit ------------------
    def warm():
        fingerprint = service.submit(dict(body))["fingerprint"]
        return service.simulate(fingerprint, dict(timed_body))

    cold_response, cold_seconds = best_of(cold)
    warm_response, warm_seconds = best_of(warm)
    assert cold_response["results"] == warm_response["results"]
    recorded_flows = warm_response["results"][0]["trace"]["flows"]
    assert sorted(recorded_flows) == sorted(served.flows)[:RECORDED]
    for name, values in recorded_flows.items():
        assert values == response["results"][0]["trace"]["flows"][name]

    speedup = cold_seconds / warm_seconds
    bench_e10.record(
        "serving_warm_path_e18",
        before_seconds=cold_seconds,
        after_seconds=warm_seconds,
        backend=DEFAULT_BACKEND,
        workers=1,
        case_study=CASE,
        length=LENGTH,
        cache_hits=service.cache.stats()["hits"],
        compiles=service.cache.stats()["compiles"],
    )
    assert service.cache.compiles[submitted["fingerprint"]] == 1
    assert speedup >= MIN_SPEEDUP, (
        f"warm serving path only {speedup:.1f}x faster than cold "
        f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s); the plan "
        f"cache is not amortising compilation"
    )
