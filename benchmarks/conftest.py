"""Shared fixtures of the benchmark harness.

Each benchmark module regenerates one artefact of the paper (figure, claim or
comparison) and measures the corresponding pipeline stage with
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

Every measurement is stamped with the simulation backend in effect
(``extra_info["backend"]``), so the perf trajectory recorded in the
``BENCH_*.json`` files stays attributable when the default backend changes
across PRs.  Benchmarks that explicitly pick a backend overwrite the stamp;
everything else inherits :data:`repro.sig.engine.DEFAULT_BACKEND`, which is
what ``run_toolchain`` simulates with when no backend is chosen.
"""

import json
import os
import platform
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.casestudies import PRODUCER_CONSUMER_AADL, instantiate_producer_consumer, load_producer_consumer_model
from repro.core import ToolchainOptions, run_toolchain, translate_system
from repro.scheduling import task_set_from_instance
from repro.sig.engine import DEFAULT_BACKEND

#: Where the persisted E10 measurements live (repo root, committed across
#: PRs so the perf trajectory stays reviewable).  Override with the
#: ``REPRO_BENCH_E10_JSON`` environment variable; set it to ``off`` to skip
#: persisting (useful for throwaway local runs).
BENCH_E10_JSON = os.environ.get(
    "REPRO_BENCH_E10_JSON",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_e10.json"),
)


class BenchE10Recorder:
    """Collects per-config wall-clock measurements during a benchmark session
    and merges them into ``BENCH_e10.json`` when the session ends."""

    def __init__(self) -> None:
        self.measurements = {}

    @staticmethod
    def _environment():
        # Environment travels with each entry: merged measurements may come
        # from different machines/sessions, so a file-wide stamp would
        # misattribute them.
        return {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count() or 1,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }

    def record(self, key, *, before_seconds, after_seconds, backend, workers=1, **extra):
        """Record one before/after measurement (seconds of wall-clock)."""
        entry = {
            "before_seconds": round(before_seconds, 4),
            "after_seconds": round(after_seconds, 4),
            "speedup": round(before_seconds / max(after_seconds, 1e-9), 2),
            "backend": backend,
            "workers": workers,
            "environment": self._environment(),
        }
        entry.update(extra)
        self.measurements[key] = entry

    def record_memory(self, key, *, before_bytes, after_bytes, backend, workers=1, **extra):
        """Record one before/after *memory* measurement (bytes of peak
        allocation), kept schema-distinct from the wall-clock entries:
        ``before_mib``/``after_mib``/``memory_ratio`` instead of
        ``*_seconds``/``speedup``, so consumers cannot misread a memory
        ratio as a wall-clock speedup."""
        entry = {
            "before_mib": round(before_bytes / 1048576.0, 4),
            "after_mib": round(after_bytes / 1048576.0, 4),
            "memory_ratio": round(before_bytes / max(after_bytes, 1), 2),
            "backend": backend,
            "workers": workers,
            "environment": self._environment(),
        }
        entry.update(extra)
        self.measurements[key] = entry

    def flush(self, session_config=None) -> None:
        if not self.measurements or BENCH_E10_JSON.lower() == "off":
            return
        # Quick-mode sessions (--benchmark-disable: the tier-1 CI jobs) run
        # the recording tests as plain tests; their timings are not
        # measurements, so they must not churn the committed trajectory.
        if session_config is not None:
            try:
                if session_config.getoption("benchmark_disable"):
                    return
            except (ValueError, KeyError):
                pass
        document = {}
        if os.path.exists(BENCH_E10_JSON):
            try:
                with open(BENCH_E10_JSON, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
            except (OSError, ValueError):
                document = {}
        document.setdefault("measurements", {}).update(self.measurements)
        document.pop("environment", None)  # superseded by per-entry stamps
        # Fold in pytest-benchmark's own statistics when a timed session ran,
        # so ``--benchmark-json`` CI runs and this file stay consistent.
        bench_session = getattr(session_config, "_benchmarksession", None) if session_config else None
        if bench_session is not None and getattr(bench_session, "benchmarks", None):
            stamped = {}
            for bench in bench_session.benchmarks:
                try:
                    stats = bench.stats
                    mean = getattr(stats, "mean", None)
                    if mean is None and hasattr(stats, "stats"):
                        mean = stats.stats.mean
                    if mean is None:
                        continue
                    stamped[bench.name] = {
                        "mean_seconds": round(mean, 4),
                        "rounds": getattr(stats, "rounds", None),
                        "extra_info": dict(getattr(bench, "extra_info", {}) or {}),
                    }
                except Exception:
                    continue
            if stamped:
                document["pytest_benchmark"] = stamped
        with open(BENCH_E10_JSON, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")


_RECORDER = BenchE10Recorder()


@pytest.fixture(scope="session")
def bench_e10():
    """Session-wide recorder for the persisted E10 measurements."""
    return _RECORDER


def pytest_sessionfinish(session, exitstatus):
    _RECORDER.flush(session.config)


@pytest.fixture(autouse=True)
def _attribute_backend(request):
    """Record which simulation backend produced each measurement."""
    if "benchmark" in request.fixturenames:
        benchmark = request.getfixturevalue("benchmark")
        benchmark.extra_info.setdefault("backend", DEFAULT_BACKEND)
    yield


@pytest.fixture(scope="session")
def pc_model():
    return load_producer_consumer_model()


@pytest.fixture(scope="session")
def pc_root(pc_model):
    return instantiate_producer_consumer(pc_model)


@pytest.fixture(scope="session")
def pc_task_set(pc_root):
    return task_set_from_instance(pc_root, ["prProdCons"])


@pytest.fixture(scope="session")
def pc_translation(pc_root):
    return translate_system(pc_root)


@pytest.fixture(scope="session")
def pc_toolchain():
    options = ToolchainOptions(
        root_implementation="ProducerConsumerSystem.others",
        default_package="ProducerConsumer",
        simulate_hyperperiods=2,
        stimuli_periods={"sysEnv_pProdStart_stimulus": 4, "sysEnv_pConsStart_stimulus": 6},
    )
    return run_toolchain(PRODUCER_CONSUMER_AADL, options)
