"""Shared fixtures of the benchmark harness.

Each benchmark module regenerates one artefact of the paper (figure, claim or
comparison) and measures the corresponding pipeline stage with
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

Every measurement is stamped with the simulation backend in effect
(``extra_info["backend"]``), so the perf trajectory recorded in the
``BENCH_*.json`` files stays attributable when the default backend changes
across PRs.  Benchmarks that explicitly pick a backend overwrite the stamp;
everything else inherits :data:`repro.sig.engine.DEFAULT_BACKEND`, which is
what ``run_toolchain`` simulates with when no backend is chosen.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.casestudies import PRODUCER_CONSUMER_AADL, instantiate_producer_consumer, load_producer_consumer_model
from repro.core import ToolchainOptions, run_toolchain, translate_system
from repro.scheduling import task_set_from_instance
from repro.sig.engine import DEFAULT_BACKEND


@pytest.fixture(autouse=True)
def _attribute_backend(request):
    """Record which simulation backend produced each measurement."""
    if "benchmark" in request.fixturenames:
        benchmark = request.getfixturevalue("benchmark")
        benchmark.extra_info.setdefault("backend", DEFAULT_BACKEND)
    yield


@pytest.fixture(scope="session")
def pc_model():
    return load_producer_consumer_model()


@pytest.fixture(scope="session")
def pc_root(pc_model):
    return instantiate_producer_consumer(pc_model)


@pytest.fixture(scope="session")
def pc_task_set(pc_root):
    return task_set_from_instance(pc_root, ["prProdCons"])


@pytest.fixture(scope="session")
def pc_translation(pc_root):
    return translate_system(pc_root)


@pytest.fixture(scope="session")
def pc_toolchain():
    options = ToolchainOptions(
        root_implementation="ProducerConsumerSystem.others",
        default_package="ProducerConsumer",
        simulate_hyperperiods=2,
        stimuli_periods={"sysEnv_pProdStart_stimulus": 4, "sysEnv_pConsStart_stimulus": 6},
    )
    return run_toolchain(PRODUCER_CONSUMER_AADL, options)
