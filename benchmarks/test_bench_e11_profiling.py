"""E11 / Section V-C — profiling-based performance evaluation.

"Profiling has been used for performance evaluation, once a specific hardware
architecture is chosen and the corresponding temporal specification of the
SIGNAL program is defined on this architecture."  The benchmark profiles the
simulated case study against three candidate cost models (architectures) and
checks that the comparison orders them consistently.
"""

import pytest

from repro.sig.profiling import EMBEDDED_CPU, GENERIC_PROCESSOR, MICROCONTROLLER, Profiler, compare_architectures


def test_bench_e11_static_profile(benchmark, pc_toolchain):
    model = pc_toolchain.translation.system_model

    def profile():
        return Profiler(model, GENERIC_PROCESSOR).static_profile()

    static = benchmark(profile)
    print("\nE11 — static profile (generic processor)")
    for name, cost in static.most_expensive(5):
        print(f"  {name:<45s} {cost:8.2f}")
    assert static.total > 0
    assert len(static.per_signal) > 200


def test_bench_e11_architecture_exploration(benchmark, pc_toolchain):
    model = pc_toolchain.translation.system_model
    trace = pc_toolchain.trace

    def explore():
        return compare_architectures(
            model,
            trace,
            {"microcontroller": MICROCONTROLLER, "generic": GENERIC_PROCESSOR, "embedded_cpu": EMBEDDED_CPU},
        )

    profiles = benchmark(explore)
    print("\nE11 — profiling-based architecture exploration (2 hyper-periods)")
    for name, profile in sorted(profiles.items(), key=lambda kv: kv[1].total):
        print(
            f"  {name:<16s} total {profile.total:10.1f}  avg/instant {profile.average_per_instant:8.2f}  "
            f"peak {profile.peak_instant:8.2f}"
        )

    # Faster architecture -> lower estimated execution time; same ordering as
    # the cost models, with roughly the cost-model ratios.
    assert profiles["embedded_cpu"].total < profiles["generic"].total < profiles["microcontroller"].total
    ratio = profiles["microcontroller"].total / profiles["embedded_cpu"].total
    assert ratio > 3.0
