"""E8 / Section IV-D and V-C — thread-level scheduler synthesis.

The four case-study threads (4, 6, 8, 8 ms) are scheduled over the 24 ms
hyper-period under RM and EDF, and the valid schedules are exported to SIGNAL
affine clocks.  The benchmark regenerates the schedule table and the affine
relations and times the synthesis.
"""

import pytest

from repro.scheduling import (
    SchedulingPolicy,
    StaticSchedulerConfig,
    analyse_schedulability,
    analyse_synchronizability,
    export_affine_clocks,
    hyperperiod_ms,
    synthesise_schedule,
)


@pytest.mark.parametrize("policy", [SchedulingPolicy.RATE_MONOTONIC, SchedulingPolicy.EARLIEST_DEADLINE_FIRST])
def test_bench_e8_schedule_synthesis(benchmark, pc_task_set, policy):
    schedule = benchmark(synthesise_schedule, pc_task_set, StaticSchedulerConfig(policy=policy))

    assert hyperperiod_ms(pc_task_set) == 24.0
    assert schedule.hyperperiod_ms == 24.0
    assert schedule.is_valid()
    assert len(schedule.jobs) == 16

    print(f"\nE8 — static non-preemptive schedule ({policy.value}), hyper-period 24 ms")
    for row in schedule.table()[:8]:
        print(
            f"  {row['task']:<12s} job {row['job']}  dispatch {row['dispatch_ms']:>4.1f}  "
            f"start {row['start_ms']:>4.1f}  complete {row['complete_ms']:>4.1f}  deadline {row['deadline_ms']:>4.1f}"
        )
    print(f"  … ({len(schedule.jobs)} jobs, utilisation {schedule.processor_utilisation():.2f})")


def test_bench_e8_affine_export(benchmark, pc_task_set):
    schedule = synthesise_schedule(pc_task_set)
    export = benchmark(export_affine_clocks, schedule)

    print("\nE8 — affine clock export of the RM schedule")
    for task in ("thProducer", "thConsumer", "thProdTimer", "thConsTimer"):
        clock = export.single_affine(task, "dispatch")
        print(f"  {task:<12s} dispatch = {clock}")
    assert export.single_affine("thProducer", "dispatch").period == 4
    assert export.single_affine("thConsumer", "dispatch").period == 6
    assert export.single_affine("thProdTimer", "dispatch").period == 8
    assert export.start_clocks_mutually_disjoint()

    # Affine relation between producer and consumer dispatch clocks: (2, 0, 3).
    relation = export.single_affine("thProducer", "dispatch").relative_relation(
        export.single_affine("thConsumer", "dispatch")
    )
    assert relation == (2, 0, 3)


def test_bench_e8_schedulability_and_synchronizability(benchmark, pc_task_set):
    def analyse():
        return analyse_schedulability(pc_task_set), analyse_synchronizability(pc_task_set)

    schedulability, synchronizability = benchmark(analyse)
    print("\nE8 — analyses")
    print("  " + schedulability.summary().replace("\n", "\n  "))
    print("  " + synchronizability.summary().replace("\n", "\n  "))
    assert schedulability.schedulable
    assert synchronizability.pair("thProdTimer", "thConsTimer").synchronisable
