"""E16 — lowering the residue: scan kernels + clustering + codegen.

E14 vectorized the stateless strata, but on scheduler-heavy models most
targets still run in the interpreted per-instant residual sweep — delayed
job counters above all.  This benchmark extends the E14 generator into a
**residue-dominated** model: affine delay counters (``cnt = zcnt + s``,
promoted to ``np.add.accumulate`` prefix scans), the E14 damped
accumulators (non-affine recurrences, promoted to generated scalar-loop
scans), cell-based holds (genuinely residual: clustered and lowered), and a
thin stateless pipeline for the pre/post strata.

Gate: the fully armed vectorized backend (``scan_recurrences`` +
``cluster_residue`` + ``lowered_residue``) must beat the same backend with
all three disabled — the "current vectorized" of E14 — by **>= 3x**
wall-clock, bit-identically, while the residual fraction drops from
dominant to **< 25%** of targets.  Both fractions are persisted in the
``residue_lowering_e16`` extras of ``BENCH_e10.json``.
"""

import pytest

from bench_timing import best_of

from repro.sig import builder as b
from repro.sig.engine import VectorizedBackend, numpy_available
from repro.sig.values import BOOLEAN, REAL

from test_bench_e14_vectorized import build_numeric_model, sensor_scenario

#: Shape of the E16 model: E14 with few chains (the model must be
#: residue-dominated), plus ``COUNTERS`` affine delay-counter pairs and
#: ``HOLDS`` cell-based sample-and-hold targets.
COUNTERS = 96
HOLDS = 8
INSTANTS = 16000


def build_residue_model(counters=COUNTERS, holds=HOLDS):
    """The E16 workload: mostly delayed state, a thin stateless pipeline."""
    model = build_numeric_model(chains=4, depth=2)
    for k in range(counters):
        sensor = f"s{k % 8}"
        model.local(f"zcnt_{k}", REAL)
        model.output(f"cnt_{k}", REAL)
        model.define(f"zcnt_{k}", b.delay(b.ref(f"cnt_{k}"), init=0.0))
        model.define(f"cnt_{k}", b.ref(f"zcnt_{k}") + b.ref(sensor))
        model.synchronise(f"cnt_{k}", sensor)
        model.synchronise(f"zcnt_{k}", sensor)
        model.output(f"over_{k}", BOOLEAN)
        model.define(f"over_{k}", b.ref(f"cnt_{k}").gt(100.0))
    for k in range(holds):
        sensor = f"s{(k + 3) % 8}"
        model.output(f"hold_{k}", REAL)
        model.define(
            f"hold_{k}", b.cell(b.when(b.ref(sensor), b.ref(sensor).gt(float(k))),
                                b.ref("tick"), init=0.0)
        )
    return model


def test_bench_e16_residue_lowering(bench_e10):
    """Acceptance gate: recurrence scans + residue clustering + lowered
    residual evaluators together >= 3x over the flags-off vectorized
    backend, residual fraction below 25%, bit-identical traces."""
    if not numpy_available():
        pytest.skip("numpy not installed; the vectorized backend has no kernels")
    model = build_residue_model()
    scenario = sensor_scenario(INSTANTS)

    before = VectorizedBackend(
        model,
        strict=False,
        scan_recurrences=False,
        cluster_residue=False,
        lowered_residue=False,
    )
    before_trace, before_seconds = best_of(lambda: before.run(scenario))
    stats_before = before.vector_plan.statistics()

    after = VectorizedBackend(model, strict=False, lowered_residue=True)
    after_trace, after_seconds = best_of(lambda: after.run(scenario))
    stats_after = after.vector_plan.statistics()

    assert after_trace.flows == before_trace.flows
    assert after_trace.warnings == before_trace.warnings
    assert after.vector_plan.fallback_blocks == 0

    fraction_before = stats_before.residual / stats_before.targets
    fraction_after = stats_after.residual / stats_after.targets
    speedup = before_seconds / after_seconds
    bench_e10.record(
        "residue_lowering_e16",
        before_seconds=before_seconds,
        after_seconds=after_seconds,
        backend="vectorized",
        instants=INSTANTS,
        equations=model.equation_count(),
        residual_before=stats_before.residual,
        residual_after=stats_after.residual,
        residue_fraction_before=round(fraction_before, 4),
        residue_fraction_after=round(fraction_after, 4),
        recurrence_targets=stats_after.recurrence,
        residue_clusters=stats_after.clusters,
        lowered_evaluators=stats_after.lowered,
    )
    print(
        f"\nE16 — residue model ({model.equation_count()} equations, "
        f"{INSTANTS} instants): flags-off {before_seconds:.2f}s vs "
        f"armed {after_seconds:.2f}s ({speedup:.1f}x); residual "
        f"{stats_before.residual}/{stats_before.targets} "
        f"({fraction_before:.0%}) -> {stats_after.residual}/"
        f"{stats_after.targets} ({fraction_after:.0%}); {stats_after.summary()}"
    )
    assert fraction_before > 0.5, (
        "E16 model is no longer residue-dominated; the gate would be vacuous"
    )
    assert fraction_after < 0.25, (
        f"residual fraction {fraction_after:.0%} still above the 25% target"
    )
    assert speedup >= 3.0, (
        f"residue-lowering speedup {speedup:.2f}x is below the 3x target"
    )
