"""E2 / Fig. 2 — the thread execution-time model (input freezing).

Fig. 2 shows a periodic thread whose inputs are frozen at Input_Time (the
dispatch by default): the two values arriving after the first Input_Time are
not processed until the next one.  The benchmark replays exactly that scenario
on the translated in-event-port process and on the abstract timing model, and
times the port simulation.
"""

import pytest

from repro.aadl.properties import DispatchProtocol, IOReference, IOTimeSpec
from repro.core.port_model import standalone_in_event_port_model
from repro.core.timing import ThreadEvent, ThreadTimingModel
from repro.sig.simulator import Scenario, Simulator


def _simulate_port():
    model = standalone_in_event_port_model("pIn", queue_size=2)
    scenario = Scenario(12)
    # Value 1 arrives before the first Input_Time (t=0 freeze sees nothing,
    # it arrived at t=-inf..0); values 2 and 3 arrive after the freeze at 0
    # and are therefore only processed at the next Input_Time (t=4), as in Fig. 2.
    scenario.set_at("pIn", {1: 2, 2: 3, 5: 4})
    scenario.set_periodic("time1_pIn_Frozen_time", 4, 0)
    return Simulator(model).run(scenario)


def test_bench_fig2_input_freezing(benchmark):
    trace = benchmark(_simulate_port)

    counts = trace.present_values("pIn_frozen_count")
    frozen = trace.present_values("pIn_frozen")
    print("\nFig. 2 — input freezing at Input_Time (dispatch)")
    print(f"  frozen counts per dispatch : {counts}")
    print(f"  frozen values per dispatch : {frozen}")
    # Values 2 and 3 wait for the second freeze; value 4 for the third.
    assert counts == [0, 2, 1]
    assert frozen == [3, 4]

    # Abstract timing model cross-check (visible arrivals per freeze instant).
    timing = ThreadTimingModel(
        name="th",
        dispatch_protocol=DispatchProtocol.PERIODIC,
        period_ms=4.0,
        deadline_ms=4.0,
        wcet_ms=1.0,
        input_time=IOTimeSpec(IOReference.DISPATCH),
        output_time=IOTimeSpec(IOReference.COMPLETION),
    )
    visible = timing.visible_inputs(arrivals_ms=[1.0, 2.0, 5.0], horizon_ms=12.0)
    assert visible[4.0] == [1.0, 2.0]
    assert visible[8.0] == [5.0]

    events = timing.job_events_ms(0.0)
    assert events[ThreadEvent.COMPLETE] <= events[ThreadEvent.DEADLINE]
