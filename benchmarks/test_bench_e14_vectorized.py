"""E14 — vectorized block execution on a numeric-heavy long-horizon model.

The vectorized backend targets exactly the workload the compiled plan still
pays interpreter dispatch for: long scenarios over models dominated by
stepwise numeric equations.  This benchmark builds such a model — sensor
mixing/filter chains (pre-stratum), delayed accumulators (residual) and
alarm comparisons over them (post-stratum) — runs a long scenario through
both backends, checks bit-identity, and gates the vectorized backend at
**>= 3x** wall-clock over ``compiled``.  The measurement is persisted as
``vectorized_block_e14`` in ``BENCH_e10.json``.  The residue-lowering
follow-up (recurrence scans, residue clustering, lowered evaluators) is
gated separately in ``test_bench_e16_residue_lowering.py``.
"""

import math

import pytest

from bench_timing import best_of

from repro.sig import builder as b
from repro.sig.engine import (
    CompiledBackend,
    DEFAULT_BLOCK_SIZE,
    VectorizedBackend,
    numpy_available,
)
from repro.sig.process import ProcessModel
from repro.sig.simulator import Scenario
from repro.sig.values import BOOLEAN, REAL

#: Shape of the E14 model: ``chains`` filter pipelines of ``depth`` stages
#: over 8 sensors, plus 4 delayed accumulators with alarm comparators.
CHAINS = 24
DEPTH = 8
INSTANTS = 16000


def build_numeric_model(chains=CHAINS, depth=DEPTH) -> ProcessModel:
    """The E14 workload: mostly stateless numeric dataflow, a little state."""
    model = ProcessModel("E14Numeric")
    model.input("tick")
    sensors = []
    for k in range(8):
        model.input(f"s{k}", REAL)
        sensors.append(f"s{k}")
    for c in range(chains):
        left, right = sensors[c % 8], sensors[(c + 3) % 8]
        model.local(f"mix_{c}", REAL)
        model.define(f"mix_{c}", b.ref(left) * 0.6 + b.ref(right) * 0.4)
        previous = f"mix_{c}"
        for d in range(depth):
            stage = f"st_{c}_{d}"
            model.local(stage, REAL)
            model.define(
                stage,
                b.func(
                    "min", b.func("max", b.ref(previous) * 1.01 - 0.005, -100.0), 100.0
                ),
            )
            previous = stage
        model.output(f"out_{c}", REAL)
        model.define(f"out_{c}", b.func("abs", b.ref(previous)))
        model.local(f"hot_{c}", BOOLEAN)
        model.define(f"hot_{c}", b.ref(previous).gt(50.0))
    for k in range(4):
        sensor = sensors[k]
        model.local(f"zacc_{k}", REAL)
        model.output(f"acc_{k}", REAL)
        model.define(f"zacc_{k}", b.delay(b.ref(f"acc_{k}"), init=0.0))
        model.define(f"acc_{k}", b.ref(f"zacc_{k}") * 0.99 + b.ref(sensor))
        model.synchronise(f"acc_{k}", sensor)
        model.synchronise(f"zacc_{k}", sensor)
        model.output(f"alarm_{k}", BOOLEAN)
        model.define(f"alarm_{k}", b.ref(f"acc_{k}").gt(25.0))
    return model


def sensor_scenario(length) -> Scenario:
    """Every sensor present at every instant with a drifting float value."""
    scenario = Scenario(length)
    scenario.set_always("tick")
    for k in range(8):
        scenario.inputs[f"s{k}"] = [
            math.sin(0.01 * t * (k + 1)) * 10.0 + k for t in range(length)
        ]
    return scenario


def test_bench_e14_vectorized_speedup(bench_e10):
    """Acceptance gate: on the numeric-heavy long-horizon model the
    vectorized backend (block kernels included) beats the compiled plan by
    at least 3x wall-clock while staying bit-identical."""
    if not numpy_available():
        pytest.skip("numpy not installed; the vectorized backend has no kernels")
    model = build_numeric_model()
    scenario = sensor_scenario(INSTANTS)

    compiled = CompiledBackend(model, strict=False)
    compiled_trace, compiled_seconds = best_of(lambda: compiled.run(scenario))

    vectorized = VectorizedBackend(model, strict=False)
    vector_trace, vector_seconds = best_of(lambda: vectorized.run(scenario))

    assert vector_trace.flows == compiled_trace.flows
    assert vector_trace.warnings == compiled_trace.warnings
    stats = vectorized.vector_plan.statistics()
    assert vectorized.vector_plan.fallback_blocks == 0

    speedup = compiled_seconds / vector_seconds
    bench_e10.record(
        "vectorized_block_e14",
        before_seconds=compiled_seconds,
        after_seconds=vector_seconds,
        backend="vectorized",
        instants=INSTANTS,
        equations=model.equation_count(),
        block_size=DEFAULT_BLOCK_SIZE,
        pre_stratum=stats.pre_stratum,
        post_stratum=stats.post_stratum,
        residual=stats.residual,
    )
    print(
        f"\nE14 — numeric model ({model.equation_count()} equations, "
        f"{INSTANTS} instants): compiled {compiled_seconds:.2f}s vs "
        f"vectorized {vector_seconds:.2f}s ({speedup:.1f}x); {stats.summary()}"
    )
    assert speedup >= 3.0, f"vectorized speedup {speedup:.2f}x is below the 3x target"
