"""E1 / Fig. 1 — the ProducerConsumer AADL model (prProdCons process).

Regenerates the structural content of Fig. 1: the process ``prProdCons`` with
its four threads, the shared ``Queue``, the timer connections, the binding to
``Processor1`` and the two subsystems, and measures the front-end (parse +
instantiate) on the case study.
"""

import pytest

from repro.aadl.instance import Instantiator, instance_report, processor_bindings
from repro.aadl.parser import parse_string
from repro.casestudies import CASE_STUDY_FACTS, PRODUCER_CONSUMER_AADL


def _front_end():
    model = parse_string(PRODUCER_CONSUMER_AADL)
    root = Instantiator(model, default_package="ProducerConsumer").instantiate("ProducerConsumerSystem.others")
    return model, root


def test_bench_fig1_parse_and_instantiate(benchmark):
    model, root = benchmark(_front_end)

    # --- Fig. 1 content -------------------------------------------------
    process = root.find(["prProdCons"])
    thread_names = sorted(t.name for t in process.threads())
    assert thread_names == sorted(CASE_STUDY_FACTS["threads"])
    periods = {t.name: t.period_ms() for t in process.threads()}
    assert periods == CASE_STUDY_FACTS["periods_ms"]
    assert "Queue" in process.subcomponents
    assert set(root.subcomponents) == {"prProdCons", "Processor1", "sysEnv", "sysOperatorDisplay"}
    bindings = processor_bindings(root)
    assert bindings["ProducerConsumerSystem.prProdCons"].name == CASE_STUDY_FACTS["processor_name"]

    report = instance_report(root)
    rows = {
        "components": report.components,
        "threads": report.threads,
        "ports": report.ports,
        "connections": report.connections,
        "shared data": report.data,
    }
    print("\nFig. 1 — ProducerConsumer instance model")
    for key, value in rows.items():
        print(f"  {key:<12s}: {value}")
    assert report.threads == 4 and report.data == 1 and report.processors == 1
