"""E20 — fleet-scale sweeps: out-of-core partitioned execution stays flat.

PR 10 turned scenario sweeps from an in-memory list comprehension over
``simulate_batch`` into a partitioned, shard-backed pipeline
(:mod:`repro.sweep`).  The gates, persisted into ``BENCH_e10.json``:

1. **Parity first** — the shard store's query results are bit-identical
   to an in-memory ``simulate_batch`` reference on the producer/consumer
   catalog model, row for row, through the same row encoders.  Asserted
   *before* any timing so the memory numbers describe a correct pipeline.
2. **Flat memory** — a 10^5-scenario sweep's peak traced allocation grows
   ≤ 1.3× over a 10^4-scenario sweep of the same shape: peak memory is a
   function of the partition size, not the scenario count, because results
   only ever flow through sinks into shards.
"""

import time
import tracemalloc

from repro.sig import builder as b
from repro.sig.engine import simulate_batch
from repro.sig.process import ProcessModel
from repro.sig.sinks import StatisticsSink
from repro.sig.scenario import Scenario
from repro.sig.values import INTEGER
from repro.sweep import GridSpace, SweepResultStore, run_sweep, stimulus_space
from repro.sweep.shards import statistics_rows

#: Scenario counts of the flat-memory gate (10× apart).
BASE_SCENARIOS = 10_000
FLEET_SCENARIOS = 100_000
PARTITION_SIZE = 1024
#: Horizon of each scenario in the memory gate — short: the gate measures
#: sweep bookkeeping, not simulation state (E15 covers long horizons).
SWEEP_LENGTH = 4

#: Size of the catalog-model parity sweep.
PARITY_SCENARIOS = 200
PARITY_LENGTH = 48


def _sweep_model() -> ProcessModel:
    """A small stateful pipeline: map + accumulator, driven by one input."""
    model = ProcessModel("e20_fleet")
    model.input("x", INTEGER)
    model.output("y", INTEGER)
    model.define("y", b.func("+", b.ref("x"), 1))
    model.local("zacc", INTEGER)
    model.output("acc", INTEGER)
    model.define("zacc", b.delay(b.ref("acc"), init=0))
    model.define("acc", b.func("+", b.ref("zacc"), b.ref("x")))
    model.synchronise("acc", "x")
    model.synchronise("zacc", "x")
    return model


def _space(count: int) -> GridSpace:
    """A grid of *count* scenarios over stimulus period × value."""
    return GridSpace(
        {"period": list(range(1, 101)), "value": list(range(count // 100))},
        _build,
    )


def _build(period, value):
    return Scenario(None).set_periodic("x", period, value=value)


def _stats_factory(index):
    return StatisticsSink()


def _sweep_peak(model, count, out):
    """Peak traced bytes and wall-clock seconds of a full sweep run."""
    space = _space(count)
    assert len(space) == count
    tracemalloc.start()
    started = time.perf_counter()
    result = run_sweep(
        model, space, out, partition_size=PARTITION_SIZE, length=SWEEP_LENGTH
    )
    seconds = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert result.ok and result.complete
    return peak, seconds


def test_bench_e20_catalog_parity(pc_toolchain, tmp_path, bench_e10):
    """Gate 1: shard-store rows == in-memory simulate_batch reference.

    Runs the producer/consumer catalog model through both paths over the
    same randomized stimulus space and compares the statistics table bit
    for bit (same row encoders on both sides, so any divergence is the
    executor's fault, not formatting).
    """
    model = pc_toolchain.translation.system_model
    space = stimulus_space(model, PARITY_SCENARIOS, seed=11)
    out = str(tmp_path / "parity")
    result = run_sweep(
        model, space, out,
        partition_size=64, strict=False, length=PARITY_LENGTH,
    )
    assert result.ok and result.complete

    reference = simulate_batch(
        model,
        [space.scenario(i) for i in range(len(space))],
        strict=False,
        sink_factory=_stats_factory,
        length=PARITY_LENGTH,
    )
    expected = []
    for scenario_id, stats in enumerate(reference.sink_results):
        expected.extend(statistics_rows(scenario_id, stats))
    stored = list(SweepResultStore(out).query("statistics"))
    assert stored == expected, "shard store diverged from in-memory reference"
    assert SweepResultStore(out).rows("scenarios") == PARITY_SCENARIOS


def test_bench_e20_fleet_sweep_flat_memory(tmp_path, bench_e10):
    """Gate 2: 10× the scenarios costs ≤ 1.3× the peak memory."""
    model = _sweep_model()
    # Warm up one-time allocations (backend compile caches, codecs).
    run_sweep(
        model, _space(100), str(tmp_path / "warm"),
        partition_size=PARTITION_SIZE, length=SWEEP_LENGTH,
    )

    base_peak, base_seconds = _sweep_peak(
        model, BASE_SCENARIOS, str(tmp_path / "base")
    )
    fleet_peak, fleet_seconds = _sweep_peak(
        model, FLEET_SCENARIOS, str(tmp_path / "fleet")
    )

    growth = fleet_peak / max(base_peak, 1)
    rate = FLEET_SCENARIOS / fleet_seconds
    print(
        f"\nE20 — fleet sweep of {FLEET_SCENARIOS} scenarios: peak "
        f"{fleet_peak / 1048576.0:.2f} MiB (vs {base_peak / 1048576.0:.2f} MiB "
        f"at {BASE_SCENARIOS}; growth {growth:.2f}x for 10x scenarios) in "
        f"{fleet_seconds:.1f}s ({rate:.0f} scenarios/s)"
    )
    bench_e10.record_memory(
        "fleet_sweep_e20",
        before_bytes=base_peak,
        after_bytes=fleet_peak,
        backend="compiled",
        scenarios=FLEET_SCENARIOS,
        base_scenarios=BASE_SCENARIOS,
        partition_size=PARTITION_SIZE,
        peak_growth_10x=round(growth, 3),
        run_seconds=round(fleet_seconds, 2),
        scenarios_per_second=round(rate, 1),
    )
    # Peak memory is bounded by one partition plus the running aggregate:
    # 10× the fleet may cost manifest bookkeeping, not retained results.
    assert growth <= 1.3, (
        f"peak grew {growth:.2f}x for 10x scenarios — results are being "
        f"retained beyond the partition boundary"
    )
