"""E15 — constant-memory symbolic scenarios on a million-instant horizon.

PR 3 made the *output* side of a long-horizon run O(signals) (streaming
sinks); the scenario side still paid one Python list entry per instant per
driven input.  The symbolic input programs of :mod:`repro.sig.scenario`
remove that last O(instants) wall: a million-instant periodic scenario is a
few rule objects.

Acceptance gates (persisted into ``BENCH_e10.json``):

1. **Representation memory** — building (and holding) the symbolic
   scenario must allocate at least 100× less than force-materialising the
   same scenario into eager per-instant lists
   (:meth:`~repro.sig.scenario.Scenario.materialized`).
2. **End-to-end drive** — actually driving the model for
   ``LONG_INSTANTS`` (one million) instants with periodic inputs through a
   streaming sink keeps the run's peak memory roughly flat versus a 100×
   shorter horizon: the pipeline is O(signals) end to end.

Trace parity of symbolic versus materialised scenarios (the correctness
half of the gate) lives in
``tests/integration/test_scenario_symbolic_parity.py``.
"""

import time
import tracemalloc

from repro.sig import builder as b
from repro.sig.engine import CompiledBackend
from repro.sig.process import ProcessModel
from repro.sig.scenario import Scenario
from repro.sig.sinks import StatisticsSink
from repro.sig.values import BOOLEAN, EVENT, INTEGER, REAL

#: Short and long horizons of the end-to-end flat-memory gate (100× apart).
BASE_INSTANTS = 10_000
LONG_INSTANTS = 1_000_000


def _counter_model() -> ProcessModel:
    """A small stateful model with an extra periodic numeric stimulus."""
    model = ProcessModel("e15_long_run")
    model.input("tick", EVENT)
    model.input("pulse", REAL)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.output("even", BOOLEAN)
    model.output("level", REAL)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    model.define("even", b.func("=", b.func("%", b.ref("count"), 2), b.const(0)))
    model.define("level", b.ref("pulse") * 0.5)
    return model


def _symbolic_scenario(length) -> Scenario:
    """The E15 input program: two periodic rules plus sparse exceptions."""
    return (
        Scenario(length)
        .set_periodic("tick", 2)
        .set_periodic("pulse", 1000, phase=3, value=4.0)
        .set_at("pulse", {17: 8.0})
    )


def _peak_of(action):
    """Peak traced allocation (bytes) and wall-clock seconds of *action*."""
    tracemalloc.start()
    started = time.perf_counter()
    keep = action()
    seconds = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del keep
    return peak, seconds


def test_bench_e15_symbolic_scenario_memory(bench_e10):
    """Gate 1: symbolic representation ≥100× smaller than eager lists."""
    symbolic_peak, _ = _peak_of(lambda: _symbolic_scenario(LONG_INSTANTS))
    scenario = _symbolic_scenario(LONG_INSTANTS)
    materialized_peak, _ = _peak_of(lambda: scenario.materialized())

    ratio = materialized_peak / max(symbolic_peak, 1)
    print(
        f"\nE15 — scenario representation at {LONG_INSTANTS} instants: symbolic "
        f"{symbolic_peak / 1024.0:.1f} KiB vs materialised "
        f"{materialized_peak / 1048576.0:.1f} MiB ({ratio:.0f}x)"
    )
    bench_e10.record_memory(
        "symbolic_scenario_memory_e15",
        before_bytes=materialized_peak,
        after_bytes=symbolic_peak,
        backend="n/a (scenario representation)",
        instants=LONG_INSTANTS,
        driven_inputs=2,
        materialized_over_symbolic=round(ratio, 1),
    )
    # The symbolic program is a handful of rule objects whatever the
    # horizon; the eager expansion is one list entry per instant per input.
    assert symbolic_peak < 64 * 1024, (
        f"symbolic scenario allocated {symbolic_peak} bytes — not constant-size"
    )
    assert ratio >= 100, (
        f"materialising only cost {ratio:.0f}x the symbolic scenario; "
        f"expected >= 100x at {LONG_INSTANTS} instants"
    )


def test_bench_e15_million_instant_drive_flat_memory(bench_e10):
    """Gate 2: driving 1M instants keeps peak memory roughly flat.

    The scenario is built *inside* the traced window — unlike E13, which
    deliberately excluded the (then eager) scenario storage — so the
    measurement covers the whole input side of the pipeline.
    """
    runner = CompiledBackend(_counter_model(), strict=False)
    # Warm up one-time allocations outside the traced windows.
    runner.run(_symbolic_scenario(256), sinks=[StatisticsSink()])

    base_peak, _ = _peak_of(
        lambda: runner.run(_symbolic_scenario(BASE_INSTANTS), sinks=[StatisticsSink()])
    )
    long_peak, long_seconds = _peak_of(
        lambda: runner.run(_symbolic_scenario(LONG_INSTANTS), sinks=[StatisticsSink()])
    )

    growth = long_peak / max(base_peak, 1)
    print(
        f"E15 — driving {LONG_INSTANTS} instants end to end: peak "
        f"{long_peak / 1024.0:.0f} KiB (vs {base_peak / 1024.0:.0f} KiB at "
        f"{BASE_INSTANTS}; growth {growth:.2f}x for 100x instants) in "
        f"{long_seconds:.1f}s"
    )
    bench_e10.record_memory(
        "symbolic_scenario_drive_e15",
        before_bytes=base_peak,
        after_bytes=long_peak,
        backend="compiled",
        instants=LONG_INSTANTS,
        base_instants=BASE_INSTANTS,
        peak_growth_100x=round(growth, 2),
        run_seconds=round(long_seconds, 2),
    )
    # O(signals) end to end: 100× the horizon may cost allocator noise plus
    # slack, nowhere near the 100× an eager input program would pay.
    assert long_peak < 3 * base_peak + 512 * 1024, (
        f"peak grew {growth:.1f}x for 100x instants — the input side is not "
        f"constant-memory"
    )


def test_bench_e15_symbolic_and_materialized_agree(bench_e10):
    """The gates are only meaningful if both representations compute the
    same run: spot-check flows on a shorter horizon."""
    runner = CompiledBackend(_counter_model(), strict=False)
    scenario = _symbolic_scenario(BASE_INSTANTS)
    symbolic_trace = runner.run(scenario)
    eager_trace = runner.run(scenario.materialized())
    assert symbolic_trace.flows == eager_trace.flows
    assert symbolic_trace.warnings == eager_trace.warnings
    assert symbolic_trace.count_present("count") == BASE_INSTANTS // 2
    assert symbolic_trace.value_at("level", 17) == 4.0  # sparse overlay wins
