"""E17 — fault-tolerant batch execution under supervision.

The serving layer and fleet-scale sweeps run on ``run_batch_parallel``;
before they can exist, the execution substrate must survive real faults.
This benchmark drives a 64-scenario batch through the supervised executor
with *injected* crashes, hangs and slowdowns
(:class:`~repro.sig.engine.faults.FaultPlan`) and gates three properties:

1. **survival** — the faulted batch completes (no wedge, no poisoned
   pool), every persistently-injected fault is reported as a typed
   :class:`~repro.sig.engine.supervisor.ScenarioFault` of exactly the
   expected kind, and transient faults are recovered by the retry ladder;
2. **bit-identity** — every surviving scenario's trace equals the
   fault-free serial run of the same scenario, value for value;
3. **overhead** — fault-free *supervised* execution costs at most
   **1.3x** the plain (fire-and-forget) pool on the same 64 scenarios and
   the same 2 workers: supervision is per-scenario pipe messages plus a
   ``connection.wait`` loop, not a second copy of the work.

Recorded as ``fault_tolerance_e17`` in ``BENCH_e10.json``
(``before_seconds`` = plain pool, ``after_seconds`` = supervised
fault-free, so ``speedup`` is the inverse of the overhead ratio).
"""

import pytest

from bench_timing import best_of

from repro.sig import builder as b
from repro.sig.engine import FaultPlan, FaultSpec, create_backend
from repro.sig.engine.parallel import run_batch_parallel
from repro.sig.process import ProcessModel
from repro.sig.scenario import Scenario
from repro.sig.values import BOOLEAN, REAL

SCENARIOS = 64
INSTANTS = 1200
COUNTERS = 16
WORKERS = 2

#: The injections of the chaos run: two unrecoverable scenarios (a
#: persistent crash and a persistent hang), two transient crashes the retry
#: ladder must recover, and two slowdown stragglers that must not fault.
FAULT_SPECS = (
    FaultSpec("crash", 5, attempts=None),
    FaultSpec("hang", 13, attempts=None, delay=0.01),
    FaultSpec("crash", 21, attempts=(0,)),
    FaultSpec("crash", 44, attempts=(0,)),
    FaultSpec("slowdown", 30, attempts=(0,), delay=0.02),
    FaultSpec("slowdown", 51, attempts=(0,), delay=0.02),
)
EXPECTED_FAULTS = {5: "crash", 13: "timeout"}


def build_model(counters=COUNTERS):
    """A delay-counter pipeline: enough per-scenario work that the pool's
    dispatch cost is amortised, built from core operators only (no
    registered user ops, so it ships to spawn workers too)."""
    model = ProcessModel("fault_tolerance_e17")
    model.input("s", REAL)
    for k in range(counters):
        model.local(f"zc_{k}", REAL)
        model.output(f"c_{k}", REAL)
        model.define(f"zc_{k}", b.delay(b.ref(f"c_{k}"), init=float(k)))
        model.define(f"c_{k}", b.ref(f"zc_{k}") + b.ref("s"))
        model.synchronise(f"c_{k}", "s")
        model.synchronise(f"zc_{k}", "s")
        model.output(f"o_{k}", BOOLEAN)
        model.define(f"o_{k}", b.ref(f"c_{k}").gt(50.0 * (k + 1)))
    return model


def build_scenarios(count=SCENARIOS, instants=INSTANTS):
    """One symbolic scenario per batch slot, each with a distinct drive."""
    scenarios = []
    for index in range(count):
        scenario = Scenario(instants)
        scenario.set_periodic("s", 1 + index % 3, value=float(index % 7) + 0.5)
        scenarios.append(scenario)
    return scenarios


def _flows(trace):
    return {name: flow.values for name, flow in trace.flows.items()}


def test_bench_e17_fault_tolerance(bench_e10):
    """Acceptance gate: the chaos batch survives with bit-identical
    survivors and typed faults, and fault-free supervision costs <= 1.3x
    the plain pool."""
    model = build_model()
    runner = create_backend(model, backend="compiled", strict=False)
    scenarios = build_scenarios()

    # Fault-free serial baseline: the bit-identity oracle.
    serial_traces, _, _, _ = run_batch_parallel(
        runner, scenarios, workers=1, collect_errors=True
    )
    assert all(trace is not None for trace in serial_traces)

    # --- survival: the chaos batch completes with typed faults ----------
    plan = FaultPlan(FAULT_SPECS)
    traces, errors, _, faults = run_batch_parallel(
        runner,
        scenarios,
        workers=WORKERS,
        collect_errors=True,
        timeout=5.0,
        retries=2,
        backoff=0.01,
        fault_plan=plan,
    )
    assert not errors
    assert {fault.scenario: fault.kind for fault in faults} == EXPECTED_FAULTS
    for fault in faults:
        assert fault.attempts >= 1
        assert fault.worker is not None
        assert fault.summary()

    # --- bit-identity: every survivor equals the fault-free serial run --
    survivors = [i for i in range(SCENARIOS) if i not in EXPECTED_FAULTS]
    for index in survivors:
        assert traces[index] is not None, f"scenario {index} lost without a fault"
        assert _flows(traces[index]) == _flows(serial_traces[index]), (
            f"scenario {index} diverged from the serial run"
        )
    assert all(traces[index] is None for index in EXPECTED_FAULTS)

    # --- overhead: fault-free supervised <= 1.3x the plain pool ---------
    def plain():
        return run_batch_parallel(
            runner, scenarios, workers=WORKERS, collect_errors=True
        )

    def supervised():
        return run_batch_parallel(
            runner,
            scenarios,
            workers=WORKERS,
            collect_errors=True,
            timeout=60.0,
            retries=2,
        )

    plain_result, plain_seconds = best_of(plain)
    supervised_result, supervised_seconds = best_of(supervised)
    assert not supervised_result[3]  # fault-free: no ScenarioFault entries
    for index in range(SCENARIOS):
        assert _flows(supervised_result[0][index]) == _flows(plain_result[0][index])

    overhead = supervised_seconds / plain_seconds
    bench_e10.record(
        "fault_tolerance_e17",
        before_seconds=plain_seconds,
        after_seconds=supervised_seconds,
        backend="compiled",
        workers=WORKERS,
        scenarios=SCENARIOS,
        instants=INSTANTS,
        equations=model.equation_count(),
        injected_faults=len(FAULT_SPECS),
        reported_faults={str(f.scenario): f.kind for f in faults},
        recovered_transients=[21, 44],
        overhead_ratio=round(overhead, 3),
    )
    print(
        f"\nE17 — fault tolerance ({SCENARIOS} scenarios x {INSTANTS} instants, "
        f"{WORKERS} workers): chaos batch survived with faults "
        f"{sorted(EXPECTED_FAULTS)} and {len(survivors)} bit-identical "
        f"survivors; fault-free plain {plain_seconds:.2f}s vs supervised "
        f"{supervised_seconds:.2f}s ({overhead:.2f}x overhead)"
    )
    assert overhead <= 1.3, (
        f"supervised fault-free overhead {overhead:.2f}x exceeds the 1.3x gate"
    )
