"""E10 / Section IV-E — scalability of the tool chain.

The paper claims that "several thousand clocks can be handled by the clock
calculus", that "most AADL components are considered in order to handle
large-sized systems" and that "more than ten case studies have been tested,
and there is no special size limitation on transformation".  The benchmark
sweeps generated models from tens to thousands of signals, runs the
translation and the clock calculus on each, checks the whole catalog, and
compares the simulation backends (reference interpreter vs compiled
execution plan) on a scheduled model.
"""

import time

import pytest

from repro.aadl.instance import Instantiator, instance_report
from repro.casestudies import CATALOG, GeneratorConfig, generate_case_study
from repro.core import TranslationConfig, translate_system
from repro.sig.clock_calculus import run_clock_calculus
from repro.sig.engine import compile_plan, create_backend, default_scenario
from repro.sig.simulator import Simulator


def _build(processes, threads):
    config = GeneratorConfig(
        name=f"Scale{processes}x{threads}",
        processes=processes,
        threads_per_process=threads,
        harmonic=True,
        seed=processes * 31 + threads,
    )
    generated = generate_case_study(config)
    root = Instantiator(generated.model, default_package=config.name).instantiate(generated.root_implementation)
    return root


@pytest.mark.parametrize("processes,threads", [(1, 4), (2, 6), (4, 8), (8, 10)])
def test_bench_e10_translation_scales(benchmark, processes, threads):
    root = _build(processes, threads)

    def translate():
        return translate_system(root, TranslationConfig(include_scheduler=False))

    result = benchmark(translate)
    stats = result.statistics()
    flat = result.system_model.flatten()
    calculus = run_clock_calculus(flat, flatten=False)
    print(
        f"\nE10 — {processes} processes x {threads} threads: "
        f"{stats['signals']} signals, {stats['equations']} equations, "
        f"{calculus.clock_count()} clocks"
    )
    assert stats["signals"] > 50 * processes
    assert calculus.clock_count() > 10 * processes


def test_bench_e10_thousands_of_clocks(benchmark):
    """The clock calculus handles a translated model with thousands of signals
    (several thousand clock variables before resolution)."""
    root = _build(10, 10)
    result = translate_system(root, TranslationConfig(include_scheduler=False))
    flat = result.system_model.flatten()
    assert flat.signal_count() > 2000

    calculus_result = benchmark(run_clock_calculus, flat, False)
    print(
        f"\nE10 — clock calculus on {flat.signal_count()} signals: "
        f"{calculus_result.clock_count()} synchronisation classes"
    )
    assert calculus_result.clock_count() > 500


def _scheduled_system(processes, threads, wcet_fraction=0.04):
    """A schedulable generated model translated *with* the scheduler."""
    config = GeneratorConfig(
        name=f"Sim{processes}x{threads}",
        processes=processes,
        threads_per_process=threads,
        harmonic=True,
        wcet_fraction=wcet_fraction,
        seed=processes * 13 + threads,
    )
    generated = generate_case_study(config)
    root = Instantiator(generated.model, default_package=config.name).instantiate(
        generated.root_implementation
    )
    return translate_system(root, TranslationConfig(include_scheduler=True))


@pytest.fixture(scope="module")
def scheduled_mid():
    return _scheduled_system(2, 6)


@pytest.mark.parametrize("backend", ["reference", "compiled"])
def test_bench_e10_simulation_backend(benchmark, backend, scheduled_mid):
    """Per-instant simulation cost of each backend on a scheduled model
    (the backend is prepared once, as in the batched workloads)."""
    system_model = scheduled_mid.system_model
    schedule = next(iter(scheduled_mid.schedules.values()))
    scenario = default_scenario(system_model, min(schedule.simulation_length(1), 48))
    runner = create_backend(system_model, backend=backend, strict=False)
    benchmark.extra_info["backend"] = backend

    trace = benchmark(runner.run, scenario)
    assert trace.length == scenario.length
    print(f"\nE10 — {backend} backend: {scenario.length} instants, {len(trace.flows)} signals")


def test_bench_e10_compiled_speedup_on_largest():
    """Acceptance gate: on the largest configuration of the sweep, the
    compiled backend (including plan compilation) beats the reference
    interpreter by at least 3x wall-clock."""
    result = _scheduled_system(8, 10)
    system_model = result.system_model
    schedule = next(iter(result.schedules.values()))
    length = min(schedule.simulation_length(1), 128)
    scenario = default_scenario(system_model, length)

    start = time.perf_counter()
    reference_trace = Simulator(system_model, strict=False).run(scenario)
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    plan = compile_plan(system_model)
    compiled_trace = plan.run(scenario, strict=False)
    compiled_seconds = time.perf_counter() - start

    assert compiled_trace.flows == reference_trace.flows
    speedup = reference_seconds / compiled_seconds
    print(
        f"\nE10 — largest configuration (8x10, {length} instants): "
        f"reference {reference_seconds:.2f}s, compiled {compiled_seconds:.2f}s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0, f"compiled backend speedup {speedup:.2f}x is below the 3x target"


def test_bench_e10_catalog_coverage(benchmark):
    """More than ten case studies translate with no special size limitation."""

    def translate_all():
        sizes = {}
        for entry in CATALOG:
            root = entry.instantiate()
            result = translate_system(root, TranslationConfig(include_scheduler=False))
            sizes[entry.name] = result.system_model.flatten().signal_count()
        return sizes

    sizes = benchmark(translate_all)
    print("\nE10 — catalog coverage")
    for name, size in sorted(sizes.items()):
        print(f"  {name:<20s} {size:>6d} signals")
    assert len(sizes) > 10
    assert all(size > 10 for size in sizes.values())
