"""E10 / Section IV-E — scalability of the tool chain.

The paper claims that "several thousand clocks can be handled by the clock
calculus", that "most AADL components are considered in order to handle
large-sized systems" and that "more than ten case studies have been tested,
and there is no special size limitation on transformation".  The benchmark
sweeps generated models from tens to thousands of signals, runs the
translation and the clock calculus on each, checks the whole catalog, and
compares the simulation backends (reference interpreter vs compiled
execution plan) on a scheduled model.
"""

import os
import time

import pytest

from repro.aadl.instance import Instantiator, instance_report
from repro.casestudies import CATALOG, GeneratorConfig, generate_case_study, scenario_sweep
from repro.core import TranslationConfig, translate_system
from repro.sig.calculus_modular import run_clock_calculus_modular
from repro.sig.clock_calculus import run_clock_calculus
from repro.sig.engine import compile_plan, create_backend, default_scenario, simulate_batch
from repro.sig.simulator import Simulator


def _build(processes, threads):
    config = GeneratorConfig(
        name=f"Scale{processes}x{threads}",
        processes=processes,
        threads_per_process=threads,
        harmonic=True,
        seed=processes * 31 + threads,
    )
    generated = generate_case_study(config)
    root = Instantiator(generated.model, default_package=config.name).instantiate(generated.root_implementation)
    return root


@pytest.mark.parametrize("processes,threads", [(1, 4), (2, 6), (4, 8), (8, 10)])
def test_bench_e10_translation_scales(benchmark, processes, threads):
    root = _build(processes, threads)

    def translate():
        return translate_system(root, TranslationConfig(include_scheduler=False))

    result = benchmark(translate)
    stats = result.statistics()
    flat = result.system_model.flatten()
    calculus = run_clock_calculus(flat, flatten=False)
    print(
        f"\nE10 — {processes} processes x {threads} threads: "
        f"{stats['signals']} signals, {stats['equations']} equations, "
        f"{calculus.clock_count()} clocks"
    )
    assert stats["signals"] > 50 * processes
    assert calculus.clock_count() > 10 * processes


def test_bench_e10_thousands_of_clocks(benchmark, bench_e10):
    """The clock calculus handles a translated model with thousands of signals
    (several thousand clock variables before resolution).

    Acceptance gate of the modular clock calculus: analysing the 10x10 model
    through the per-process structure (memoised subprocess extraction +
    dependency-directed composition) must beat the flat solver by at least
    3x wall-clock while producing the identical analysis.
    """
    root = _build(10, 10)
    result = translate_system(root, TranslationConfig(include_scheduler=False))
    system_model = result.system_model
    flat = system_model.flatten()
    assert flat.signal_count() > 2000

    start = time.perf_counter()
    flat_result = run_clock_calculus(flat, flatten=False)
    flat_seconds = time.perf_counter() - start

    benchmark.extra_info["backend"] = "modular"
    calculus_result = benchmark(run_clock_calculus_modular, system_model)
    start = time.perf_counter()
    run_clock_calculus_modular(system_model)
    modular_seconds = time.perf_counter() - start

    assert calculus_result.same_analysis(flat_result)
    assert calculus_result.clock_count() > 500
    speedup = flat_seconds / modular_seconds
    bench_e10.record(
        "clock_calculus_10x10",
        before_seconds=flat_seconds,
        after_seconds=modular_seconds,
        backend="modular",
        signals=flat.signal_count(),
        classes=calculus_result.clock_count(),
        resolution=calculus_result.resolution,
    )
    print(
        f"\nE10 — clock calculus on {flat.signal_count()} signals: "
        f"{calculus_result.clock_count()} synchronisation classes; "
        f"flat {flat_seconds:.2f}s vs modular {modular_seconds:.2f}s ({speedup:.1f}x)"
    )
    assert speedup >= 3.0, f"modular clock calculus speedup {speedup:.2f}x is below the 3x target"


def _scheduled_system(processes, threads, wcet_fraction=0.04):
    """A schedulable generated model translated *with* the scheduler."""
    config = GeneratorConfig(
        name=f"Sim{processes}x{threads}",
        processes=processes,
        threads_per_process=threads,
        harmonic=True,
        wcet_fraction=wcet_fraction,
        seed=processes * 13 + threads,
    )
    generated = generate_case_study(config)
    root = Instantiator(generated.model, default_package=config.name).instantiate(
        generated.root_implementation
    )
    return translate_system(root, TranslationConfig(include_scheduler=True))


@pytest.fixture(scope="module")
def scheduled_mid():
    return _scheduled_system(2, 6)


@pytest.mark.parametrize("backend", ["reference", "compiled"])
def test_bench_e10_simulation_backend(benchmark, backend, scheduled_mid):
    """Per-instant simulation cost of each backend on a scheduled model
    (the backend is prepared once, as in the batched workloads)."""
    system_model = scheduled_mid.system_model
    schedule = next(iter(scheduled_mid.schedules.values()))
    scenario = default_scenario(system_model, min(schedule.simulation_length(1), 48))
    runner = create_backend(system_model, backend=backend, strict=False)
    benchmark.extra_info["backend"] = backend

    trace = benchmark(runner.run, scenario)
    assert trace.length == scenario.length
    print(f"\nE10 — {backend} backend: {scenario.length} instants, {len(trace.flows)} signals")


def test_bench_e10_compiled_speedup_on_largest(bench_e10):
    """Acceptance gate: on the largest configuration of the sweep, the
    compiled backend (including plan compilation) beats the reference
    interpreter by at least 3x wall-clock."""
    result = _scheduled_system(8, 10)
    system_model = result.system_model
    schedule = next(iter(result.schedules.values()))
    length = min(schedule.simulation_length(1), 128)
    scenario = default_scenario(system_model, length)

    start = time.perf_counter()
    reference_trace = Simulator(system_model, strict=False).run(scenario)
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    plan = compile_plan(system_model)
    compiled_trace = plan.run(scenario, strict=False)
    compiled_seconds = time.perf_counter() - start

    assert compiled_trace.flows == reference_trace.flows
    speedup = reference_seconds / compiled_seconds
    bench_e10.record(
        "simulation_backend_8x10",
        before_seconds=reference_seconds,
        after_seconds=compiled_seconds,
        backend="compiled",
        instants=length,
    )
    print(
        f"\nE10 — largest configuration (8x10, {length} instants): "
        f"reference {reference_seconds:.2f}s, compiled {compiled_seconds:.2f}s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0, f"compiled backend speedup {speedup:.2f}x is below the 3x target"


_PARALLEL_SWEEP_CACHE = {}


def _parallel_sweep_timings(workers, variants=16):
    """One ≥16-scenario sweep run sequentially and sharded over *workers*.

    Memoised per worker count: the recording test and the speedup gate run
    back-to-back in the bench-smoke job and share one measurement.
    """
    cached = _PARALLEL_SWEEP_CACHE.get((workers, variants))
    if cached is not None:
        return cached
    result = _scheduled_system(4, 8)
    system_model = result.system_model
    schedule = next(iter(result.schedules.values()))
    length = min(schedule.simulation_length(1), 96)
    scenarios = scenario_sweep(system_model, length=length, variants=variants, seed=7)

    start = time.perf_counter()
    sequential = simulate_batch(
        system_model, scenarios, strict=False, collect_errors=True, workers=1
    )
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded = simulate_batch(
        system_model, scenarios, strict=False, collect_errors=True, workers=workers
    )
    sharded_seconds = time.perf_counter() - start
    outcome = (sequential, sequential_seconds, sharded, sharded_seconds, length)
    _PARALLEL_SWEEP_CACHE[(workers, variants)] = outcome
    return outcome


def _batch_fingerprint(batch):
    return (
        [None if t is None else {n: f.values for n, f in t.flows.items()} for t in batch.traces],
        [(i, type(e).__name__, str(e)) for i, e in batch.errors],
    )


def test_bench_e10_parallel_batch_recorded(bench_e10):
    """Sharded batch execution is bit-identical to the sequential run; the
    measurement is persisted only on machines with >= 4 cores (the same bar
    as the wall-clock gate below).  On fewer cores process sharding cannot
    win — recording its overhead-dominated timing would look like a
    regression in BENCH_e10.json, so the parity check still runs but the
    timing is not persisted."""
    cores = os.cpu_count() or 1
    workers = min(4, cores) if cores > 1 else 2
    sequential, sequential_seconds, sharded, sharded_seconds, length = _parallel_sweep_timings(workers)

    assert _batch_fingerprint(sequential) == _batch_fingerprint(sharded)
    if cores >= 4:
        bench_e10.record(
            "parallel_batch_4x8",
            before_seconds=sequential_seconds,
            after_seconds=sharded_seconds,
            backend=sharded.backend,
            workers=sharded.workers,
            scenarios=len(sequential.traces),
            instants=length,
            cpu_count=cores,
        )
    else:
        print(
            f"\nE10 — parallel batch timing not recorded: {cores} core(s) "
            "< 4 (parity checked; see the skip condition of the speedup gate)"
        )
    print(
        f"\nE10 — parallel batch (4x8, {len(sequential.traces)} scenarios, {length} instants): "
        f"workers=1 {sequential_seconds:.2f}s vs workers={sharded.workers} {sharded_seconds:.2f}s "
        f"({sequential_seconds / max(sharded_seconds, 1e-9):.1f}x on {os.cpu_count() or 1} core(s))"
    )


def test_bench_e10_parallel_batch_speedup():
    """Acceptance gate: sharding a ≥16-scenario sweep over ≥4 workers gives at
    least a 2x wall-clock speedup (needs ≥4 physical cores to be meaningful)."""
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"parallel speedup gate needs >= 4 cores (found {cores})")
    sequential, sequential_seconds, sharded, sharded_seconds, length = _parallel_sweep_timings(4)

    assert _batch_fingerprint(sequential) == _batch_fingerprint(sharded)
    speedup = sequential_seconds / sharded_seconds
    print(
        f"\nE10 — parallel batch gate (4x8, {len(sequential.traces)} scenarios): "
        f"workers=1 {sequential_seconds:.2f}s vs workers=4 {sharded_seconds:.2f}s ({speedup:.1f}x)"
    )
    assert speedup >= 2.0, f"parallel batch speedup {speedup:.2f}x is below the 2x target"


def test_bench_e10_catalog_coverage(benchmark):
    """More than ten case studies translate with no special size limitation."""

    def translate_all():
        sizes = {}
        for entry in CATALOG:
            root = entry.instantiate()
            result = translate_system(root, TranslationConfig(include_scheduler=False))
            sizes[entry.name] = result.system_model.flatten().signal_count()
        return sizes

    sizes = benchmark(translate_all)
    print("\nE10 — catalog coverage")
    for name, size in sorted(sizes.items()):
        print(f"  {name:<20s} {size:>6d} signals")
    assert len(sizes) > 10
    assert all(size > 10 for size in sizes.values())
