"""The artifact store's core contract: stamped, crash-tolerant, bounded.

Every failure mode of a cache directory — corruption, truncation, version
skew, concurrent writers, unwritable paths — must degrade to a miss (and a
recompute by the caller), never to an exception or a wrong artifact.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.store import (
    SCHEMA_REV,
    ArtifactStore,
    default_cache_dir,
    default_store,
    resolve_store,
)
from repro.store.artifacts import _MAGIC


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "cache"))


# ----------------------------------------------------------------------
# round trips and counters
# ----------------------------------------------------------------------
def test_round_trip(store):
    artifact = {"plan": list(range(100)), "name": "x"}
    assert store.save("toolchain", "ab" * 32, artifact) is True
    assert store.load("toolchain", "ab" * 32) == artifact
    assert (store.hits, store.misses, store.writes) == (1, 0, 1)


def test_missing_key_misses(store):
    assert store.load("toolchain", "cd" * 32) is None
    assert (store.hits, store.misses) == (0, 1)


def test_layout_shards_by_key_prefix(store):
    store.save("kindx", "abcdef", 1)
    assert os.path.exists(os.path.join(store.root, "kindx", "ab", "abcdef.pkl"))


def test_hit_bumps_mtime_for_lru(store):
    store.save("k", "aa", 1)
    path = store.path_for("k", "aa")
    os.utime(path, (1, 1))
    store.load("k", "aa")
    assert os.stat(path).st_mtime > 1


def test_invalid_keys_rejected(store):
    for key in ("", "../evil", "a/b", f"x{os.sep}y"):
        with pytest.raises(ValueError):
            store.path_for("kind", key)


def test_delete_and_clear(store):
    store.save("k", "aa", 1)
    store.save("k", "bb", 2)
    assert store.delete("k", "aa") is True
    assert store.delete("k", "aa") is False
    assert store.clear() == 1
    assert store.load("k", "bb") is None


# ----------------------------------------------------------------------
# version stamps: skew misses, never deserialises
# ----------------------------------------------------------------------
def _rewrite_stamp(store, kind, key, mutate):
    path = store.path_for(kind, key)
    with open(path, "rb") as handle:
        data = handle.read()
    body = data[len(_MAGIC):]
    newline = body.index(b"\n")
    stamp = json.loads(body[:newline])
    mutate(stamp)
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(json.dumps(stamp, sort_keys=True).encode("utf-8") + b"\n")
        handle.write(body[newline + 1:])


@pytest.mark.parametrize(
    "mutate",
    [
        lambda stamp: stamp.update(schema=SCHEMA_REV + 1),
        lambda stamp: stamp.update(repro="0.0.0"),
        lambda stamp: stamp.update(python="2.7"),
    ],
    ids=["schema", "repro-version", "python-version"],
)
def test_stamp_mismatch_misses_and_removes(store, mutate):
    store.save("k", "aa", {"payload": 1})
    _rewrite_stamp(store, "k", "aa", mutate)
    assert store.load("k", "aa") is None
    assert store.stale == 1
    assert not os.path.exists(store.path_for("k", "aa"))
    # The caller's recompute overwrites cleanly.
    store.save("k", "aa", {"payload": 2})
    assert store.load("k", "aa") == {"payload": 2}


# ----------------------------------------------------------------------
# corruption: silent miss + removal, never an exception
# ----------------------------------------------------------------------
def _corrupt(path, data):
    with open(path, "wb") as handle:
        handle.write(data)


@pytest.mark.parametrize(
    "corruption",
    [
        b"",  # empty file
        b"garbage",  # not an artifact at all
        _MAGIC,  # magic but no stamp
        _MAGIC + b"not-json\n" + b"xx",  # unparseable stamp
    ],
    ids=["empty", "garbage", "no-stamp", "bad-stamp"],
)
def test_corrupt_artifact_misses_and_removes(store, corruption):
    store.save("k", "aa", [1, 2, 3])
    path = store.path_for("k", "aa")
    _corrupt(path, corruption)
    assert store.load("k", "aa") is None
    assert store.corrupt == 1
    assert not os.path.exists(path)


def test_truncated_payload_misses(store):
    store.save("k", "aa", list(range(1000)))
    path = store.path_for("k", "aa")
    with open(path, "rb") as handle:
        data = handle.read()
    _corrupt(path, data[: len(data) - len(data) // 3])
    assert store.load("k", "aa") is None
    assert store.corrupt == 1


def test_artifact_path_is_directory(store):
    # A directory squatting on the artifact path: load treats it as corrupt
    # (removal is best-effort and fails silently), save counts a write error.
    path = store.path_for("k", "aa")
    os.makedirs(path)
    assert store.load("k", "aa") is None
    assert store.corrupt == 1
    assert store.save("k", "aa", 1) is False
    assert store.write_errors == 1


def test_unpicklable_artifact_counts_write_error(store):
    assert store.save("k", "aa", lambda x: x) is False
    assert store.write_errors == 1
    assert store.load("k", "aa") is None


# ----------------------------------------------------------------------
# pruning: LRU by mtime, size-capped
# ----------------------------------------------------------------------
def test_prune_evicts_least_recently_used_first(store):
    payload = os.urandom(4096)
    for index, key in enumerate(["aa", "bb", "cc", "dd"]):
        store.save("k", key, payload)
        os.utime(store.path_for("k", key), (index + 1, index + 1))
    # "cc" becomes the most recently used despite its older write.
    store.load("k", "cc")
    removed = store.prune(max_size_mb=2 * 4200 / (1024.0 * 1024.0))
    assert removed == 2
    assert not os.path.exists(store.path_for("k", "aa"))
    assert not os.path.exists(store.path_for("k", "bb"))
    assert os.path.exists(store.path_for("k", "cc"))
    assert os.path.exists(store.path_for("k", "dd"))


def test_prune_to_zero_clears_everything(store):
    store.save("k", "aa", 1)
    store.save("j", "bb", 2)
    assert store.prune(0) == 2
    assert store.stats()["entries"] == 0


def test_auto_prune_budget_on_save(tmp_path):
    store = ArtifactStore(str(tmp_path), max_size_mb=10 * 4200 / (1024.0 * 1024.0))
    payload = os.urandom(4096)
    for index in range(30):
        store.save("k", f"{index:02d}key", payload)
    assert store.stats()["entries"] <= 10


def test_stats_census(store):
    store.save("toolchain", "aa", 1)
    store.save("extraction", "bb", 2)
    store.save("extraction", "cc", 3)
    stats = store.stats()
    assert stats["entries"] == 3
    assert stats["kinds"]["extraction"]["entries"] == 2
    assert stats["kinds"]["toolchain"]["entries"] == 1
    assert stats["bytes"] > 0
    assert stats["root"] == store.root


# ----------------------------------------------------------------------
# resolution: env plumbing and settings coercion
# ----------------------------------------------------------------------
def test_default_cache_dir_prefers_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
    assert default_cache_dir() == str(tmp_path / "explicit")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == str(tmp_path / "xdg" / "repro")
    monkeypatch.delenv("XDG_CACHE_HOME")
    assert default_cache_dir().endswith(os.path.join(".cache", "repro"))


def test_resolve_store_settings(monkeypatch, tmp_path):
    assert resolve_store(None) is None
    assert resolve_store(False) is None
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    resolved = resolve_store(True)
    assert isinstance(resolved, ArtifactStore)
    assert resolved.root == str(tmp_path)
    assert default_store().root == str(tmp_path)
    explicit = ArtifactStore(str(tmp_path / "own"))
    assert resolve_store(explicit) is explicit
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    assert resolve_store(True) is None  # one env var silences every cache user
    assert resolve_store(explicit) is explicit  # explicit instances still win
    with pytest.raises(TypeError):
        resolve_store("~/.cache/repro")


# ----------------------------------------------------------------------
# concurrency: a thread storm over one directory
# ----------------------------------------------------------------------
def test_concurrent_writers_and_readers_one_store_dir(tmp_path):
    """Many threads, several store instances, one directory: every load is
    either a miss or a complete, correct artifact — no torn reads, no raise."""
    root = str(tmp_path / "shared")
    keys = [f"{index:02d}" + "e" * 6 for index in range(8)]
    payloads = {key: {"key": key, "data": list(range(256))} for key in keys}
    stores = [ArtifactStore(root) for _ in range(4)]
    errors = []
    barrier = threading.Barrier(8)

    def worker(store):
        try:
            barrier.wait()
            for _round in range(20):
                for key in keys:
                    loaded = store.load("k", key)
                    assert loaded is None or loaded == payloads[key], loaded
                    store.save("k", key, payloads[key])
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(stores[index % len(stores)],))
        for index in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    final = ArtifactStore(root)
    for key in keys:
        assert final.load("k", key) == payloads[key]
