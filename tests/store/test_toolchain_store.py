"""Persistent warm starts through :func:`run_toolchain` and the CLI.

The store contract at the toolchain level: a warm restore is
**behaviourally invisible** — identical reports, identical traces,
identical CLI output — and every corruption/mismatch path silently falls
back to a cold run that republishes the artifact.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.casestudies import PRODUCER_CONSUMER_AADL
from repro.cli import main
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain
from repro.core.translator import TranslationConfig as _TranslationConfig
from repro.sig.calculus_modular import ExtractionCache, ModularClockCalculus
from repro.store import (
    KIND_INDEX,
    KIND_TOOLCHAIN,
    ArtifactStore,
    toolchain_options_key,
)

ROOT = "ProducerConsumerSystem.others"
PACKAGE = "ProducerConsumer"
STIMULI = {"sysEnv_pProdStart_stimulus": 4, "sysEnv_pConsStart_stimulus": 6}


def _options(store, **overrides):
    base = dict(
        root_implementation=ROOT,
        default_package=PACKAGE,
        simulate_hyperperiods=2,
        stimuli_periods=dict(STIMULI),
        store=store,
    )
    base.update(overrides)
    return ToolchainOptions(**base)


def _assert_equivalent(cold, warm):
    assert cold.clock_report.summary() == warm.clock_report.summary()
    assert cold.determinism.deterministic == warm.determinism.deterministic
    assert cold.deadlocks.deadlock_free == warm.deadlocks.deadlock_free
    assert sorted(cold.schedulability) == sorted(warm.schedulability)
    for name in cold.schedulability:
        assert (
            cold.schedulability[name].summary()
            == warm.schedulability[name].summary()
        )
    assert cold.summary() == warm.summary()
    assert cold.trace is not None and warm.trace is not None
    assert cold.trace.length == warm.trace.length
    assert cold.trace.flows == warm.trace.flows


# ----------------------------------------------------------------------
# warm restores are bit-identical
# ----------------------------------------------------------------------
def test_warm_restore_is_equivalent_across_store_instances(tmp_path):
    root = str(tmp_path / "cache")
    cold = run_toolchain(PRODUCER_CONSUMER_AADL, _options(ArtifactStore(root)))
    assert cold.store_hit is False
    assert cold.store_fingerprint
    assert cold.calculus_stats is not None
    assert cold.calculus_stats.extraction_disk_writes > 0

    # A fresh store instance over the same directory models a new process.
    warm = run_toolchain(PRODUCER_CONSUMER_AADL, _options(ArtifactStore(root)))
    assert warm.store_hit is True
    assert warm.store_fingerprint == cold.store_fingerprint
    assert warm.calculus_stats is None  # no calculus ran at all
    _assert_equivalent(cold, warm)


def test_textual_fast_path_and_structural_convergence(tmp_path):
    store = ArtifactStore(str(tmp_path))
    run_toolchain(PRODUCER_CONSUMER_AADL, _options(store))
    # Byte-identical source: the raw index maps straight to the payload.
    index_entries = store.stats()["kinds"].get(KIND_INDEX, {"entries": 0})
    assert index_entries["entries"] == 1
    warm = run_toolchain(PRODUCER_CONSUMER_AADL, _options(store))
    assert warm.store_hit is True
    # Reformatted but structurally identical source converges through the
    # canonical rendering on the same fingerprint.
    reformatted = PRODUCER_CONSUMER_AADL.replace("\n", "\n  ").replace("  ", " \t ")
    rewarm = run_toolchain(reformatted, _options(store))
    assert rewarm.store_hit is True
    assert rewarm.store_fingerprint == warm.store_fingerprint


def test_declarative_model_input_warm_starts(tmp_path, pc_model):
    store = ArtifactStore(str(tmp_path))
    cold = run_toolchain(pc_model, _options(store))
    assert cold.store_hit is False
    warm = run_toolchain(pc_model, _options(store))
    assert warm.store_hit is True
    _assert_equivalent(cold, warm)


def test_options_split_the_fingerprint(tmp_path):
    store = ArtifactStore(str(tmp_path))
    scheduled = run_toolchain(PRODUCER_CONSUMER_AADL, _options(store))
    unscheduled = run_toolchain(
        PRODUCER_CONSUMER_AADL,
        _options(store, translation=TranslationConfig(include_scheduler=False)),
    )
    # Different analysis options must never share an artifact.
    assert unscheduled.store_hit is False
    assert unscheduled.store_fingerprint != scheduled.store_fingerprint


def test_no_store_runs_stay_self_contained(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never"))
    result = run_toolchain(PRODUCER_CONSUMER_AADL, _options(None))
    assert result.store_hit is False
    assert result.store_fingerprint == ""
    assert not os.path.exists(str(tmp_path / "never"))


def test_cache_disable_env_silences_default_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "disabled"))
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    result = run_toolchain(PRODUCER_CONSUMER_AADL, _options(True))
    assert result.store_hit is False
    assert not os.path.exists(str(tmp_path / "disabled"))


def test_unkeyable_options_bypass_the_store():
    options = _options(True)
    options.translation = _TranslationConfig()
    options.translation.thread_behaviours = {"thread": object()}
    assert toolchain_options_key(options) is None


# ----------------------------------------------------------------------
# corruption: silent recompute + republish
# ----------------------------------------------------------------------
def test_corrupt_toolchain_artifact_recomputes_and_overwrites(tmp_path):
    store = ArtifactStore(str(tmp_path))
    cold = run_toolchain(PRODUCER_CONSUMER_AADL, _options(store))
    path = store.path_for(KIND_TOOLCHAIN, cold.store_fingerprint)
    with open(path, "wb") as handle:
        handle.write(b"not an artifact at all")

    recovered = run_toolchain(PRODUCER_CONSUMER_AADL, _options(ArtifactStore(str(tmp_path))))
    assert recovered.store_hit is False  # silently recomputed
    _assert_equivalent(cold, recovered)

    warm = run_toolchain(PRODUCER_CONSUMER_AADL, _options(ArtifactStore(str(tmp_path))))
    assert warm.store_hit is True  # ...and republished


def test_malformed_payload_dict_recomputes(tmp_path):
    import pickle

    store = ArtifactStore(str(tmp_path))
    cold = run_toolchain(PRODUCER_CONSUMER_AADL, _options(store))
    # A well-stamped artifact whose payload is not a toolchain dict at all:
    # the unpickle succeeds, the restore must still fall back cleanly.
    store.save(KIND_TOOLCHAIN, cold.store_fingerprint, {"wrong": "shape"})
    recovered = run_toolchain(PRODUCER_CONSUMER_AADL, _options(store))
    assert recovered.store_hit is False
    _assert_equivalent(cold, recovered)


# ----------------------------------------------------------------------
# the extraction disk tier: incremental re-analysis across processes
# ----------------------------------------------------------------------
def test_extraction_disk_tier_across_cache_instances(tmp_path, pc_translation):
    root = str(tmp_path)
    model = pc_translation.system_model

    first = ModularClockCalculus(model, cache=ExtractionCache(store=ArtifactStore(root)))
    baseline = first.run()
    assert first.stats.extraction_misses > 0
    assert first.stats.extraction_disk_writes == first.stats.extraction_misses
    assert first.stats.extraction_disk_hits == 0

    # A fresh process (fresh cache, fresh store instance) computes nothing.
    second = ModularClockCalculus(model, cache=ExtractionCache(store=ArtifactStore(root)))
    warm = second.run()
    assert second.stats.extraction_misses == 0
    assert second.stats.extraction_disk_hits > 0
    assert warm.same_analysis(baseline)
    assert "disk hit(s)" in second.stats.summary()


def test_edited_model_resolves_only_changed_subtrees(tmp_path):
    """The incremental half: an edited model re-extracts only what changed."""
    root = str(tmp_path)
    original = run_toolchain(PRODUCER_CONSUMER_AADL, _options(ArtifactStore(root)))
    computed_cold = original.calculus_stats.extraction_misses

    # "Edit" the model: a different consumer period changes the shapes of the
    # affected subprocesses but leaves every other subtree untouched.
    edited_source = PRODUCER_CONSUMER_AADL.replace("Period => 6 ms", "Period => 12 ms")
    assert edited_source != PRODUCER_CONSUMER_AADL
    edited = run_toolchain(
        edited_source, _options(ArtifactStore(root), simulate_hyperperiods=0)
    )
    assert edited.store_hit is False  # different model, different fingerprint
    stats = edited.calculus_stats
    # Most subprocess shapes are shared with the original analysis and come
    # off disk; only the edited subtrees are extracted again.
    assert stats.extraction_disk_hits > 0
    assert stats.extraction_misses < computed_cold


def test_extraction_counters_without_store_unchanged(pc_translation):
    cache = ExtractionCache()
    calculus = ModularClockCalculus(pc_translation.system_model, cache=cache)
    calculus.run()
    assert cache.disk_hits == 0 and cache.disk_writes == 0
    assert calculus.stats.extraction_disk_hits == 0
    assert "disk" not in calculus.stats.summary()


# ----------------------------------------------------------------------
# CLI plumbing: --no-cache, warm-start line, the cache subcommand
# ----------------------------------------------------------------------
def test_cli_simulate_warm_start_line(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli"))
    assert main(["simulate", "producer_consumer"]) == 0
    first = capsys.readouterr().out
    assert "warm start" not in first

    assert main(["simulate", "producer_consumer"]) == 0
    second = capsys.readouterr().out
    assert "warm start: analyses restored from the persistent cache" in second
    # Identical user-visible simulation output, warm line aside.
    assert [
        line for line in second.splitlines() if not line.startswith("warm start")
    ] == first.splitlines()


def test_cli_no_cache_bypasses_the_store(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli"))
    for _ in range(2):
        assert main(["simulate", "producer_consumer", "--no-cache"]) == 0
        assert "warm start" not in capsys.readouterr().out
    assert not os.path.exists(str(tmp_path / "cli"))


def test_cli_plan_stats_reports_extraction_counters(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli"))
    assert main(["simulate", "producer_consumer", "--plan-stats"]) == 0
    cold = capsys.readouterr().out
    assert "modular clock calculus:" in cold
    assert "disk write(s)" in cold
    assert main(["simulate", "producer_consumer", "--plan-stats"]) == 0
    warm = capsys.readouterr().out
    assert "clock calculus skipped: analyses restored" in warm


def test_cli_cache_stats_clear_prune(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli"))
    assert main(["simulate", "producer_consumer"]) == 0
    capsys.readouterr()

    assert main(["cache", "stats"]) == 0
    stats = capsys.readouterr().out
    assert "toolchain" in stats and "extraction" in stats

    assert main(["cache", "prune", "--max-size-mb", "0"]) == 0
    assert "pruned" in capsys.readouterr().out
    assert main(["cache", "stats"]) == 0
    assert "entries : 0" in capsys.readouterr().out

    assert main(["simulate", "producer_consumer"]) == 0
    capsys.readouterr()
    assert main(["cache", "clear"]) == 0
    assert "removed" in capsys.readouterr().out
    assert main(["cache", "stats"]) == 0
    assert "entries : 0" in capsys.readouterr().out


def test_cli_cache_dir_flag_overrides_env(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert main(["simulate", "producer_consumer"]) == 0
    capsys.readouterr()
    assert main(["cache", "--dir", str(tmp_path / "elsewhere"), "stats"]) == 0
    assert "entries : 0" in capsys.readouterr().out


def test_cli_warm_start_across_real_processes(tmp_path):
    """The actual E19 claim at smoke scale: two OS processes, one cache."""
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path / "x"), PYTHONPATH=src)
    command = [sys.executable, "-m", "repro", "simulate", "producer_consumer"]
    first = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=120
    )
    assert first.returncode == 0, first.stderr
    assert "warm start" not in first.stdout
    second = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=120
    )
    assert second.returncode == 0, second.stderr
    assert "warm start: analyses restored from the persistent cache" in second.stdout
