"""Tests of the persistent artifact store (:mod:`repro.store`)."""
