"""Tests of the dependency graph and the static analyses (determinism, deadlock)."""

import pytest

from repro.sig import builder as b
from repro.sig import library
from repro.sig.analysis import build_clock_report, check_determinism, detect_deadlocks
from repro.sig.process import ProcessModel
from repro.sig.scheduler_graph import build_dependency_graph
from repro.sig.values import BOOLEAN, EVENT, INTEGER


class TestDependencyGraph:
    def test_value_dependencies(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define("y", b.func("+", b.ref("x"), 1))
        model.define("z", b.func("*", b.ref("y"), 2))
        graph = build_dependency_graph(model)
        assert "y" in graph.successors("x")
        assert "z" in graph.successors("y")
        assert graph.predecessors("z") == ["y"]

    def test_delay_breaks_dependency(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define("y", b.delay(b.ref("x"), init=0))
        graph = build_dependency_graph(model)
        assert graph.successors("x") == []

    def test_clock_edges_optional(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define("e", b.clock("x"))
        assert build_dependency_graph(model).edges == []
        with_clock = build_dependency_graph(model, include_clock_edges=True)
        assert with_clock.edges

    def test_cycle_detection(self):
        model = ProcessModel("p")
        model.define("a", b.func("+", b.ref("c"), 1))
        model.define("c", b.func("+", b.ref("a"), 1))
        graph = build_dependency_graph(model)
        cycles = graph.cycles()
        assert cycles and set(cycles[0]) == {"a", "c"}

    def test_self_loop_is_a_cycle(self):
        model = ProcessModel("p")
        model.define("a", b.func("+", b.ref("a"), 1))
        graph = build_dependency_graph(model)
        assert graph.cycles() == [["a"]]

    def test_topological_order(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define("y", b.func("+", b.ref("x"), 1))
        model.define("z", b.func("+", b.ref("y"), 1))
        order = build_dependency_graph(model).topological_order()
        assert order is not None
        assert order.index("x") < order.index("y") < order.index("z")

    def test_topological_order_none_on_cycle(self):
        model = ProcessModel("p")
        model.define("a", b.ref("c"))
        model.define("c", b.ref("a"))
        assert build_dependency_graph(model).topological_order() is None

    def test_strongly_connected_components_cover_nodes(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define("y", b.func("+", b.ref("x"), 1))
        graph = build_dependency_graph(model)
        nodes_in_sccs = {n for scc in graph.strongly_connected_components() for n in scc}
        assert nodes_in_sccs == graph.nodes


class TestDeadlockDetection:
    def test_deadlock_free_pipeline(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define("y", b.func("+", b.ref("x"), 1))
        report = detect_deadlocks(model)
        assert report.deadlock_free
        assert "deadlock-free" in report.summary()

    def test_instantaneous_cycle_reported(self):
        model = ProcessModel("p")
        model.define("a", b.func("+", b.ref("c"), 1))
        model.define("c", b.func("+", b.ref("a"), 1))
        report = detect_deadlocks(model)
        assert not report.deadlock_free
        assert "POTENTIAL DEADLOCK" in report.summary()

    def test_cycle_through_delay_is_fine(self):
        model = ProcessModel("p")
        model.input("tick", EVENT)
        model.define("zc", b.delay(b.ref("c"), init=0))
        model.define("c", b.when(b.func("+", b.ref("zc"), 1), b.clock("tick")))
        model.synchronise("c", "tick")
        assert detect_deadlocks(model).deadlock_free

    def test_library_processes_deadlock_free(self):
        for factory in (library.in_event_port, library.out_event_port, library.fifo_reset,
                        library.thread_property_observer, library.periodic_clock_divider):
            assert detect_deadlocks(factory()).deadlock_free


class TestDeterminism:
    def test_single_definitions_are_deterministic(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define("y", b.func("+", b.ref("x"), 1))
        report = check_determinism(model)
        assert report.deterministic
        assert report.checked_signals == 1

    def test_two_full_definitions_flagged(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define("y", b.ref("x"))
        model.define("y", b.func("+", b.ref("x"), 1))
        report = check_determinism(model)
        assert not report.deterministic
        assert report.issues[0].kind == "multiple-full-definitions"

    def test_overlapping_partial_definitions_flagged(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define_partial("v", b.ref("x"))
        model.define_partial("v", b.func("+", b.ref("x"), 1))
        report = check_determinism(model)
        assert not report.deterministic
        kinds = {issue.kind for issue in report.issues}
        assert "overlapping-partial-definitions" in kinds

    def test_disjoint_partial_definitions_accepted(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.input("c", BOOLEAN)
        model.define_partial("v", b.when(b.ref("x"), b.ref("c")))
        model.define_partial("v", b.when(b.func("+", b.ref("x"), 1), b.func("not", b.ref("c"))))
        report = check_determinism(model)
        assert report.deterministic

    def test_mixed_full_and_partial_flagged(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define("v", b.ref("x"))
        model.define_partial("v", b.ref("x"))
        report = check_determinism(model)
        kinds = {issue.kind for issue in report.issues}
        assert "mixed-full-and-partial-definitions" in kinds

    def test_issues_for_and_summary(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.define_partial("v", b.ref("x"))
        model.define_partial("v", b.func("+", b.ref("x"), 1))
        report = check_determinism(model)
        assert report.issues_for("v")
        assert "NON-DETERMINISTIC" in report.summary()


class TestClockReport:
    def test_clock_report_fields(self):
        model = library.memory_process()
        report = build_clock_report(model)
        assert report.process_name == "fm"
        assert report.clock_count >= 2
        assert report.signal_count == 3
        assert isinstance(report.endochronous, bool)
        assert "Clock report" in report.summary()

    def test_clock_report_on_hierarchical_model(self, pc_translation):
        report = build_clock_report(pc_translation.system_model)
        assert report.signal_count > 300
        assert report.clock_count > 50
