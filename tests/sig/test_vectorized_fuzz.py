"""Property-based fuzzing of the vectorized backend (skips without hypothesis).

Hypothesis generates random environment scenarios *and* random block sizes
and drives them through the vectorized backend against the reference
interpreter on a translated catalog model.  The property: traces (values and
Python value types), warnings and failures are identical whatever the block
partitioning — including the blocks that fall back to the pure sweep.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.casestudies import load_case_study
from repro.core import TranslationConfig, translate_system
from repro.sig.engine import ReferenceBackend, VectorizedBackend, numpy_available
from repro.sig.simulator import Scenario

_LENGTH = 16


def _system_model():
    entry = load_case_study("cruise_control")
    result = translate_system(entry.instantiate(), TranslationConfig(include_scheduler=True))
    return result.system_model


@pytest.fixture(scope="module")
def system_model():
    return _system_model()


@pytest.fixture(scope="module")
def input_names(system_model):
    ticks = [d.name for d in system_model.inputs() if d.name == "tick" or d.name.endswith("_tick")]
    stimuli = [d.name for d in system_model.inputs() if d.name not in ticks]
    return ticks, stimuli


@st.composite
def _scenarios(draw, ticks, stimuli):
    scenario = Scenario(_LENGTH)
    for tick in ticks:
        if draw(st.booleans()):
            scenario.set_always(tick)
    for name in stimuli[: draw(st.integers(min_value=0, max_value=len(stimuli)))]:
        kind = draw(st.sampled_from(["periodic", "explicit", "silent"]))
        if kind == "periodic":
            period = draw(st.integers(min_value=1, max_value=8))
            scenario.set_periodic(name, period, phase=draw(st.integers(min_value=0, max_value=period - 1)))
        elif kind == "explicit":
            instants = draw(
                st.lists(st.integers(min_value=0, max_value=_LENGTH - 1), max_size=6, unique=True)
            )
            scenario.set_at(name, {instant: True for instant in instants})
    return scenario


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data(), block_size=st.integers(min_value=1, max_value=24))
def test_vectorized_matches_reference_on_random_scenarios(
    system_model, input_names, data, block_size
):
    ticks, stimuli = input_names
    scenario = data.draw(_scenarios(ticks, stimuli))

    reference = ReferenceBackend(system_model, strict=False)
    vectorized = VectorizedBackend(system_model, strict=False, block_size=block_size)

    outcomes = []
    for runner in (reference, vectorized):
        try:
            trace = runner.run(scenario)
        except Exception as error:  # noqa: BLE001 - compared across backends
            outcomes.append((type(error).__name__, str(error)))
        else:
            outcomes.append(
                (
                    {name: flow.values for name, flow in trace.flows.items()},
                    [
                        (name, [type(v).__name__ for v in flow.values])
                        for name, flow in sorted(trace.flows.items())
                    ],
                    trace.warnings,
                )
            )
    assert outcomes[0] == outcomes[1]
