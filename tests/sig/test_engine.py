"""Tests of the execution-plan engine (plan lowering, backends, batching)."""

import pytest

from repro.sig import builder as b
from repro.sig.engine import (
    BACKENDS,
    DEFAULT_BACKEND,
    CompiledBackend,
    ReferenceBackend,
    backend_names,
    compile_plan,
    create_backend,
    default_scenario,
    simulate,
    simulate_batch,
)
from repro.sig.engine.batch import batch_flow_summary
from repro.sig.process import ProcessModel
from repro.sig.simulator import (
    ClockViolation,
    InstantaneousCycle,
    NonDeterministicDefinition,
    Scenario,
    Simulator,
)
from repro.sig.values import ABSENT, BOOLEAN, INTEGER, is_absent


def scenario(length, **flows):
    sc = Scenario(length)
    for name, values in flows.items():
        sc.set_flow(name, values)
    return sc


def counter_model():
    """The self-referential state pattern: count := zcount + delta, count ^= tick."""
    model = ProcessModel("counter")
    model.input("tick")
    model.input("delta", INTEGER)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.func("+", b.ref("zcount"), b.default(b.ref("delta"), 1)))
    model.synchronise("count", "tick")
    return model


def assert_same_trace(model, sc, strict=True, record=None):
    """Both backends produce bit-identical flows on *model* over *sc*."""
    reference = Simulator(model.copy(), strict=strict).run(sc, record=record)
    compiled = compile_plan(model.copy()).run(sc, record=record, strict=strict)
    assert compiled.flows == reference.flows
    assert compiled.length == reference.length
    assert compiled.process_name == reference.process_name
    return reference, compiled


class TestPlanLowering:
    def test_slots_cover_all_signals(self):
        model = counter_model()
        plan = compile_plan(model)
        for name in model.signals:
            assert name in plan.slot_of
            assert plan.names[plan.slot_of[name]] == name

    def test_statistics(self):
        plan = compile_plan(counter_model())
        stats = plan.statistics()
        assert stats.signals >= 4
        assert stats.targets == 2
        assert stats.equations == 2
        assert stats.state_slots == 1  # the delay buffer
        assert stats.sync_groups == 1
        assert stats.acyclic_dependencies
        assert "execution plan" in stats.summary()

    def test_acyclic_dependency_graph_detected(self):
        model = ProcessModel("chain")
        model.input("a", INTEGER)
        model.define("x", b.func("+", b.ref("a"), 1))
        model.define("y", b.func("+", b.ref("x"), 1))
        plan = compile_plan(model)
        assert plan.acyclic_dependencies
        names = [target.name for target in plan.targets]
        assert names.index("x") < names.index("y")  # reference declaration order

    def test_cyclic_graph_still_executes(self):
        model = ProcessModel("cycle")
        model.input("a", INTEGER)
        # x and y read each other under a merge: statically cyclic, but
        # executable because `default` resolves from the present branch.
        model.define("x", b.default(b.ref("a"), b.ref("y")))
        model.define("y", b.default(b.ref("a"), b.ref("x")))
        plan = compile_plan(model)
        assert not plan.acyclic_dependencies
        assert_same_trace(model, scenario(3, a=[1, 2, 3]))

    def test_sync_forcing_races_equation_resolution_identically(self):
        # Resolution order is observable: the ^= group may force s1 absent
        # before its equation is tried, or conflict with it.  Whatever the
        # reference does, the compiled backend must do the same.
        model = ProcessModel("race")
        model.input("i1")
        model.input("i2", INTEGER)
        model.define("s1", b.default(b.const(3), b.ref("i2")))
        model.synchronise("i1", "s1")
        sc = scenario(2, i1=[True, ABSENT], i2=[ABSENT, 5])
        ref_outcome = comp_outcome = None
        try:
            ref = Simulator(model.copy(), strict=True).run(sc)
            ref_outcome = ("ok", ref.flows)
        except Exception as error:  # noqa: BLE001 - compared across backends
            ref_outcome = (type(error), str(error))
        try:
            comp = compile_plan(model.copy()).run(sc, strict=True)
            comp_outcome = ("ok", comp.flows)
        except Exception as error:  # noqa: BLE001 - compared across backends
            comp_outcome = (type(error), str(error))
        assert ref_outcome == comp_outcome
        # And in lenient mode the flows and the exact warning lists agree.
        ref = Simulator(model.copy(), strict=False).run(sc)
        comp = compile_plan(model.copy()).run(sc, strict=False)
        assert comp.flows == ref.flows
        assert comp.warnings == ref.warnings

    def test_constant_folding(self):
        model = ProcessModel("fold")
        model.input("tick")
        model.output("y", INTEGER)
        model.define("y", b.when(b.func("+", 1, b.func("*", 2, 3)), b.ref("tick")))
        assert_same_trace(model, scenario(3, tick=[True, ABSENT, True]))

    def test_flatten_on_compile(self):
        inner = ProcessModel("inner")
        inner.input("i", INTEGER)
        inner.output("o", INTEGER)
        inner.define("o", b.func("+", b.ref("i"), 1))
        outer = ProcessModel("outer")
        outer.input("x", INTEGER)
        outer.output("y", INTEGER)
        outer.instantiate(inner, "u", bindings={"i": "x", "o": "y"})
        plan = compile_plan(outer)
        trace = plan.run(scenario(2, x=[1, 5]))
        assert trace.present_values("y") == [2, 6]


class TestCompiledSemantics:
    def test_counter_state_pattern(self):
        sc = Scenario(6).set_always("tick").set_periodic("delta", 2, value=10)
        ref, comp = assert_same_trace(counter_model(), sc)
        assert comp.present_values("count") == ref.present_values("count")

    def test_delay_depth_and_chain(self):
        model = ProcessModel("dd")
        model.input("x", INTEGER)
        model.define("y", b.delay(b.delay(b.ref("x"), init=0), init=-1))
        model.define("z", b.delay(b.ref("x"), init=0, depth=2))
        assert_same_trace(model, scenario(5, x=[1, 2, ABSENT, 3, 4]))

    def test_cell_memory(self):
        model = ProcessModel("mem")
        model.input("x", INTEGER)
        model.input("read", BOOLEAN)
        model.define("y", b.cell(b.ref("x"), b.ref("read"), init=99))
        assert_same_trace(
            model,
            scenario(5, x=[1, ABSENT, ABSENT, 7, ABSENT], read=[ABSENT, True, True, ABSENT, True]),
        )

    def test_var_memory(self):
        model = ProcessModel("vars")
        model.input("x", INTEGER)
        model.input("tick")
        model.shared("v", INTEGER)
        model.define_partial("v", b.ref("x"))
        model.define("y", b.when(b.var("v"), b.ref("tick")))
        assert_same_trace(
            model,
            scenario(4, x=[5, ABSENT, ABSENT, 8], tick=[ABSENT, True, True, True]),
        )

    def test_clock_operators(self):
        model = ProcessModel("clocks")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.define("u", b.clock_union(b.ref("a"), b.ref("c")))
        model.define("i", b.clock_intersection(b.ref("a"), b.ref("c")))
        model.define("d", b.clock_difference(b.ref("a"), b.ref("c")))
        model.define("k", b.clock(b.ref("a")))
        assert_same_trace(
            model, scenario(4, a=[1, ABSENT, 3, ABSENT], c=[ABSENT, 2, 4, ABSENT])
        )

    def test_undeclared_scenario_input_is_readable_and_recordable(self):
        model = ProcessModel("ghost")
        model.define("y", b.func("+", b.ref("ghost"), 1))
        sc = scenario(3, ghost=[1, ABSENT, 2])
        assert_same_trace(model, sc, record=["y", "ghost"])

    def test_bare_constant_definition_warns(self):
        model = ProcessModel("bare")
        model.output("y", INTEGER)
        model.define("y", b.const(4))
        ref, comp = assert_same_trace(model, Scenario(2), strict=False)
        assert comp.warnings
        assert comp.warnings == ref.warnings

    def test_stateful_registered_operator_not_folded(self):
        # A user-registered stepwise function may be stateful: it must be
        # applied at every instant (like the interpreter), never folded at
        # compile time — even over constant operands.
        from repro.sig.expressions import STEPWISE_OPERATIONS, register_stepwise_operation

        calls = []

        def tick_counter(base):
            calls.append(base)
            return base + len(calls)

        register_stepwise_operation("tick_counter_test", tick_counter)
        try:
            model = ProcessModel("stateful")
            model.input("tick")
            model.define("y", b.when(b.func("tick_counter_test", b.const(10)), b.ref("tick")))
            sc = Scenario(3).set_always("tick")
            ref = Simulator(model.copy()).run(sc)
            calls.clear()
            comp = compile_plan(model.copy()).run(sc)
            assert comp.present_values("y") == ref.present_values("y")
            assert len(calls) > 1  # applied per instant, not folded once
        finally:
            STEPWISE_OPERATIONS.pop("tick_counter_test", None)

    def test_record_subset(self):
        model = counter_model()
        sc = Scenario(4).set_always("tick")
        trace = compile_plan(model).run(sc, record=["count"])
        assert trace.signals() == ["count"]


class TestErrorParity:
    """Both backends raise the same error type with the same message."""

    def _errors(self, model, sc, strict=True):
        errors = []
        for runner in (
            ReferenceBackend(model.copy(), strict=strict),
            CompiledBackend(model.copy(), strict=strict),
        ):
            try:
                runner.run(sc)
            except Exception as exc:  # noqa: BLE001 - the class is the assertion
                errors.append(exc)
            else:
                errors.append(None)
        return errors

    def test_clock_violation(self):
        model = ProcessModel("bad")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.define("y", b.func("+", b.ref("a"), b.ref("c")))
        ref_error, comp_error = self._errors(model, scenario(2, a=[1, 2], c=[1, ABSENT]))
        assert type(ref_error) is type(comp_error) is ClockViolation
        assert str(ref_error) == str(comp_error)

    def test_sync_group_violation(self):
        model = ProcessModel("sync")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.synchronise("a", "c")
        ref_error, comp_error = self._errors(model, scenario(2, a=[1, 2], c=[1, ABSENT]))
        assert type(ref_error) is type(comp_error) is ClockViolation
        assert str(ref_error) == str(comp_error)

    def test_instantaneous_cycle(self):
        model = ProcessModel("loop")
        model.input("tick")
        model.output("x", INTEGER)
        model.define("x", b.func("+", b.ref("x"), 0))
        model.synchronise("x", "tick")
        ref_error, comp_error = self._errors(model, Scenario(2).set_always("tick"))
        assert type(ref_error) is type(comp_error) is InstantaneousCycle
        assert str(ref_error) == str(comp_error)
        assert ref_error.instant == comp_error.instant
        assert sorted(ref_error.unresolved) == sorted(comp_error.unresolved)

    def test_non_deterministic_definition(self):
        model = ProcessModel("nondet")
        model.input("tick")
        model.shared("y", INTEGER)
        model.define_partial("y", b.when(b.const(1), b.ref("tick")))
        model.define_partial("y", b.when(b.const(2), b.ref("tick")))
        ref_error, comp_error = self._errors(model, Scenario(1).set_always("tick"))
        assert type(ref_error) is type(comp_error) is NonDeterministicDefinition
        assert str(ref_error) == str(comp_error)

    def test_lenient_mode_warns_identically(self):
        model = ProcessModel("bad")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.define("y", b.func("+", b.ref("a"), b.ref("c")))
        sc = scenario(2, a=[1, 2], c=[1, ABSENT])
        ref = Simulator(model.copy(), strict=False).run(sc)
        comp = compile_plan(model.copy()).run(sc, strict=False)
        assert comp.flows == ref.flows
        assert comp.warnings == ref.warnings


class TestDifferentialFuzz:
    """Randomised differential testing: compiled vs reference, exact outcome.

    Models are drawn from the whole expression grammar (including ``^=``
    groups, partial definitions, self references and forward references, so
    clock violations, non-determinism and instantaneous cycles all occur);
    the two backends must agree on flows, warning lists, and errors.
    """

    OPERATORS = ("+", "-", "*")

    def _expression(self, rng, names, depth):
        if depth <= 0 or rng.random() < 0.3:
            roll = rng.random()
            if roll < 0.6:
                return b.ref(rng.choice(names))
            if roll < 0.85:
                return b.const(rng.randint(0, 3))
            return b.var(rng.choice(names))
        kind = rng.randrange(9)
        sub = lambda: self._expression(rng, names, depth - 1)  # noqa: E731
        if kind == 0:
            return b.func(rng.choice(self.OPERATORS), sub(), sub())
        if kind == 1:
            return b.delay(sub(), init=rng.randint(0, 3), depth=rng.randint(1, 2))
        if kind == 2:
            return b.when(sub(), sub())
        if kind == 3:
            return b.default(sub(), sub())
        if kind == 4:
            return b.cell(sub(), sub(), init=rng.randint(0, 3))
        if kind == 5:
            return b.when_clock(sub())
        if kind == 6:
            return b.clock_union(sub(), sub())
        if kind == 7:
            return b.clock_difference(sub(), sub())
        return b.clock(sub())

    def _random_case(self, rng, index):
        model = ProcessModel(f"fuzz{index}")
        inputs = ["a", "c", "e"]
        for name in inputs:
            model.input(name, INTEGER)
        targets = [f"t{i}" for i in range(rng.randint(2, 5))]
        names = inputs + targets  # forward/self references allowed
        for target in targets:
            expr = self._expression(rng, names, rng.randint(1, 3))
            if rng.random() < 0.2:
                model.define_partial(target, expr)
                model.define_partial(target, self._expression(rng, names, 2))
            else:
                model.define(target, expr)
        for _ in range(rng.randint(0, 2)):
            model.synchronise(rng.choice(names), rng.choice(names))
        sc = Scenario(5)
        for name in inputs:
            sc.set_flow(name, [rng.choice([ABSENT, rng.randint(0, 3)]) for _ in range(5)])
        return model, sc

    @staticmethod
    def _outcome(factory, model, sc, strict):
        try:
            trace = factory(model.copy(), strict=strict).run(sc)
        except Exception as error:  # noqa: BLE001 - outcome is the comparison
            return (type(error).__name__, str(error))
        return ("ok", trace.flows, trace.warnings)

    def test_random_models_match_reference_exactly(self):
        import random

        rng = random.Random(20260730)
        for index in range(80):
            model, sc = self._random_case(rng, index)
            for strict in (True, False):
                reference = self._outcome(ReferenceBackend, model, sc, strict)
                compiled = self._outcome(CompiledBackend, model, sc, strict)
                assert compiled == reference, f"case {index}, strict={strict}"


class TestBackendApi:
    def test_registry(self):
        assert set(BACKENDS) == {"reference", "compiled", "vectorized", "lowered"}
        assert DEFAULT_BACKEND == "compiled"
        assert backend_names()[0] == DEFAULT_BACKEND

    def test_create_backend_unknown(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            create_backend(counter_model(), backend="quantum")

    def test_simulate_helper_matches_reference(self):
        model = counter_model()
        sc = Scenario(4).set_always("tick")
        for backend in backend_names():
            trace = simulate(model.copy(), sc, backend=backend)
            assert trace.present_values("count") == [1, 2, 3, 4]

    def test_backend_reuse_resets_state(self):
        runner = CompiledBackend(counter_model())
        sc = Scenario(3).set_always("tick")
        first = runner.run(sc)
        second = runner.run(sc)
        assert first.flows == second.flows  # no state leaked between runs


class TestBatch:
    def test_batch_runs_all_scenarios_through_one_plan(self):
        model = counter_model()
        scenarios = [
            Scenario(3).set_always("tick"),
            Scenario(3).set_always("tick").set_always("delta", 5),
        ]
        result = simulate_batch(model, scenarios)
        assert result.backend == "compiled"
        assert len(result) == 2
        assert result.ok
        assert result.traces[0].present_values("count") == [1, 2, 3]
        assert result.traces[1].present_values("count") == [5, 10, 15]

    def test_batch_collects_errors(self):
        model = ProcessModel("bad")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.define("y", b.func("+", b.ref("a"), b.ref("c")))
        good = scenario(2, a=[1, 2], c=[3, 4])
        bad = scenario(2, a=[1, 2], c=[1, ABSENT])
        result = simulate_batch(model, [good, bad, good], collect_errors=True)
        assert not result.ok
        assert [index for index, _ in result.errors] == [1]
        assert isinstance(result.errors[0][1], ClockViolation)
        assert result.traces[1] is None
        assert len(result.successful_traces()) == 2
        assert "1 failed" in result.summary()

    def test_batch_without_collect_raises(self):
        model = ProcessModel("bad")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.define("y", b.func("+", b.ref("a"), b.ref("c")))
        with pytest.raises(ClockViolation):
            simulate_batch(model, [scenario(2, a=[1, 2], c=[1, ABSENT])])

    def test_batch_record_iterator_not_exhausted(self):
        model = counter_model()
        scenarios = [Scenario(2).set_always("tick"), Scenario(2).set_always("tick")]
        for factory in (ReferenceBackend, CompiledBackend):
            traces = factory(model.copy()).run_batch(scenarios, record=iter(["count"]))
            assert [trace.signals() for trace in traces] == [["count"], ["count"]]

    def test_batch_reference_backend(self):
        model = counter_model()
        result = simulate_batch(model, [Scenario(3).set_always("tick")], backend="reference")
        assert result.backend == "reference"
        assert result.traces[0].present_values("count") == [1, 2, 3]

    def test_flow_summary(self):
        model = counter_model()
        result = simulate_batch(
            model, [Scenario(3).set_always("tick"), Scenario(2).set_always("tick")]
        )
        summary = batch_flow_summary(result, "count")
        assert summary["per_scenario"] == [3, 2]
        assert summary["total"] == 5
        assert summary["min"] == 2 and summary["max"] == 3

    def test_default_scenario_drives_ticks(self):
        model = ProcessModel("ticky")
        model.input("tick")
        model.input("cpu0_tick")
        model.input("stimulus")
        sc = default_scenario(model, 4, {"stimulus": 2})
        assert sc.value("tick", 3) is True
        assert sc.value("cpu0_tick", 0) is True
        assert not is_absent(sc.value("stimulus", 2))
        assert is_absent(sc.value("stimulus", 1))
