"""Tests of the VCD writer/parser (co-simulation demonstration substrate)."""

import pytest

from repro.sig import builder as b
from repro.sig.process import ProcessModel
from repro.sig.simulator import Scenario, Simulator
from repro.sig.vcd import VcdWriter, parse_vcd, write_vcd
from repro.sig.values import BOOLEAN, EVENT, INTEGER


@pytest.fixture()
def sample_trace():
    model = ProcessModel("vcd_sample")
    model.input("tick", EVENT)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    model.output("busy", BOOLEAN)
    model.define("busy", b.func("=", b.func("%", b.ref("count"), 2), b.const(0)))
    sc = Scenario(8).set_periodic("tick", 2)
    return Simulator(model).run(sc)


class TestWriter:
    def test_header_contains_declarations(self, sample_trace):
        text = VcdWriter(timescale="1 ms").render(sample_trace, signals=["tick", "count", "busy"])
        assert "$timescale 1 ms $end" in text
        assert "$var wire 1" in text
        assert "$var reg 32" in text
        assert "$enddefinitions $end" in text

    def test_event_signal_pulses(self, sample_trace):
        text = VcdWriter().render(sample_trace, signals=["tick"])
        document = parse_vcd(text)
        assert document.activation_times("tick") == [0, 2, 4, 6]

    def test_integer_signal_changes(self, sample_trace):
        text = VcdWriter().render(sample_trace, signals=["count"])
        document = parse_vcd(text)
        changes = document.changes_of("count")
        values = [int(raw, 2) for _, raw in changes if set(raw) <= {"0", "1"}]
        assert values == [1, 2, 3, 4]

    def test_tick_duration_scales_timestamps(self, sample_trace):
        text = VcdWriter().render(sample_trace, signals=["tick"], tick_duration=5)
        document = parse_vcd(text)
        assert document.activation_times("tick") == [0, 10, 20, 30]

    def test_write_to_file(self, sample_trace, tmp_path):
        path = tmp_path / "trace.vcd"
        write_vcd(sample_trace, str(path), signals=["tick", "count"])
        content = path.read_text()
        assert "$dumpvars" in content

    def test_unknown_signal_raises_on_lookup(self, sample_trace):
        document = parse_vcd(VcdWriter().render(sample_trace, signals=["tick"]))
        with pytest.raises(KeyError):
            document.changes_of("nonexistent")


class TestParser:
    def test_roundtrip_variable_names(self, sample_trace):
        document = parse_vcd(VcdWriter().render(sample_trace, signals=["tick", "count", "busy"]))
        assert set(document.variables) == {"tick", "count", "busy"}

    def test_times_are_sorted(self, sample_trace):
        document = parse_vcd(VcdWriter().render(sample_trace))
        times = document.times()
        assert times == sorted(times)

    def test_timescale_parsed(self, sample_trace):
        document = parse_vcd(VcdWriter(timescale="10 us").render(sample_trace, signals=["tick"]))
        assert document.timescale == "10 us"
