"""Tests of the VCD writer/parser (co-simulation demonstration substrate)."""

import io

import pytest

from repro.sig import builder as b
from repro.sig.engine import simulate
from repro.sig.process import ProcessModel
from repro.sig.simulator import Scenario, Simulator
from repro.sig.vcd import (
    StreamingVcdSink,
    VcdWriter,
    parse_vcd,
    shape_for_type,
    shapes_from_trace,
    write_vcd,
)
from repro.sig.values import BOOLEAN, EVENT, INTEGER, REAL, STRING


@pytest.fixture()
def sample_trace():
    model = ProcessModel("vcd_sample")
    model.input("tick", EVENT)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    model.output("busy", BOOLEAN)
    model.define("busy", b.func("=", b.func("%", b.ref("count"), 2), b.const(0)))
    sc = Scenario(8).set_periodic("tick", 2)
    return Simulator(model).run(sc)


class TestWriter:
    def test_header_contains_declarations(self, sample_trace):
        text = VcdWriter(timescale="1 ms").render(sample_trace, signals=["tick", "count", "busy"])
        assert "$timescale 1 ms $end" in text
        assert "$var wire 1" in text
        assert "$var reg 32" in text
        assert "$enddefinitions $end" in text

    def test_event_signal_pulses(self, sample_trace):
        text = VcdWriter().render(sample_trace, signals=["tick"])
        document = parse_vcd(text)
        assert document.activation_times("tick") == [0, 2, 4, 6]

    def test_integer_signal_changes(self, sample_trace):
        text = VcdWriter().render(sample_trace, signals=["count"])
        document = parse_vcd(text)
        changes = document.changes_of("count")
        values = [int(raw, 2) for _, raw in changes if set(raw) <= {"0", "1"}]
        assert values == [1, 2, 3, 4]

    def test_tick_duration_scales_timestamps(self, sample_trace):
        text = VcdWriter().render(sample_trace, signals=["tick"], tick_duration=5)
        document = parse_vcd(text)
        assert document.activation_times("tick") == [0, 10, 20, 30]

    def test_write_to_file(self, sample_trace, tmp_path):
        path = tmp_path / "trace.vcd"
        write_vcd(sample_trace, str(path), signals=["tick", "count"])
        content = path.read_text()
        assert "$dumpvars" in content

    def test_unknown_signal_raises_on_lookup(self, sample_trace):
        document = parse_vcd(VcdWriter().render(sample_trace, signals=["tick"]))
        with pytest.raises(KeyError):
            document.changes_of("nonexistent")


def _edge_model():
    """Every VCD edge case in one model: an input that never occurs, a float
    signal, a string signal and an integer counter."""
    model = ProcessModel("vcd_edges")
    model.input("tick", EVENT)
    model.input("ghost", EVENT)  # never driven: absent at every instant
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.output("temp", REAL)
    model.output("label", STRING)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    model.define("temp", b.when(b.const(3.5), b.clock("tick")))
    model.define("label", b.when(b.const("hi"), b.clock("tick")))
    model.synchronise("temp", "tick")
    model.synchronise("label", "tick")
    return model


_EDGE_SIGNALS = ["tick", "ghost", "count", "temp", "label"]


def _edge_vcd_text(scenario, via):
    """The same VCD two ways: post-hoc writer vs live streaming sink."""
    model = _edge_model()
    trace = simulate(model, scenario, record=_EDGE_SIGNALS)
    if via == "legacy":
        return VcdWriter().render(trace, signals=_EDGE_SIGNALS)
    buffer = io.StringIO()
    sink = StreamingVcdSink(buffer, shapes=shapes_from_trace(trace, _EDGE_SIGNALS))
    simulate(model, scenario, record=_EDGE_SIGNALS, sinks=sink)
    return buffer.getvalue()


@pytest.mark.parametrize("via", ["legacy", "streaming"])
class TestEdgeCasesSharedByWriterAndSink:
    """The legacy writer and the streaming sink must agree on every edge
    case: signals that are always absent, zero-instant traces and
    non-boolean (integer/real/string) values."""

    def test_always_absent_signal_stays_idle(self, via):
        document = parse_vcd(_edge_vcd_text(Scenario(6).set_periodic("tick", 2), via))
        assert document.activation_times("ghost") == []
        # The wire is driven to z once (dump + instant 0) and never again.
        assert [value for _, value in document.changes_of("ghost")] == ["z"]

    def test_zero_instant_trace_has_header_and_final_timestamp(self, via):
        text = _edge_vcd_text(Scenario(0), via)
        assert "$enddefinitions $end" in text
        assert text.rstrip().endswith("#0")
        document = parse_vcd(text)
        assert set(document.variables) == set(_EDGE_SIGNALS)
        assert document.activation_times("count") == []

    def test_real_values_round_trip(self, via):
        document = parse_vcd(_edge_vcd_text(Scenario(6).set_periodic("tick", 2), via))
        values = [value for _, value in document.changes_of("temp")]
        # Present instants carry the real value, absent instants return to 0.
        assert set(values) == {"3.5", "0"}
        assert document.activation_times("temp") == [0, 2, 4]

    def test_string_values_encode_as_bit_strings(self, via):
        document = parse_vcd(_edge_vcd_text(Scenario(4).set_periodic("tick", 2), via))
        changes = document.changes_of("label")
        encoded = "".join(format(ord(c), "08b") for c in "hi")
        assert encoded in [value for _, value in changes]

    def test_integer_values_round_trip(self, via):
        document = parse_vcd(_edge_vcd_text(Scenario(6).set_periodic("tick", 2), via))
        values = [
            int(raw, 2)
            for _, raw in document.changes_of("count")
            if set(raw) <= {"0", "1"}
        ]
        assert values == [1, 2, 3]


class TestStreamingSink:
    def test_byte_identical_to_legacy_writer(self):
        scenario = Scenario(8).set_periodic("tick", 2)
        assert _edge_vcd_text(scenario, "streaming") == _edge_vcd_text(scenario, "legacy")

    def test_declared_types_shape_the_header_without_a_trace(self, tmp_path):
        model = _edge_model()
        path = tmp_path / "live.vcd"
        sink = StreamingVcdSink(str(path))
        simulate(model, Scenario(6).set_periodic("tick", 2), record=_EDGE_SIGNALS, sinks=sink)
        assert sink.result() == str(path)
        document = parse_vcd(path.read_text())
        assert document.variables["tick"].var_type == "wire"
        assert document.variables["count"].size == 32
        assert document.variables["temp"].var_type == "real"
        assert document.activation_times("count") == [0, 2, 4]

    def test_aborted_run_flushes_and_closes_at_last_instant(self, tmp_path):
        from repro.sig.simulator import ClockViolation

        model = ProcessModel("abort")
        model.input("x", INTEGER)
        model.input("y", INTEGER)
        model.output("bad", INTEGER)
        model.define("bad", b.func("+", b.ref("x"), b.ref("y")))
        scenario = Scenario(6).set_periodic("x", 1).set_periodic("y", 2, phase=1)
        path = tmp_path / "aborted.vcd"
        sink = StreamingVcdSink(str(path))
        with pytest.raises(ClockViolation):
            simulate(model, scenario, sinks=sink)
        text = path.read_text()  # the file handle was closed despite the abort
        assert "$enddefinitions $end" in text
        assert int(text.rstrip().rsplit("#", 1)[1]) < 6

    def test_shape_for_type_mapping(self):
        assert shape_for_type(EVENT) == ("wire", 1)
        assert shape_for_type(BOOLEAN) == ("wire", 1)
        assert shape_for_type(INTEGER) == ("reg", 32)
        assert shape_for_type(REAL) == ("real", 64)
        assert shape_for_type(STRING) == ("reg", 256)
        # Undeclared names keep integer values exact (not a lossy 1-bit wire).
        assert shape_for_type(None) == ("reg", 32)

    def test_undeclared_scenario_signal_keeps_integer_values(self, tmp_path):
        """A scenario-only (undeclared) signal carrying integers must not be
        collapsed to a 1-bit wire by the declared-type fallback."""
        model = _edge_model()
        path = tmp_path / "undeclared.vcd"
        scenario = Scenario(4).set_periodic("tick", 2).set_periodic("extra", 2, value=7)
        simulate(
            model, scenario,
            record=list(model.signals) + ["extra"],
            sinks=StreamingVcdSink(str(path)),
        )
        document = parse_vcd(path.read_text())
        assert document.variables["extra"].size == 32
        values = [int(raw, 2) for _, raw in document.changes_of("extra")
                  if set(raw) <= {"0", "1"}]
        assert 7 in values


class TestParser:
    def test_roundtrip_variable_names(self, sample_trace):
        document = parse_vcd(VcdWriter().render(sample_trace, signals=["tick", "count", "busy"]))
        assert set(document.variables) == {"tick", "count", "busy"}

    def test_times_are_sorted(self, sample_trace):
        document = parse_vcd(VcdWriter().render(sample_trace))
        times = document.times()
        assert times == sorted(times)

    def test_timescale_parsed(self, sample_trace):
        document = parse_vcd(VcdWriter(timescale="10 us").render(sample_trace, signals=["tick"]))
        assert document.timescale == "10 us"
