"""Tests of the profiling-based performance estimation."""

import pytest

from repro.sig import builder as b
from repro.sig import library
from repro.sig.process import ProcessModel
from repro.sig.profiling import (
    EMBEDDED_CPU,
    GENERIC_PROCESSOR,
    MICROCONTROLLER,
    CostModel,
    Profiler,
    compare_architectures,
    expression_cost,
)
from repro.sig.simulator import Scenario, Simulator


def counter_model():
    model = ProcessModel("counter")
    model.input("tick")
    model.output("count")
    model.local("zcount")
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    return model


class TestExpressionCost:
    def test_reference_and_constant_are_free(self):
        assert expression_cost(b.ref("x"), GENERIC_PROCESSOR) == 0.0
        assert expression_cost(b.const(3), GENERIC_PROCESSOR) == 0.0

    def test_operator_costs_accumulate(self):
        expr = b.func("+", b.func("*", b.ref("a"), 2), 1)
        assert expression_cost(expr, GENERIC_PROCESSOR) == pytest.approx(2.0)

    def test_memory_operators_cost_more_than_sampling(self):
        cell_cost = expression_cost(b.cell(b.ref("x"), b.ref("c")), GENERIC_PROCESSOR)
        when_cost = expression_cost(b.when(b.ref("x"), b.ref("c")), GENERIC_PROCESSOR)
        assert cell_cost > when_cost

    def test_per_operator_override(self):
        model = CostModel(name="custom", per_operator={"+": 10.0})
        assert expression_cost(b.func("+", b.ref("a"), 1), model) == pytest.approx(10.0)

    def test_frequency_scale(self):
        slow = CostModel(name="slow", frequency_scale=2.0)
        fast = CostModel(name="fast", frequency_scale=1.0)
        expr = b.func("+", b.ref("a"), 1)
        assert expression_cost(expr, slow) > expression_cost(expr, fast)


class TestStaticProfile:
    def test_per_signal_costs(self):
        profile = Profiler(counter_model()).static_profile()
        assert set(profile.per_signal) == {"zcount", "count"}
        assert profile.total > 0

    def test_most_expensive_ordering(self):
        profile = Profiler(library.in_event_port()).static_profile()
        ordered = profile.most_expensive(3)
        costs = [cost for _, cost in ordered]
        assert costs == sorted(costs, reverse=True)

    def test_summary_mentions_cost_model(self):
        profile = Profiler(counter_model(), MICROCONTROLLER).static_profile()
        assert "microcontroller" in profile.summary()


class TestDynamicProfile:
    def run_trace(self, length=8, period=2):
        model = counter_model()
        sc = Scenario(length).set_periodic("tick", period)
        return model, Simulator(model).run(sc)

    def test_cost_charged_only_on_activation(self):
        model, trace = self.run_trace(length=8, period=4)
        profile = Profiler(model).dynamic_profile(trace)
        active_instants = [i for i, cost in enumerate(profile.per_instant) if cost > 0]
        assert active_instants == [0, 4]

    def test_total_scales_with_activations(self):
        model, sparse = self.run_trace(length=8, period=4)
        _, dense = self.run_trace(length=8, period=1)
        sparse_total = Profiler(model).dynamic_profile(sparse).total
        dense_total = Profiler(model).dynamic_profile(dense).total
        assert dense_total > sparse_total

    def test_architecture_comparison_orders_processors(self):
        model, trace = self.run_trace()
        profiles = compare_architectures(
            model, trace, {"micro": MICROCONTROLLER, "embedded": EMBEDDED_CPU, "generic": GENERIC_PROCESSOR}
        )
        assert profiles["micro"].total > profiles["generic"].total > profiles["embedded"].total

    def test_average_and_peak(self):
        model, trace = self.run_trace(length=4, period=2)
        profile = Profiler(model).dynamic_profile(trace)
        assert profile.peak_instant >= profile.average_per_instant
        assert profile.instants == 4
        assert "instants" in profile.summary()
