"""Property-based scenario fuzzing over the batch API (ROADMAP item).

Hypothesis generates environment scenarios (randomised periodic stimuli,
explicit flows, partially empty inputs) and drives them through
``simulate_batch(collect_errors=True)`` on a translated catalog model with
*both* backends.  The property: the reference interpreter and the compiled
execution plan agree on every trace *and* on which scenarios fail, with the
same error types and messages.  Skips cleanly when ``hypothesis`` is not
installed.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.casestudies import load_case_study
from repro.core import TranslationConfig, translate_system
from repro.sig.engine import simulate_batch
from repro.sig.simulator import Scenario

_LENGTH = 16


def _system_model():
    entry = load_case_study("cruise_control")
    result = translate_system(entry.instantiate(), TranslationConfig(include_scheduler=True))
    return result.system_model


@pytest.fixture(scope="module")
def system_model():
    return _system_model()


@pytest.fixture(scope="module")
def input_names(system_model):
    ticks = [d.name for d in system_model.inputs() if d.name == "tick" or d.name.endswith("_tick")]
    stimuli = [d.name for d in system_model.inputs() if d.name not in ticks]
    return ticks, stimuli


def _stimulus(draw, scenario, name):
    kind = draw(st.sampled_from(["periodic", "explicit", "silent"]))
    if kind == "periodic":
        period = draw(st.integers(min_value=1, max_value=8))
        phase = draw(st.integers(min_value=0, max_value=period - 1))
        scenario.set_periodic(name, period, phase=phase)
    elif kind == "explicit":
        instants = draw(
            st.lists(st.integers(min_value=0, max_value=_LENGTH - 1), max_size=6, unique=True)
        )
        scenario.set_at(name, {instant: True for instant in instants})
    # "silent": leave the input entirely absent.


@st.composite
def _scenario_batches(draw, ticks, stimuli):
    batch = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        scenario = Scenario(_LENGTH)
        for name in ticks:
            # Mostly keep the base clock running; occasionally gate it to
            # explore the degenerate no-dispatch corner.
            if draw(st.booleans()) or draw(st.booleans()):
                scenario.set_always(name)
            else:
                scenario.set_periodic(name, draw(st.integers(min_value=1, max_value=4)))
        for name in stimuli:
            _stimulus(draw, scenario, name)
        batch.append(scenario)
    return batch


def _fingerprint(batch):
    return (
        [
            None if trace is None else ({n: f.values for n, f in trace.flows.items()}, trace.warnings)
            for trace in batch.traces
        ],
        [(index, type(error).__name__, str(error)) for index, error in batch.errors],
    )


class TestScenarioFuzz:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_backends_agree_on_traces_and_failures(self, data, system_model, input_names):
        ticks, stimuli = input_names
        scenarios = data.draw(_scenario_batches(ticks, stimuli))

        reference = simulate_batch(
            system_model, scenarios, strict=True, backend="reference", collect_errors=True
        )
        compiled = simulate_batch(
            system_model, scenarios, strict=True, backend="compiled", collect_errors=True
        )
        assert _fingerprint(compiled) == _fingerprint(reference)
        # Failing scenarios are reported by index, ascending — on both sides.
        indices = [index for index, _ in compiled.errors]
        assert indices == sorted(indices)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_sharded_fuzz_batches_match_sequential(self, data, system_model, input_names):
        """The workers contract holds on fuzzed batches too."""
        ticks, stimuli = input_names
        scenarios = data.draw(_scenario_batches(ticks, stimuli))
        sequential = simulate_batch(
            system_model, scenarios, strict=True, collect_errors=True, workers=1
        )
        sharded = simulate_batch(
            system_model, scenarios, strict=True, collect_errors=True, workers=2
        )
        assert _fingerprint(sharded) == _fingerprint(sequential)
