"""Process-parallel batch execution and execution-plan pickling.

The contract of ``simulate_batch(workers=N)`` is bit-identity with the
sequential run: same traces, same warnings, same errors, same ordering.
These tests pin that contract on a scheduled case-study model, and cover the
plan-pickling path the spawn-based worker pools rely on.
"""

import pickle

import pytest

from repro.casestudies import load_case_study, scenario_sweep
from repro.core import TranslationConfig, translate_system
from repro.sig import builder as b
from repro.sig.engine import (
    BatchResult,
    batch_flow_summary,
    compile_plan,
    create_backend,
    default_scenario,
    simulate_batch,
)
from repro.sig.process import ProcessModel
from repro.sig.simulator import ClockViolation, InstantaneousCycle, Scenario, SimulationError
from repro.sig.values import INTEGER


@pytest.fixture(scope="module")
def scheduled():
    entry = load_case_study("cruise_control")
    result = translate_system(entry.instantiate(), TranslationConfig(include_scheduler=True))
    schedule = next(iter(result.schedules.values()))
    length = min(schedule.simulation_length(2), 48)
    return result.system_model, length


def flows_of(trace):
    return {name: flow.values for name, flow in trace.flows.items()}


def batch_fingerprint(batch):
    return (
        [None if t is None else (flows_of(t), t.warnings) for t in batch.traces],
        [(i, type(e).__name__, str(e)) for i, e in batch.errors],
    )


class TestPlanPickling:
    def test_plan_round_trips_through_pickle(self, scheduled):
        system_model, length = scheduled
        plan = compile_plan(system_model)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.names == plan.names
        assert clone.slot_of == plan.slot_of
        assert clone.statistics() == plan.statistics()

    def test_unpickled_plan_runs_identically(self, scheduled):
        system_model, length = scheduled
        plan = compile_plan(system_model)
        clone = pickle.loads(pickle.dumps(plan))
        scenario = default_scenario(system_model, length)
        original = plan.run(scenario, strict=False)
        replayed = clone.run(scenario, strict=False)
        assert flows_of(replayed) == flows_of(original)
        assert replayed.warnings == original.warnings

    def test_backends_round_trip_through_pickle(self, scheduled):
        system_model, length = scheduled
        scenario = default_scenario(system_model, length)
        for backend in ("reference", "compiled"):
            runner = create_backend(system_model, backend=backend, strict=False)
            clone = pickle.loads(pickle.dumps(runner))
            assert flows_of(clone.run(scenario)) == flows_of(runner.run(scenario))

    def test_simulation_errors_survive_pickling(self):
        cycle = pickle.loads(pickle.dumps(InstantaneousCycle(3, ["b", "a"])))
        assert isinstance(cycle, InstantaneousCycle)
        assert cycle.instant == 3
        assert cycle.unresolved == ["b", "a"]
        assert "instant 3" in str(cycle)
        violation = pickle.loads(pickle.dumps(ClockViolation("boom")))
        assert str(violation) == "boom"


class TestWorkersParity:
    def test_workers_produce_bit_identical_traces(self, scheduled):
        system_model, length = scheduled
        scenarios = scenario_sweep(system_model, length=length, variants=16, seed=5)
        sequential = simulate_batch(system_model, scenarios, strict=False, workers=1)
        sharded = simulate_batch(system_model, scenarios, strict=False, workers=3)
        assert sharded.workers == 3
        assert batch_fingerprint(sharded) == batch_fingerprint(sequential)

    def test_workers_preserve_collected_error_ordering(self):
        """Scenarios that violate a clock constraint must surface as the same
        (index, error) pairs, in the same ascending order, on every worker
        count."""
        model = ProcessModel("sync_pair")
        model.input("a", INTEGER)
        model.input("b", INTEGER)
        model.output("s", INTEGER)
        model.define("s", b.func("+", b.ref("a"), b.ref("b")))

        scenarios = []
        for index in range(12):
            scenario = Scenario(8)
            scenario.set_always("a", 1)
            if index % 3 == 1:  # scenarios 1, 4, 7, 10 fail
                scenario.set_periodic("b", 2, value=2)
            else:
                scenario.set_always("b", 2)
            scenarios.append(scenario)

        sequential = simulate_batch(
            model, scenarios, strict=True, collect_errors=True, workers=1
        )
        sharded = simulate_batch(
            model, scenarios, strict=True, collect_errors=True, workers=4
        )
        assert [i for i, _ in sequential.errors] == [1, 4, 7, 10]
        assert batch_fingerprint(sharded) == batch_fingerprint(sequential)
        assert [t is None for t in sharded.traces] == [t is None for t in sequential.traces]

    def test_workers_raise_the_earliest_error_without_collect(self):
        model = ProcessModel("sync_pair")
        model.input("a", INTEGER)
        model.input("b", INTEGER)
        model.output("s", INTEGER)
        model.define("s", b.func("+", b.ref("a"), b.ref("b")))

        scenarios = []
        for index in range(8):
            scenario = Scenario(6)
            scenario.set_always("a", 1)
            if index in (3, 5):
                scenario.set_periodic("b", 3, value=2)
            else:
                scenario.set_always("b", 2)
            scenarios.append(scenario)

        with pytest.raises(SimulationError) as sequential_error:
            simulate_batch(model, scenarios, strict=True, workers=1)
        with pytest.raises(SimulationError) as sharded_error:
            simulate_batch(model, scenarios, strict=True, workers=3)
        assert str(sharded_error.value) == str(sequential_error.value)
        assert type(sharded_error.value) is type(sequential_error.value)

    def test_workers_zero_means_one_per_core(self, scheduled):
        system_model, length = scheduled
        scenarios = scenario_sweep(system_model, length=min(length, 16), variants=2, seed=9)
        batch = simulate_batch(system_model, scenarios, strict=False, workers=0)
        assert batch.workers >= 1
        assert len(batch.traces) == 2

    def test_backend_run_batch_workers(self, scheduled):
        system_model, length = scheduled
        scenarios = scenario_sweep(system_model, length=min(length, 24), variants=6, seed=11)
        runner = create_backend(system_model, strict=False)
        sequential = runner.run_batch(scenarios)
        sharded = runner.run_batch(scenarios, workers=2)
        assert [flows_of(t) for t in sharded] == [flows_of(t) for t in sequential]


class TestBatchFlowSummary:
    def test_all_failed_batch_is_distinguishable_from_all_absent_signal(self):
        # An all-failed batch: every trace is None.
        failed = BatchResult(backend="compiled", traces=[None, None])
        summary = batch_flow_summary(failed, "sig")
        assert summary["per_scenario"] == [None, None]
        assert summary["total"] == 0
        assert summary["min"] is None
        assert summary["max"] is None

        # An all-absent signal in successful traces reports 0, not None.
        model = ProcessModel("quiet")
        model.input("x", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.ref("x"))
        empty = Scenario(4)  # x never present -> y never present
        batch = simulate_batch(model, [empty, empty], strict=False, collect_errors=True)
        summary = batch_flow_summary(batch, "y")
        assert summary["per_scenario"] == [0, 0]
        assert summary["min"] == 0
        assert summary["max"] == 0

    def test_mixed_batch_ignores_failed_scenarios(self, scheduled):
        system_model, length = scheduled
        good = default_scenario(system_model, min(length, 12))
        batch = simulate_batch(system_model, [good], strict=False, collect_errors=True)
        batch.traces.append(None)  # simulate one failed scenario
        signal = next(iter(batch.traces[0].flows))
        summary = batch_flow_summary(batch, signal)
        assert summary["per_scenario"][1] is None
        assert summary["min"] is not None
