"""Property-based fuzzing of the delay-recurrence scan kernels.

Hypothesis generates random recurrence shapes — affine accumulators
(``y = z + e``, ``y = z - e``) that take the prefix-scan path and
non-affine steps (``*``, ``min``, ``max``) that take the generated scalar
loop — with random initial values, random input presence patterns, random
block sizes and optionally the lowered residual evaluators, and checks the
vectorized backend against the compiled plan: identical flows (values and
Python value types) and warnings whatever the partitioning.  Skips cleanly
when hypothesis or numpy is missing.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sig import builder as b
from repro.sig.engine import VectorizedBackend, numpy_available
from repro.sig.engine.backends import CompiledBackend
from repro.sig.process import ProcessModel
from repro.sig.simulator import Scenario
from repro.sig.values import ABSENT, REAL

_LENGTH = 24

_VALUES = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

#: (operator, z on the left?) — '+'/'-' exercise the affine prefix scan,
#: the rest exercise the generated scalar step loop.
_SHAPES = [
    ("+", True),
    ("+", False),
    ("-", True),
    ("*", True),
    ("min", True),
    ("max", False),
]


def _build_model(shapes, constants):
    """One independent recurrence pair per requested shape."""
    model = ProcessModel("rec_fuzz")
    for index, ((op, z_left), constant) in enumerate(zip(shapes, constants)):
        u, z, y = f"u{index}", f"z{index}", f"y{index}"
        model.input(u, REAL)
        model.local(z, REAL)
        model.output(y, REAL)
        model.define(z, b.delay(b.ref(y), init=constant))
        step = b.ref(u) if index % 2 else b.const(constant)
        args = (b.ref(z), step) if z_left else (step, b.ref(z))
        model.define(y, b.func(op, *args))
        model.synchronise(y, u)
        model.synchronise(z, u)
    return model


@st.composite
def _cases(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    shapes = [draw(st.sampled_from(_SHAPES)) for _ in range(count)]
    constants = [draw(_VALUES) for _ in range(count)]
    presence = []
    for _ in range(count):
        period = draw(st.integers(min_value=1, max_value=4))
        phase = draw(st.integers(min_value=0, max_value=period - 1))
        presence.append((period, phase))
    values = draw(
        st.lists(_VALUES, min_size=count * _LENGTH, max_size=count * _LENGTH)
    )
    return shapes, constants, presence, values


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
@settings(max_examples=40, deadline=None, suppress_health_check=list(HealthCheck))
@given(
    case=_cases(),
    block_size=st.integers(min_value=1, max_value=_LENGTH + 3),
    lowered=st.booleans(),
)
def test_recurrence_scans_match_compiled(case, block_size, lowered):
    shapes, constants, presence, values = case
    model = _build_model(shapes, constants)
    scenario = Scenario(_LENGTH)
    for index, (period, phase) in enumerate(presence):
        scenario.inputs[f"u{index}"] = [
            values[index * _LENGTH + i] if i % period == phase % period else ABSENT
            for i in range(_LENGTH)
        ]

    reference = CompiledBackend(model, strict=False).run(scenario)
    vectorized = VectorizedBackend(
        model, strict=False, block_size=block_size, lowered_residue=lowered
    )
    trace = vectorized.run(scenario)

    assert trace.length == reference.length
    assert set(trace.flows) == set(reference.flows)
    for signal in reference.flows:
        assert trace.flows[signal] == reference.flows[signal], (
            f"{signal!r} diverges (block_size={block_size}, lowered={lowered})"
        )
        for expected, actual in zip(
            reference.flows[signal].values, trace.flows[signal].values
        ):
            assert type(expected) is type(actual), signal
    assert trace.warnings == reference.warnings
