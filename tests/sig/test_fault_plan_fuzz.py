"""Property-based fuzz of the supervised executor over random fault plans.

Hypothesis sweeps seeded :class:`~repro.sig.engine.faults.FaultPlan`
injections across chunk sizes and asserts the supervisor's invariants hold
for *every* plan: persistently-faulted scenarios surface as typed
``ScenarioFault`` entries of exactly the expected kind, transiently-faulted
and untouched scenarios recover bit-identically to a fault-free serial run,
fault entries come back in scenario order, and the batch never wedges or
raises.  Runs on the in-process degraded path (fast, deterministic); the
pooled path is pinned by ``tests/sig/test_engine_supervisor.py`` and the
chaos CI job.  Skips cleanly when ``hypothesis`` is not installed.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sig import builder as b
from repro.sig.engine import FaultPlan, create_backend, run_batch_supervised
from repro.sig.engine.faults import EXPECTED_FAULT_KIND
from repro.sig.expressions import register_stepwise_operation
from repro.sig.process import ProcessModel
from repro.sig.scenario import Scenario
from repro.sig.values import INTEGER

_COUNT = 10
_LENGTH = 16

register_stepwise_operation("fuzz_fault_double", lambda value: value * 2)


def _model():
    model = ProcessModel("fault_fuzz")
    model.input("x", INTEGER)
    model.output("y", INTEGER)
    model.define("y", b.func("fuzz_fault_double", b.ref("x")))
    return model


def _scenarios():
    scenarios = []
    for index in range(_COUNT):
        scenario = Scenario(_LENGTH)
        scenario.set_periodic("x", 1 + index % 4, value=index)
        scenarios.append(scenario)
    return scenarios


@pytest.fixture(scope="module")
def prepared():
    model = _model()
    runner = create_backend(model, backend="compiled", strict=False)
    baseline, _, _, _ = run_batch_supervised(runner, _scenarios(), workers=1, retries=0)
    assert all(trace is not None for trace in baseline)
    return runner, baseline


def _flows(trace):
    return {name: flow.values for name, flow in trace.flows.items()}


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    chunk_size=st.integers(min_value=1, max_value=_COUNT + 1),
    retries=st.integers(min_value=1, max_value=3),
)
def test_random_fault_plans_preserve_survivors(prepared, seed, chunk_size, retries):
    runner, baseline = prepared
    plan = FaultPlan.seeded(
        seed,
        _COUNT,
        rate=0.4,
        max_attempt=min(2, retries),
        delay=0.001,
    )
    traces, errors, sink_results, faults = run_batch_supervised(
        runner,
        _scenarios(),
        workers=1,
        chunk_size=chunk_size,
        # Small: every injected in-process hang cooperatively waits this
        # deadline out on every attempt, so it bounds the fuzz's wall clock.
        timeout=0.2,
        retries=retries,
        backoff=0.0,
        fault_plan=plan,
    )
    assert not errors and not sink_results

    expected = plan.expected_faults()
    assert {fault.scenario: fault.kind for fault in faults} == expected
    assert [fault.scenario for fault in faults] == sorted(expected)
    for fault in faults:
        assert fault.kind in set(EXPECTED_FAULT_KIND.values())
        assert fault.attempts >= 1
        assert fault.summary()

    for index in range(_COUNT):
        if index in expected:
            assert traces[index] is None
        else:
            assert traces[index] is not None, (index, plan)
            assert _flows(traces[index]) == _flows(baseline[index])
