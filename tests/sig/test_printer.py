"""Tests of the SIGNAL textual pretty-printer."""

from repro.sig import builder as b
from repro.sig import library
from repro.sig.printer import SignalPrinter, interface_summary, module_source, to_signal_source
from repro.sig.process import ProcessModel
from repro.sig.values import BOOLEAN, EVENT, INTEGER


def sample_model():
    model = ProcessModel("sample", comment="a sample process")
    model.pragmas["aadl_name"] = "pkg::sample"
    model.input("x", INTEGER)
    model.input("c", BOOLEAN)
    model.output("y", INTEGER)
    model.local("tmp", INTEGER)
    model.shared("v", INTEGER)
    model.define("tmp", b.when(b.ref("x"), b.ref("c")), label="sampling")
    model.define("y", b.func("+", b.ref("tmp"), 1))
    model.define_partial("v", b.ref("y"))
    model.synchronise("x", "c")
    model.add_bundle("ctl", {"C": "c"})
    return model


class TestProcessRendering:
    def test_contains_process_header_and_terminator(self):
        text = to_signal_source(sample_model())
        assert "process sample =" in text
        assert text.rstrip().endswith(";")

    def test_interface_sections(self):
        text = to_signal_source(sample_model())
        assert "( ?" in text and "!" in text
        assert "integer x" in text
        assert "boolean c" in text
        assert "integer y" in text

    def test_equations_and_partial_definitions(self):
        text = to_signal_source(sample_model())
        assert "tmp := (x when c)" in text
        assert "v ::= y" in text
        assert "%% sampling %%" in text

    def test_constraints_rendered(self):
        text = to_signal_source(sample_model())
        assert "x ^= c" in text

    def test_where_section_declares_locals_and_shared(self):
        text = to_signal_source(sample_model())
        assert "where" in text and "end" in text
        assert "integer tmp" in text
        assert "shared variables: v" in text

    def test_pragmas_and_comment(self):
        text = to_signal_source(sample_model())
        assert "pragma aadl_name" in text
        assert "a sample process" in text

    def test_bundle_comment(self):
        text = to_signal_source(sample_model())
        assert "bundle ctl" in text

    def test_instances_rendered_with_parameters(self):
        outer = ProcessModel("outer")
        inner = library.periodic_clock_divider(period=4, phase=1)
        outer.add_submodel(inner)
        outer.input("tick", EVENT)
        outer.instantiate(inner, "div0", bindings={"tick": "tick", "out": "o"}, parameters={"period": 4})
        text = to_signal_source(outer)
        assert "div0 :: periodic_clock" in text
        assert "period=4" in text

    def test_submodels_in_where_section(self):
        outer = ProcessModel("outer")
        inner = library.memory_process()
        outer.add_submodel(inner)
        text = to_signal_source(outer)
        assert "process fm =" in text
        text_without = to_signal_source(outer, include_submodels=False)
        assert "process fm =" not in text_without

    def test_empty_body_placeholder(self):
        model = ProcessModel("empty")
        text = to_signal_source(model)
        assert "empty body" in text


class TestModuleAndSummary:
    def test_module_source_wraps_processes(self):
        text = module_source([sample_model(), library.memory_process()], module_name="LIB")
        assert text.startswith("module LIB =")
        assert "process sample =" in text and "process fm =" in text

    def test_interface_summary(self):
        summary = interface_summary(sample_model())
        assert summary["inputs"] == ["x", "c"]
        assert summary["outputs"] == ["y"]
        assert summary["shared"] == ["v"]
        assert summary["bundles"] == ["ctl"]

    def test_custom_indent(self):
        printer = SignalPrinter(indent="    ")
        text = printer.print_process(sample_model())
        assert "\n    ( ?" in text
