"""Tests of the signal value domain (absence, types, flows)."""

import copy

import pytest

from repro.sig.values import (
    ABSENT,
    BOOLEAN,
    EVENT,
    INTEGER,
    REAL,
    STRING,
    Flow,
    SignalKind,
    SignalType,
    bundle,
    is_absent,
    is_present,
    opaque,
    stutter_free,
)


class TestAbsent:
    def test_absent_is_singleton(self):
        assert type(ABSENT)() is ABSENT

    def test_absent_is_falsy(self):
        assert not ABSENT

    def test_absent_copy_is_same_object(self):
        assert copy.copy(ABSENT) is ABSENT
        assert copy.deepcopy(ABSENT) is ABSENT

    def test_is_present_and_is_absent(self):
        assert is_absent(ABSENT)
        assert not is_present(ABSENT)
        assert is_present(0)
        assert is_present(None)  # None is a value, not absence
        assert is_present(False)

    def test_repr_uses_bottom_symbol(self):
        assert repr(ABSENT) == "⊥"


class TestSignalType:
    def test_event_accepts_only_true(self):
        assert EVENT.accepts(True)
        assert not EVENT.accepts(False)
        assert not EVENT.accepts(1)

    def test_boolean_accepts_bools_only(self):
        assert BOOLEAN.accepts(True)
        assert BOOLEAN.accepts(False)
        assert not BOOLEAN.accepts(1)

    def test_integer_rejects_bool(self):
        assert INTEGER.accepts(3)
        assert not INTEGER.accepts(True)
        assert not INTEGER.accepts(3.5)

    def test_real_accepts_int_and_float(self):
        assert REAL.accepts(3)
        assert REAL.accepts(3.5)
        assert not REAL.accepts(True)

    def test_string_type(self):
        assert STRING.accepts("hello")
        assert not STRING.accepts(3)

    def test_every_type_accepts_absent(self):
        for t in (EVENT, BOOLEAN, INTEGER, REAL, STRING):
            assert t.accepts(ABSENT)

    def test_opaque_type_named(self):
        t = opaque("QueueType")
        assert t.kind is SignalKind.OPAQUE
        assert str(t) == "QueueType"
        assert t.accepts(object())

    def test_bundle_type(self):
        t = bundle(EVENT, INTEGER)
        assert t.kind is SignalKind.BUNDLE
        assert "bundle" in str(t)

    def test_default_values(self):
        assert EVENT.default_value() is True
        assert BOOLEAN.default_value() is False
        assert INTEGER.default_value() == 0
        assert REAL.default_value() == 0.0
        assert STRING.default_value() == ""

    def test_predicates(self):
        assert EVENT.is_event
        assert BOOLEAN.is_boolean
        assert INTEGER.is_numeric and REAL.is_numeric
        assert not STRING.is_numeric


class TestFlow:
    def test_clock_is_present_indices(self):
        flow = Flow("x", [1, ABSENT, 2, ABSENT, 3])
        assert flow.clock == [0, 2, 4]

    def test_present_values(self):
        flow = Flow("x", [1, ABSENT, 2])
        assert flow.present_values() == [1, 2]
        assert flow.count_present() == 2

    def test_synchronous_with(self):
        a = Flow("a", [1, ABSENT, 2])
        b = Flow("b", [5, ABSENT, 7])
        c = Flow("c", [ABSENT, 1, 2])
        assert a.synchronous_with(b)
        assert not a.synchronous_with(c)

    def test_restricted_to(self):
        flow = Flow("x", [1, 2, 3, 4])
        restricted = flow.restricted_to([1, 3])
        assert restricted.values == [ABSENT, 2, ABSENT, 4]

    def test_pad_to(self):
        flow = Flow("x", [1])
        padded = flow.pad_to(3)
        assert len(padded) == 3
        assert is_absent(padded[2])

    def test_append_and_indexing(self):
        flow = Flow("x")
        flow.append(1)
        flow.append(ABSENT)
        assert flow[0] == 1
        assert is_absent(flow[1])
        assert list(flow) == [1, ABSENT]

    def test_equality(self):
        assert Flow("x", [1, ABSENT]) == Flow("x", [1, ABSENT])
        assert Flow("x", [1]) != Flow("y", [1])

    def test_stutter_free(self):
        assert stutter_free([1, ABSENT, 2, ABSENT]) == [1, 2]
        assert stutter_free([]) == []
