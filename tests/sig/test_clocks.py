"""Tests of the symbolic clock algebra (union-of-products normal form)."""

from repro.sig.clocks import Clock, ClockAtom, false_clock, signal_clock, true_clock


class TestConstruction:
    def test_signal_clock_single_atom(self):
        clock = signal_clock("x")
        assert clock.base_signals() == frozenset({"x"})
        assert not clock.is_null

    def test_true_clock_contains_condition_atom(self):
        clock = true_clock("b")
        kinds = {atom.kind for atom in clock.atoms()}
        assert "true" in kinds

    def test_null_clock(self):
        assert Clock.null().is_null

    def test_contradictory_product_is_null(self):
        clock = true_clock("b").intersection(false_clock("b"))
        assert clock.is_null


class TestAlgebra:
    def test_union_is_commutative_syntactically(self):
        a, b = signal_clock("a"), signal_clock("b")
        assert a.union(b).equivalent_to(b.union(a))

    def test_intersection_with_null_is_null(self):
        assert signal_clock("a").intersection(Clock.null()).is_null

    def test_union_with_null_is_identity(self):
        a = signal_clock("a")
        assert a.union(Clock.null()).equivalent_to(a)

    def test_intersection_idempotent(self):
        a = signal_clock("a")
        assert a.intersection(a).equivalent_to(a)

    def test_union_absorption(self):
        # a ∪ (a ∩ b) = a
        a, b = signal_clock("a"), signal_clock("b")
        assert a.union(a.intersection(b)).equivalent_to(a)

    def test_true_false_subclocks_are_disjoint(self):
        assert true_clock("b").disjoint_with(false_clock("b"))

    def test_different_signal_clocks_not_provably_disjoint(self):
        assert not signal_clock("a").disjoint_with(signal_clock("b"))

    def test_difference_with_complementable_condition(self):
        # ^x ^- (^x ^* [b]) = ^x ^* [not b]
        x = signal_clock("x")
        sampled = x.intersection(true_clock("b"))
        difference = x.difference(sampled)
        assert difference.included_in(x)
        assert difference.disjoint_with(sampled)

    def test_difference_with_null_is_identity(self):
        a = signal_clock("a")
        assert a.difference(Clock.null()).equivalent_to(a)


class TestOrdering:
    def test_intersection_included_in_operands(self):
        a, b = signal_clock("a"), true_clock("b")
        inter = a.intersection(b)
        assert inter.included_in(a)
        assert inter.included_in(b)

    def test_operands_included_in_union(self):
        a, b = signal_clock("a"), signal_clock("b")
        union = a.union(b)
        assert a.included_in(union)
        assert b.included_in(union)

    def test_null_included_in_everything(self):
        assert Clock.null().included_in(signal_clock("a"))
        assert not signal_clock("a").included_in(Clock.null())

    def test_equivalence_reflexive(self):
        a = signal_clock("a").intersection(true_clock("b"))
        assert a.equivalent_to(a)


class TestSubstitution:
    def test_substitute_signal_by_expression(self):
        # clock of y = ^x; substituting ^x by [b] yields [b]
        y = signal_clock("x")
        substituted = y.substitute_signal("x", true_clock("b"))
        assert substituted.equivalent_to(true_clock("b"))

    def test_substitute_by_null_removes_products(self):
        y = signal_clock("x")
        assert y.substitute_signal("x", Clock.null()).is_null

    def test_substitute_unrelated_signal_is_noop(self):
        y = signal_clock("x")
        assert y.substitute_signal("z", true_clock("b")).equivalent_to(y)


class TestDisplay:
    def test_null_clock_prints_zero(self):
        assert str(Clock.null()) == "^0"

    def test_condition_clock_hides_redundant_signal_atom(self):
        text = str(true_clock("b"))
        assert "[b]" in text
        assert "^b" not in text

    def test_atom_str(self):
        assert str(ClockAtom("sig", "x")) == "^x"
        assert str(ClockAtom("true", "b")) == "[b]"
        assert str(ClockAtom("false", "b")) == "[not b]"

    def test_atom_complement(self):
        assert ClockAtom("true", "b").complement_in() == ClockAtom("false", "b")
        assert ClockAtom("sig", "x").complement_in() is None
