"""Tests of the process model: declarations, equations, flattening."""

import pytest

from repro.sig import builder as b
from repro.sig.process import (
    ConstraintKind,
    Direction,
    ProcessModel,
    rename_expression,
    substitute_parameters,
)
from repro.sig.expressions import Const, Delay, SignalRef
from repro.sig.values import BOOLEAN, EVENT, INTEGER


def make_counter(name="counter"):
    model = ProcessModel(name)
    model.input("tick", EVENT)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    return model


class TestDeclarations:
    def test_directions(self):
        model = make_counter()
        assert [d.name for d in model.inputs()] == ["tick"]
        assert [d.name for d in model.outputs()] == ["count"]
        assert [d.name for d in model.locals()] == ["zcount"]

    def test_redeclaration_is_idempotent(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.input("x", INTEGER)
        assert len(model.inputs()) == 1

    def test_redeclaration_can_promote_direction(self):
        model = ProcessModel("p")
        model.local("x", INTEGER)
        model.output("x", INTEGER)
        assert model.signals["x"].direction is Direction.OUTPUT

    def test_define_declares_target(self):
        model = ProcessModel("p")
        model.define("y", Const(1))
        assert "y" in model.signals

    def test_partial_definition_marks_shared(self):
        model = ProcessModel("p")
        model.define_partial("v", Const(1))
        assert model.signals["v"].direction is Direction.SHARED
        assert model.equations_for("v")[0].partial

    def test_counts(self):
        model = make_counter()
        assert model.signal_count() == 3
        assert model.equation_count() == 2
        assert model.defined_signals() == ["zcount", "count"]

    def test_bundles(self):
        model = ProcessModel("p")
        model.input("a", EVENT)
        model.input("b", EVENT)
        bundle = model.add_bundle("ctl", {"A": "a", "B": "b"})
        assert bundle.signal_names() == ["a", "b"]
        assert "ctl" in model.bundles

    def test_constraints(self):
        model = make_counter()
        assert model.constraints[0].kind is ConstraintKind.SYNCHRONOUS
        model.exclusive("count", "tick")
        model.subclock("count", "tick")
        assert len(model.constraints) == 3


class TestInstantiation:
    def test_instantiate_declares_actuals(self):
        outer = ProcessModel("outer")
        inner = make_counter("inner")
        outer.input("top_tick", EVENT)
        outer.instantiate(inner, "c0", bindings={"tick": "top_tick", "count": "n"})
        assert "n" in outer.signals
        assert outer.instances[0].instance_name == "c0"

    def test_all_models_recursive(self):
        outer = ProcessModel("outer")
        inner = make_counter("inner")
        outer.add_submodel(inner)
        outer.instantiate(inner, "c0")
        names = {m.name for m in outer.all_models()}
        assert names == {"outer", "inner"}


class TestFlattening:
    def test_flatten_inlines_equations(self):
        outer = ProcessModel("outer")
        inner = make_counter("inner")
        outer.input("top_tick", EVENT)
        outer.output("n", INTEGER)
        outer.instantiate(inner, "c0", bindings={"tick": "top_tick", "count": "n"})
        flat = outer.flatten()
        assert flat.instances == []
        # The inner equations now define the bound names.
        assert any(eq.target == "n" for eq in flat.equations)
        # Unbound inner locals get the instance prefix.
        assert "c0_zcount" in flat.signals

    def test_flatten_preserves_interface_directions(self):
        outer = ProcessModel("outer")
        inner = make_counter("inner")
        outer.input("top_tick", EVENT)
        outer.output("n", INTEGER)
        outer.instantiate(inner, "c0", bindings={"tick": "top_tick", "count": "n"})
        flat = outer.flatten()
        assert flat.signals["top_tick"].direction is Direction.INPUT
        assert flat.signals["n"].direction is Direction.OUTPUT
        assert flat.signals["c0_zcount"].direction is Direction.LOCAL

    def test_flatten_renames_constraints(self):
        outer = ProcessModel("outer")
        inner = make_counter("inner")
        outer.instantiate(inner, "c0", bindings={"tick": "t"})
        flat = outer.flatten()
        constraint = flat.constraints[0]
        names = {op.name for op in constraint.operands}
        assert names == {"c0_count", "t"}

    def test_nested_flattening_two_levels(self):
        leaf = make_counter("leaf")
        middle = ProcessModel("middle")
        middle.input("mtick", EVENT)
        middle.output("mcount", INTEGER)
        middle.instantiate(leaf, "l", bindings={"tick": "mtick", "count": "mcount"})
        top = ProcessModel("top")
        top.input("t", EVENT)
        top.output("n", INTEGER)
        top.instantiate(middle, "m", bindings={"mtick": "t", "mcount": "n"})
        flat = top.flatten()
        assert any(eq.target == "n" for eq in flat.equations)
        assert "m_l_zcount" in flat.signals

    def test_flatten_applies_parameters(self):
        inner = ProcessModel("inner", parameters={"k": 1})
        inner.input("x", INTEGER)
        inner.output("y", INTEGER)
        inner.define("y", b.func("+", b.ref("x"), b.ref("k")))
        outer = ProcessModel("outer")
        outer.instantiate(inner, "i0", bindings={"x": "a", "y": "b"}, parameters={"k": 5})
        flat = outer.flatten()
        eq = [e for e in flat.equations if e.target == "b"][0]
        assert "5" in str(eq.expr)

    def test_flatten_keeps_bundles_with_prefix(self):
        inner = ProcessModel("inner")
        inner.input("a", EVENT)
        inner.add_bundle("ctl", {"A": "a"})
        outer = ProcessModel("outer")
        outer.instantiate(inner, "i0", bindings={"a": "x"})
        flat = outer.flatten()
        assert "i0_ctl" in flat.bundles
        assert flat.bundles["i0_ctl"].fields["A"] == "x"

    def test_flatten_same_model_twice_distinct_names(self):
        inner = make_counter("inner")
        outer = ProcessModel("outer")
        outer.instantiate(inner, "a", bindings={"tick": "t1"})
        outer.instantiate(inner, "b", bindings={"tick": "t2"})
        flat = outer.flatten()
        assert "a_count" in flat.signals and "b_count" in flat.signals


class TestRewriting:
    def test_rename_expression(self):
        expr = b.when(b.func("+", b.ref("x"), 1), b.clock("t"))
        renamed = rename_expression(expr, {"x": "y", "t": "u"})
        assert set(renamed.signals()) == {"y", "u"}

    def test_rename_delay_keeps_init(self):
        renamed = rename_expression(Delay(SignalRef("x"), init=7), {"x": "y"})
        assert isinstance(renamed, Delay) and renamed.init == 7

    def test_substitute_parameters_in_refs(self):
        expr = b.func("+", b.ref("x"), b.ref("k"))
        substituted = substitute_parameters(expr, {"k": 3})
        assert "3" in str(substituted)
        assert "k" not in str(substituted)

    def test_substitute_parameters_noop_without_params(self):
        expr = b.ref("x")
        assert substitute_parameters(expr, {}) is expr

    def test_copy_is_deep(self):
        model = make_counter()
        clone = model.copy()
        clone.define("extra", Const(1))
        assert model.equation_count() == 2
        assert clone.equation_count() == 3
