"""Unit tests of the modular clock calculus on hand-built process trees."""

import pytest

from repro.sig import builder as b
from repro.sig.calculus_modular import (
    ExtractionCache,
    ModularClockCalculus,
    run_clock_calculus_modular,
)
from repro.sig.clock_calculus import run_clock_calculus
from repro.sig.process import ProcessModel
from repro.sig.values import BOOLEAN, INTEGER


def sampler_model(name="sampler"):
    """y := x when c — one level of down-sampling."""
    model = ProcessModel(name)
    model.input("x", INTEGER)
    model.input("c", BOOLEAN)
    model.output("y", INTEGER)
    model.define("y", b.when(b.ref("x"), b.ref("c")))
    return model


def assert_matches_flat(tree, cache=None):
    flat_result = run_clock_calculus(tree.flatten(), flatten=False)
    calculus = ModularClockCalculus(tree, cache=cache)
    modular = calculus.run()
    assert modular.same_analysis(flat_result)
    assert modular.report() == flat_result.report()
    return calculus, modular


class TestModularComposition:
    def test_flat_model_without_instances(self):
        model = sampler_model()
        calculus, result = assert_matches_flat(model)
        assert calculus.stats.subprocesses == 1
        assert result.resolution == "directed"

    def test_two_instances_of_one_shape_share_the_extraction(self):
        template = sampler_model()
        parent = ProcessModel("parent")
        parent.input("src", INTEGER)
        parent.input("sel", BOOLEAN)
        parent.instantiate(template, "s1", {"x": "src", "c": "sel"})
        parent.instantiate(template, "s2", {"x": "src"})
        calculus, _ = assert_matches_flat(parent)
        # Identical template object, identical parameters: one extraction.
        assert calculus.stats.extraction_misses == 1
        assert calculus.stats.extraction_hits == 1

    def test_structurally_identical_distinct_objects_hit_the_cache(self):
        parent = ProcessModel("parent")
        parent.input("src", INTEGER)
        parent.input("sel", BOOLEAN)
        # Two distinct but structurally identical template objects, as the
        # AADL translator produces for repeated thread/port shapes.
        parent.instantiate(sampler_model("a"), "s1", {"x": "src", "c": "sel"})
        parent.instantiate(sampler_model("b"), "s2", {"x": "src", "c": "sel"})
        calculus, _ = assert_matches_flat(parent)
        assert calculus.stats.extraction_misses == 1
        assert calculus.stats.extraction_hits == 1

    def test_nested_instances_compose_through_interfaces(self):
        inner = sampler_model("inner")
        middle = ProcessModel("middle")
        middle.input("mx", INTEGER)
        middle.input("mc", BOOLEAN)
        middle.output("my", INTEGER)
        middle.instantiate(inner, "core", {"x": "mx", "c": "mc", "y": "my"})
        top = ProcessModel("top")
        top.input("tx", INTEGER)
        top.input("tc", BOOLEAN)
        top.instantiate(middle, "m1", {"mx": "tx", "mc": "tc"})
        top.instantiate(middle, "m2", {"mx": "tx"})
        assert_matches_flat(top)

    def test_non_injective_binding_takes_the_direct_path(self):
        """Binding two formals to the same actual merges local clocks; the
        memoised extraction cannot be renamed, so that instance is extracted
        directly — and still matches the flat solver."""
        template = sampler_model()
        parent = ProcessModel("parent")
        parent.input("src", INTEGER)
        parent.instantiate(template, "s1", {"x": "src", "c": "src"})
        calculus, _ = assert_matches_flat(parent)
        assert calculus.stats.direct_instances == 1

    def test_parameters_are_part_of_the_memo_key(self):
        template = ProcessModel("gated")
        template.input("x", INTEGER)
        template.output("y", INTEGER)
        # `enable` is a static parameter reference, resolved per instance.
        template.define("y", b.when(b.ref("x"), b.ref("enable")))
        parent = ProcessModel("parent")
        parent.input("src", INTEGER)
        parent.instantiate(template, "on", {"x": "src"}, parameters={"enable": True})
        parent.instantiate(template, "off", {"x": "src"}, parameters={"enable": False})
        calculus, _ = assert_matches_flat(parent)
        # Different parameter values must not share one extraction.
        assert calculus.stats.extraction_misses == 2

    def test_explicit_constraints_compose(self):
        template = ProcessModel("constrained")
        template.input("a")
        template.input("b")
        template.synchronise("a", "b")
        template.exclusive("a", "b")  # contradicts ^=: stays unresolved
        parent = ProcessModel("parent")
        parent.input("u")
        parent.input("v")
        parent.instantiate(template, "c1", {"a": "u", "b": "v"})
        _, result = assert_matches_flat(parent)
        assert any("^#" in line for line in result.unresolved_constraints)

    def test_self_referential_state_pattern(self):
        """count := (zcount + 1) when tick, zcount := count $ 1 — a clock
        definition mentioning its own class must not loop the resolver."""
        model = ProcessModel("counter")
        model.input("tick")
        model.local("count", INTEGER)
        model.local("zcount", INTEGER)
        model.define("zcount", b.delay(b.ref("count"), 0))
        model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.ref("tick")))
        model.synchronise("count", "tick")
        assert_matches_flat(model)


class TestExtractionCache:
    def test_cache_hits_and_misses_are_counted(self):
        cache = ExtractionCache()
        model = sampler_model()
        run_clock_calculus_modular(model, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        run_clock_calculus_modular(model, cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_results_identical_with_and_without_cache(self):
        cache = ExtractionCache()
        tree = ProcessModel("parent")
        tree.input("src", INTEGER)
        tree.input("sel", BOOLEAN)
        tree.instantiate(sampler_model(), "s1", {"x": "src", "c": "sel"})
        first = run_clock_calculus_modular(tree, cache=cache)
        second = run_clock_calculus_modular(tree, cache=cache)
        assert first.same_analysis(second)
        assert first.report() == second.report()
