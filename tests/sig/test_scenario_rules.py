"""Unit tests of the symbolic scenario programs (:mod:`repro.sig.scenario`).

The rule semantics (value/sampler/column agreement, composition, unbounded
horizons, pickling cost) are exercised directly; trace parity of symbolic
versus materialised scenarios across the backends lives in
``tests/integration/test_scenario_symbolic_parity.py`` and the hypothesis
fuzz in ``tests/sig/test_symbolic_scenario_fuzz.py``.
"""

import math
import pickle

import pytest

from repro.sig import builder as b
from repro.sig.engine import (
    CompiledBackend,
    ReferenceBackend,
    simulate as engine_simulate,
    simulate_batch,
)
from repro.sig.process import ProcessModel
from repro.sig.scenario import (
    ConstantRule,
    ExplicitRule,
    GeneratorRule,
    InputProgram,
    InputRule,
    PeriodicRule,
    Scenario,
    SparseRule,
    as_rule,
)
from repro.sig.simulator import Scenario as SimulatorScenario, simulate
from repro.sig.sinks import StatisticsSink
from repro.sig.values import ABSENT, EVENT, INTEGER, REAL, is_absent

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy CI leg
    np = None


def _counter_model():
    model = ProcessModel("rules_counter")
    model.input("tick", EVENT)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    return model


class TestRuleSemantics:
    def test_constant_rule(self):
        rule = ConstantRule(7)
        assert rule.value(0) == 7
        assert rule.value(10**9) == 7
        assert rule.column(3, 6) == [7, 7, 7]
        sample = rule.sampler()
        assert [sample(t) for t in range(4)] == [7] * 4

    def test_periodic_rule(self):
        rule = PeriodicRule(3, phase=1, fill="x")
        expected = [ABSENT, "x", ABSENT, ABSENT, "x", ABSENT, ABSENT, "x"]
        assert rule.column(0, 8) == expected
        sample = rule.sampler()
        assert [sample(t) for t in range(8)] == expected
        assert rule.value(0) is ABSENT
        assert rule.value(10**9) == "x"  # (10^9 - 1) % 3 == 0: evaluated lazily
        assert rule.finite_support() is None

    def test_periodic_rule_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicRule(0)

    def test_sparse_rule_without_base(self):
        rule = SparseRule({2: "a", 5: "b"})
        assert rule.value(2) == "a"
        assert rule.value(3) is ABSENT
        assert rule.column(0, 7) == [ABSENT, ABSENT, "a", ABSENT, ABSENT, "b", ABSENT]
        assert rule.finite_support() == 6

    def test_sparse_rule_rejects_negative_instants(self):
        with pytest.raises(ValueError):
            SparseRule({-3: 1})

    def test_sparse_overlay_composes_and_masks(self):
        base = PeriodicRule(2, fill=1)
        rule = SparseRule({0: ABSENT, 3: 9}, base=base)
        # instant 0: masked to absent; instant 2: base; instant 3: overlay.
        assert rule.column(0, 5) == [ABSENT, ABSENT, 1, 9, 1]
        sample = rule.sampler()
        assert [sample(t) for t in range(5)] == rule.column(0, 5)

    def test_explicit_rule_bounds(self):
        rule = ExplicitRule([1, 2])
        assert rule.value(1) == 2
        assert rule.value(2) is ABSENT
        assert rule.value(-1) is ABSENT
        assert rule.column(1, 4) == [2, ABSENT, ABSENT]
        assert rule.finite_support() == 2
        # legacy list-compat surface
        assert len(rule) == 2 and rule[0] == 1 and list(rule) == [1, 2]

    def test_generator_rule(self):
        rule = GeneratorRule(lambda t: t * t if t % 2 == 0 else ABSENT)
        assert rule.column(0, 5) == [0, ABSENT, 4, ABSENT, 16]
        assert rule.sampler()(6) == 36

    def test_as_rule_coercions(self):
        assert isinstance(as_rule([1, 2]), ExplicitRule)
        assert isinstance(as_rule((1, 2)), ExplicitRule)
        rule = PeriodicRule(2)
        assert as_rule(rule) is rule
        assert isinstance(as_rule(lambda t: t), GeneratorRule)
        with pytest.raises(TypeError):
            as_rule(42)

    def test_input_program_coerces_on_every_path(self):
        program = InputProgram()
        program["a"] = [1, 2]
        program.update(c=[5], d=PeriodicRule(3))
        program.setdefault("e", [6])
        assert isinstance(program["a"], ExplicitRule)
        assert isinstance(program["c"], ExplicitRule)
        assert isinstance(program["d"], PeriodicRule)
        assert isinstance(program["e"], ExplicitRule)

    def test_input_program_coerces_constructor_and_copy(self):
        program = InputProgram({"a": [1, 2]}, b=[3])
        assert isinstance(program["a"], ExplicitRule)
        assert isinstance(program["b"], ExplicitRule)
        clone = program.copy()
        assert isinstance(clone, InputProgram)
        assert clone["a"] is program["a"]
        clone["c"] = [4]  # the copy keeps coercing
        assert isinstance(clone["c"], ExplicitRule)
        assert "c" not in program

    def test_repeated_set_at_stays_flat(self):
        sc = Scenario(None).set_periodic("x", 7, value=0)
        for instant in range(3000):
            sc.set_at("x", {instant: instant})
        rule = sc.inputs["x"]
        assert isinstance(rule, SparseRule)
        assert isinstance(rule.base, PeriodicRule)  # no SparseRule chain
        # Deep chains used to blow the recursion limit here.
        sample = rule.sampler()
        assert sample(2999) == 2999
        assert sample(1234) == 1234
        assert sample(3507) == 0  # 3500 = 7*501: back to the periodic base
        # Later overlays win over earlier ones.
        sc.set_at("x", {10: -1})
        assert sc.inputs["x"].value(10) == -1


class TestScenarioBuilders:
    def test_builders_record_rules_not_lists(self):
        sc = (
            Scenario(100)
            .set_periodic("p", 4, phase=2, value=3)
            .set_always("c", True)
            .set_at("s", {1: 5})
            .set_flow("e", [1, 2, 3])
        )
        assert isinstance(sc.inputs["p"], PeriodicRule)
        assert isinstance(sc.inputs["c"], ConstantRule)
        assert isinstance(sc.inputs["s"], SparseRule)
        assert isinstance(sc.inputs["e"], ExplicitRule)

    def test_simulator_reexports_scenario(self):
        assert SimulatorScenario is Scenario

    def test_set_at_overlays_existing_rule(self):
        sc = Scenario(10).set_periodic("x", 2, value=1).set_at("x", {3: 7})
        assert sc.value("x", 2) == 1
        assert sc.value("x", 3) == 7
        assert is_absent(sc.value("x", 5))

    def test_materialize_and_column(self):
        sc = Scenario(6).set_periodic("x", 3, value=2)
        assert sc.materialize("x") == [2, ABSENT, ABSENT, 2, ABSENT, ABSENT]
        assert sc.column("x", 2, 5) == [ABSENT, 2, ABSENT]
        assert sc.column("missing", 0, 2) == [ABSENT, ABSENT]

    def test_materialized_scenario_is_explicit(self):
        sc = Scenario(5).set_periodic("x", 2, value=1).set_always("y", 0)
        eager = sc.materialized()
        assert eager.length == 5
        assert all(isinstance(rule, ExplicitRule) for rule in eager.inputs.values())
        for name in sc.inputs:
            assert eager.materialize(name) == sc.materialize(name)

    def test_legacy_list_assignment_still_works(self):
        sc = Scenario(3)
        sc.inputs["u"] = [1.0, 2.0, 3.0]
        assert isinstance(sc.inputs["u"], ExplicitRule)
        assert sc.value("u", 1) == 2.0


class TestUnboundedScenarios:
    def test_run_length_resolution(self):
        assert Scenario(8).run_length() == 8
        assert Scenario(8).run_length(3) == 3
        assert Scenario(None).run_length(5) == 5
        with pytest.raises(ValueError, match="unbounded"):
            Scenario(None).run_length()
        with pytest.raises(ValueError):
            Scenario(8).run_length(-1)

    def test_simulate_requires_length_for_unbounded(self):
        model = _counter_model()
        sc = Scenario().set_periodic("tick", 1)
        with pytest.raises(ValueError, match="unbounded"):
            simulate(model, sc)

    @pytest.mark.parametrize("backend", ["reference", "compiled", "vectorized", "lowered"])
    def test_one_symbolic_scenario_many_horizons(self, backend, recwarn):
        model = _counter_model()
        sc = Scenario().set_periodic("tick", 2)
        for horizon in (0, 1, 7, 40):
            trace = engine_simulate(model, sc, backend=backend, length=horizon)
            assert trace.length == horizon
            assert trace.count_present("count") == math.ceil(horizon / 2)

    def test_length_overrides_bounded_scenario(self):
        model = _counter_model()
        sc = Scenario(4).set_periodic("tick", 1)
        longer = simulate(model, sc, length=10)
        assert longer.length == 10
        # Rules are unbounded flows: the override extends the periodic input
        # past the scenario's default horizon.
        assert longer.count_present("tick") == 10
        shorter = simulate(model, sc, length=2)
        assert shorter.length == 2

    def test_streaming_sink_with_length(self):
        model = _counter_model()
        sc = Scenario().set_periodic("tick", 1)
        sink = StatisticsSink()
        runner = CompiledBackend(model, strict=False)
        assert runner.run(sc, sinks=[sink], length=25) is None
        assert sink.result().length == 25
        assert sink.result().count_present("count") == 25

    def test_batch_length_override_and_parity(self):
        model = _counter_model()
        scenarios = [Scenario().set_periodic("tick", period) for period in (1, 2, 3)]
        result = simulate_batch(model, scenarios, strict=False, length=12)
        assert [trace.length for trace in result.traces] == [12, 12, 12]
        for period, trace in zip((1, 2, 3), result.traces):
            assert trace.count_present("tick") == math.ceil(12 / period)

    def test_parallel_batch_ships_rules(self):
        model = _counter_model()
        scenarios = [Scenario().set_periodic("tick", period) for period in (1, 2)]
        sequential = simulate_batch(model, scenarios, strict=False, length=16, workers=1)
        sharded = simulate_batch(model, scenarios, strict=False, length=16, workers=2)
        for a, c in zip(sequential.traces, sharded.traces):
            assert a.flows == c.flows
            assert a.warnings == c.warnings


class TestPickling:
    def test_symbolic_scenario_pickles_small(self):
        horizon = 1_000_000
        sc = Scenario(horizon).set_periodic("tick", 2).set_always("on", True)
        payload = pickle.dumps(sc)
        # A million-instant periodic scenario ships as rules, not lists.
        assert len(payload) < 1024, len(payload)
        clone = pickle.loads(payload)
        assert clone.length == horizon
        for t in (0, 1, 2, 999_999):
            assert clone.value("tick", t) == sc.value("tick", t)
            assert clone.value("on", t) is True

    def test_sparse_rule_pickles_and_rebuilds_index(self):
        rule = SparseRule({5: 1, 2: 2}, base=PeriodicRule(4))
        clone = pickle.loads(pickle.dumps(rule))
        assert clone.column(0, 8) == rule.column(0, 8)

    def test_generator_rule_pickles_with_toplevel_function(self):
        rule = GeneratorRule(_every_fifth)
        clone = pickle.loads(pickle.dumps(rule))
        assert clone.column(0, 11) == rule.column(0, 11)


def _every_fifth(t):
    """Top-level generator function (lambdas do not pickle)."""
    return t if t % 5 == 0 else ABSENT


@pytest.mark.skipif(np is None, reason="numpy not installed")
class TestBlockColumns:
    """The arithmetic fast path must agree with the per-instant sampler."""

    @pytest.mark.parametrize(
        "rule",
        [
            ConstantRule(2.5),
            ConstantRule(True),
            ConstantRule("s"),
            ConstantRule(ABSENT),
            PeriodicRule(1),
            PeriodicRule(3, phase=1, fill=4.0),
            PeriodicRule(7, phase=13, fill=False),
            SparseRule({0: 1.5, 9: 2.5, 100: 3.5}),
            SparseRule({4: ABSENT, 6: 9.0}, base=PeriodicRule(2, fill=1.0)),
            SparseRule({3: 7.5}, base=ConstantRule(0.5)),
        ],
    )
    @pytest.mark.parametrize("window", [(0, 16), (5, 6), (97, 130), (3, 3)])
    def test_block_columns_match_column(self, rule, window):
        start, stop = window
        for typed in (None, float, bool):
            columns = rule.block_columns(start, stop, np, typed=typed)
            assert columns is not None
            mask, values, typed_values = columns
            expected = rule.column(start, stop)
            assert list(mask) == [not is_absent(v) for v in expected]
            assert list(values) == expected
            if typed_values is not None:
                assert typed is not None
                for offset, value in enumerate(expected):
                    if not is_absent(value):
                        assert typed_values[offset] == value
                        assert type(typed_values.tolist()[offset]) is typed

    def test_explicit_and_generator_have_no_fast_path(self):
        assert ExplicitRule([1, 2]).block_columns(0, 4, np) is None
        assert GeneratorRule(_every_fifth).block_columns(0, 4, np) is None

    def test_typed_rejected_for_mismatched_fill(self):
        mask, values, typed_values = PeriodicRule(2, fill=1).block_columns(
            0, 8, np, typed=float
        )
        assert typed_values is None  # int fill is not exactly a float
        nan_rule = ConstantRule(float("nan"))
        _, _, typed_nan = nan_rule.block_columns(0, 4, np, typed=float)
        assert typed_nan is None  # NaN must stay on the object path

    def test_sparse_overlay_downgrades_typed_on_mismatch(self):
        rule = SparseRule({2: "oops"}, base=ConstantRule(1.0))
        mask, values, typed_values = rule.block_columns(0, 4, np, typed=float)
        assert typed_values is None
        assert values[2] == "oops"

    def test_periodic_sequence_fill_is_not_broadcast(self):
        rule = PeriodicRule(2, fill=(1, 2))
        mask, values, typed_values = rule.block_columns(0, 4, np)
        # numpy mask assignment would distribute the tuple's elements across
        # the present slots; each present instant must hold the tuple object.
        assert values[0] == (1, 2) and values[2] == (1, 2)
        assert rule.column(0, 4) == list(values)


class TestEngineIntegration:
    def test_generator_rule_drives_all_backends(self):
        model = ProcessModel("gen_inputs")
        model.input("u", REAL)
        model.output("y", REAL)
        model.define("y", b.ref("u") * 2.0)
        sc = Scenario(12).set_generator("u", _halves)
        reference = ReferenceBackend(model, strict=False).run(sc)
        compiled = CompiledBackend(model, strict=False).run(sc)
        assert compiled.flows == reference.flows
        vec = engine_simulate(model, sc, strict=False, backend="vectorized")
        assert vec.flows == reference.flows

    def test_undeclared_and_scenario_only_rules(self):
        model = ProcessModel("undeclared")
        model.input("u", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.func("+", b.ref("u"), b.ref("extra")))
        sc = Scenario(6).set_periodic("u", 1, value=1).set_periodic("extra", 1, value=2)
        sc.set_periodic("ghost", 2, value=9)  # never referenced, still recordable
        reference = ReferenceBackend(model, strict=False).run(
            sc, record=["y", "ghost"]
        )
        compiled = CompiledBackend(model, strict=False).run(sc, record=["y", "ghost"])
        assert reference.present_values("y") == [3] * 6
        assert compiled.flows == reference.flows
        assert compiled.count_present("ghost") == 3


def _halves(t):
    """Present every other instant with a float payload (picklable)."""
    return t / 2.0 if t % 2 == 0 else ABSENT
