"""Property-based tests (hypothesis) on the polychronous kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sig import builder as b
from repro.sig.affine import AffineClock, lcm, solve_congruences
from repro.sig.clocks import Clock, false_clock, signal_clock, true_clock
from repro.sig.process import ProcessModel
from repro.sig.simulator import Scenario, simulate
from repro.sig.values import ABSENT, Flow, stutter_free

periods = st.integers(min_value=1, max_value=12)
phases = st.integers(min_value=0, max_value=12)
signal_names = st.sampled_from(["a", "b", "c", "d"])


# ----------------------------------------------------------------------
# affine clock calculus
# ----------------------------------------------------------------------
@given(periods, phases, periods, phases)
@settings(max_examples=60, deadline=None)
def test_affine_intersection_matches_enumeration(p1, f1, p2, f2):
    """The CRT-based intersection equals the brute-force tick intersection."""
    a = AffineClock("tick", p1, f1)
    c = AffineClock("tick", p2, f2)
    horizon = lcm(p1, p2) * 4 + max(f1, f2) + 1
    expected = sorted(set(a.instants(horizon)) & set(c.instants(horizon)))
    inter = a.intersection(c)
    if inter is None:
        assert expected == []
    else:
        assert inter.instants(horizon) == expected


@given(periods, phases, periods, phases)
@settings(max_examples=60, deadline=None)
def test_affine_subclock_implies_containment(p1, f1, p2, f2):
    a = AffineClock("tick", p1, f1)
    c = AffineClock("tick", p2, f2)
    horizon = lcm(p1, p2) * 3 + max(f1, f2) + 1
    if a.is_subclock_of(c):
        assert set(a.instants(horizon)) <= set(c.instants(horizon))


@given(periods, phases)
@settings(max_examples=40, deadline=None)
def test_affine_relation_with_self_is_identity(p, f):
    clock = AffineClock("tick", p, f)
    n, phi, d = clock.relative_relation(clock)
    assert n == d == 1 and phi == 0


@given(st.integers(0, 30), st.integers(1, 20), st.integers(0, 30), st.integers(1, 20))
@settings(max_examples=60, deadline=None)
def test_solve_congruences_solution_is_valid(r1, m1, r2, m2):
    solution = solve_congruences(r1 % m1, m1, r2 % m2, m2)
    if solution is not None:
        r, m = solution
        assert m == lcm(m1, m2)
        assert r % m1 == r1 % m1
        assert r % m2 == r2 % m2


# ----------------------------------------------------------------------
# clock algebra
# ----------------------------------------------------------------------
clock_exprs = st.recursive(
    st.one_of(
        signal_names.map(signal_clock),
        signal_names.map(true_clock),
        signal_names.map(false_clock),
    ),
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda ab: ab[0].union(ab[1])),
        st.tuples(children, children).map(lambda ab: ab[0].intersection(ab[1])),
    ),
    max_leaves=6,
)


@given(clock_exprs)
@settings(max_examples=60, deadline=None)
def test_clock_union_intersection_idempotent(clock):
    assert clock.union(clock).equivalent_to(clock)
    assert clock.intersection(clock).equivalent_to(clock)


@given(clock_exprs, clock_exprs)
@settings(max_examples=60, deadline=None)
def test_clock_intersection_included_in_union(c1, c2):
    inter = c1.intersection(c2)
    union = c1.union(c2)
    assert inter.included_in(union)
    assert c1.included_in(union) and c2.included_in(union)


@given(clock_exprs, clock_exprs)
@settings(max_examples=60, deadline=None)
def test_clock_disjointness_is_symmetric(c1, c2):
    assert c1.disjoint_with(c2) == c2.disjoint_with(c1)


# ----------------------------------------------------------------------
# flows and the simulator
# ----------------------------------------------------------------------
value_or_absent = st.one_of(st.integers(-5, 5), st.just(ABSENT))


@given(st.lists(value_or_absent, max_size=20))
@settings(max_examples=60, deadline=None)
def test_flow_clock_matches_present_values(values):
    flow = Flow("x", values)
    assert len(flow.clock) == len(flow.present_values())
    assert stutter_free(values) == flow.present_values()


@given(st.lists(st.integers(-10, 10), min_size=1, max_size=15), st.integers(-3, 3))
@settings(max_examples=40, deadline=None)
def test_simulator_stepwise_addition_pointwise(values, offset):
    model = ProcessModel("p")
    model.input("x")
    model.output("y")
    model.define("y", b.func("+", b.ref("x"), offset))
    sc = Scenario(len(values)).set_flow("x", values)
    trace = simulate(model, sc)
    assert trace.present_values("y") == [v + offset for v in values]


@given(st.lists(value_or_absent, min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_simulator_delay_is_previous_present_value(values):
    model = ProcessModel("p")
    model.input("x")
    model.output("y")
    model.define("y", b.delay(b.ref("x"), init=0))
    sc = Scenario(len(values)).set_flow("x", values)
    trace = simulate(model, sc)
    present = stutter_free(values)
    expected = [0] + present[:-1] if present else []
    assert trace.present_values("y") == expected
    assert trace.clock_of("y") == Flow("x", values).clock


@given(st.integers(1, 6), st.integers(0, 5), st.integers(5, 30))
@settings(max_examples=30, deadline=None)
def test_periodic_divider_matches_affine_clock(period, phase, horizon):
    from repro.sig import library

    model = library.periodic_clock_divider(period=period, phase=phase)
    sc = Scenario(horizon).set_always("tick")
    trace = simulate(model, sc)
    assert trace.clock_of("out") == AffineClock("tick", period, phase).instants(horizon)


@given(st.lists(st.booleans(), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_when_keeps_only_true_instants(conditions):
    model = ProcessModel("p")
    model.input("x")
    model.input("c")
    model.output("y")
    model.define("y", b.when(b.ref("x"), b.ref("c")))
    sc = Scenario(len(conditions))
    sc.set_flow("x", list(range(len(conditions))))
    sc.set_flow("c", conditions)
    trace = simulate(model, sc)
    assert trace.clock_of("y") == [i for i, c in enumerate(conditions) if c]
