"""Tests of the AADL2SIGNAL library processes (memory, ports, FIFOs, observers)."""

import pytest

from repro.sig import library
from repro.sig.simulator import Scenario, Simulator
from repro.sig.values import ABSENT, INTEGER


class TestMemoryProcess:
    def test_fm_definition_from_paper(self):
        """o = fm(i, b): value of i when present and b true, previous i when
        i absent and b true, absent otherwise (Section IV-C)."""
        model = library.memory_process(init=-1)
        sc = Scenario(6)
        sc.set_at("i", {0: 10, 3: 20})
        sc.set_flow("b", [True, True, False, ABSENT, True, True])
        trace = Simulator(model).run(sc)
        # t0: i=10, b true -> 10 ; t1: i absent, b true -> 10 ; t2: b false -> absent
        # t3: b absent -> absent ; t4: b true -> 20 ; t5: 20
        assert trace.clock_of("o") == [0, 1, 4, 5]
        assert trace.present_values("o") == [10, 10, 20, 20]

    def test_fm_initial_value(self):
        model = library.memory_process(init=99)
        sc = Scenario(2)
        sc.set_flow("b", [True, True])
        trace = Simulator(model).run(sc)
        assert trace.present_values("o") == [99, 99]


class TestInputFreezingAndSending:
    def test_input_freezing_freezes_last_value(self):
        """z = x |> t : frozen value visible only at the freeze event."""
        model = library.input_freezing(init=0)
        sc = Scenario(8)
        sc.set_at("x", {1: 5, 2: 6, 5: 7})
        sc.set_periodic("t", 4, 0)
        trace = Simulator(model).run(sc)
        assert trace.clock_of("z") == [0, 4]
        assert trace.present_values("z") == [0, 6]

    def test_output_sending(self):
        model = library.output_sending(init=0)
        sc = Scenario(6)
        sc.set_at("y", {1: 11, 3: 13})
        sc.set_periodic("t", 3, 2)
        trace = Simulator(model).run(sc)
        assert trace.clock_of("w") == [2, 5]
        assert trace.present_values("w") == [11, 13]


class TestInEventPort:
    def make_trace(self, queue_size=2, arrivals=None, freeze_period=4, length=12):
        model = library.in_event_port(queue_size=queue_size)
        sc = Scenario(length)
        sc.set_at("arrival", arrivals or {})
        sc.set_periodic("frozen_time", freeze_period, 0)
        return Simulator(model).run(sc)

    def test_counts_pending_events(self):
        trace = self.make_trace(arrivals={1: 10, 2: 20, 5: 30})
        assert trace.present_values("frozen_count") == [0, 2, 1]

    def test_frozen_value_is_latest_item(self):
        trace = self.make_trace(arrivals={1: 10, 2: 20, 5: 30})
        assert trace.present_values("frozen_value") == [20, 30]

    def test_arrival_at_freeze_instant_deferred_to_next(self):
        """Values arriving at/after Input_Time wait for the next dispatch (Fig. 2)."""
        trace = self.make_trace(arrivals={4: 99})
        # freeze at 4 does not see the arrival at 4; freeze at 8 does.
        assert trace.present_values("frozen_count") == [0, 0, 1]

    def test_queue_overflow_raises_dropped(self):
        trace = self.make_trace(queue_size=1, arrivals={1: 10, 2: 20})
        assert trace.clock_of("dropped") == [2]
        # occupancy is clamped at Queue_Size
        assert max(trace.present_values("frozen_count")) <= 1

    def test_no_frozen_value_when_queue_empty(self):
        trace = self.make_trace(arrivals={})
        assert trace.present_values("frozen_value") == []
        assert set(trace.present_values("frozen_count")) == {0}

    def test_invalid_queue_size(self):
        with pytest.raises(ValueError):
            library.in_event_port(queue_size=0)


class TestOutEventPort:
    def test_sends_at_output_time_only_when_produced(self):
        model = library.out_event_port()
        sc = Scenario(10)
        sc.set_at("produced", {1: 100, 6: 200})
        sc.set_periodic("send_time", 4, 0)
        trace = Simulator(model).run(sc)
        # sends at 4 (value 100) and 8 (value 200); nothing at 0.
        assert trace.clock_of("sent") == [4, 8]
        assert trace.present_values("sent") == [100, 200]

    def test_sent_count_reports_buffered_items(self):
        model = library.out_event_port()
        sc = Scenario(5)
        sc.set_at("produced", {0: 1, 1: 2, 2: 3})
        sc.set_at("send_time", {4: True})
        trace = Simulator(model).run(sc)
        assert trace.present_values("sent_count") == [3]


class TestDataPort:
    def test_keeps_last_value(self):
        model = library.data_port(init=0)
        sc = Scenario(9)
        sc.set_at("incoming", {1: 1, 2: 2, 6: 3})
        sc.set_periodic("frozen_time", 4, 0)
        trace = Simulator(model).run(sc)
        assert trace.present_values("frozen_value") == [0, 2, 3]


class TestFifoReset:
    def test_read_sees_last_write(self):
        model = library.fifo_reset(init=0)
        sc = Scenario(8)
        sc.set_at("write", {1: 5, 4: 9})
        sc.set_at("read", {2: True, 6: True})
        trace = Simulator(model).run(sc)
        assert trace.present_values("read_value") == [5, 9]

    def test_reset_restores_initial_value(self):
        model = library.fifo_reset(init=0)
        sc = Scenario(6)
        sc.set_at("write", {0: 5})
        sc.set_at("reset", {2: True})
        sc.set_at("read", {4: True})
        trace = Simulator(model).run(sc)
        assert trace.present_values("read_value") == [0]

    def test_occupancy_counts_pushes_and_pops(self):
        model = library.fifo_reset(init=0)
        sc = Scenario(8)
        sc.set_at("write", {0: 1, 1: 2, 2: 3})
        sc.set_at("read", {3: True, 4: True})
        trace = Simulator(model).run(sc)
        counts = trace.present_values("count")
        assert counts[:3] == [1, 2, 3]
        assert counts[3:] == [2, 1]

    def test_empty_flag(self):
        model = library.fifo_reset(init=0)
        sc = Scenario(3)
        sc.set_at("read", {0: True})
        sc.set_at("write", {1: 7})
        sc.set_at("read", {2: True})
        trace = Simulator(model).run(sc)
        assert trace.present_values("empty") == [True, False]

    def test_capacity_clamps_occupancy(self):
        model = library.fifo_reset(init=0, capacity=2)
        sc = Scenario(4)
        sc.set_at("write", {0: 1, 1: 2, 2: 3, 3: 4})
        trace = Simulator(model).run(sc)
        assert max(trace.present_values("count")) == 2


class TestPropertyObserver:
    def run_observer(self, dispatch, complete, deadline, length=12):
        model = library.thread_property_observer()
        sc = Scenario(length)
        sc.set_at("dispatch", {t: True for t in dispatch})
        sc.set_at("complete", {t: True for t in complete})
        sc.set_at("deadline", {t: True for t in deadline})
        return Simulator(model).run(sc)

    def test_no_alarm_when_complete_before_deadline(self):
        trace = self.run_observer(dispatch=[0, 4, 8], complete=[2, 6, 10], deadline=[4, 8])
        assert trace.clock_of("alarm") == []

    def test_alarm_on_missed_deadline(self):
        trace = self.run_observer(dispatch=[0, 4], complete=[2], deadline=[4, 8])
        assert trace.clock_of("alarm") == [8]

    def test_dispatch_and_deadline_same_instant_checks_previous_window(self):
        # deadline at 4 coincides with the next dispatch; the first job completed
        # at 3 so there is no alarm.
        trace = self.run_observer(dispatch=[0, 4], complete=[3], deadline=[4])
        assert trace.clock_of("alarm") == []


class TestPeriodicClockDividerAndCounter:
    def test_divider_phases(self):
        model = library.periodic_clock_divider(period=4, phase=2)
        sc = Scenario(12).set_always("tick")
        trace = Simulator(model).run(sc)
        assert trace.clock_of("out") == [2, 6, 10]

    def test_divider_matches_affine_clock(self):
        from repro.sig.affine import AffineClock

        period, phase, horizon = 3, 1, 15
        model = library.periodic_clock_divider(period=period, phase=phase)
        sc = Scenario(horizon).set_always("tick")
        trace = Simulator(model).run(sc)
        assert trace.clock_of("out") == AffineClock("tick", period, phase).instants(horizon)

    def test_divider_invalid_parameters(self):
        with pytest.raises(ValueError):
            library.periodic_clock_divider(period=0)
        with pytest.raises(ValueError):
            library.periodic_clock_divider(period=2, phase=-1)

    def test_event_counter(self):
        model = library.event_counter()
        sc = Scenario(7).set_periodic("e", 3)
        trace = Simulator(model).run(sc)
        assert trace.present_values("count") == [1, 2, 3]
