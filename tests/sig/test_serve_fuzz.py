"""Property-based fuzz of the serving plan cache under concurrency.

Hypothesis sweeps formatting mutations (whitespace/comment noise that must
not change a model's structural fingerprint), concurrent submit storms and
random submit/simulate/evict/info interleavings over a pool of tiny
generated models, asserting the cache invariants hold for *every* run:

* exactly one compile per resident fingerprint (single-flight), however
  many threads race on byte-different sources of the same model;
* no cross-request bleed — every simulate answers with its own model's
  baseline trace, bit-identical, regardless of what the other threads do;
* LRU eviction matches a shadow model, residency never exceeds capacity,
  and an evicted model is transparently recompiled (compile count +1) on
  resubmit;
* compile count never exceeds miss count.

Skips cleanly when ``hypothesis`` is not installed.
"""

import json
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.aadl.printer import render_model
from repro.casestudies import GeneratorConfig, generate_case_study
from repro.serve.cache import canonical_source, model_fingerprint
from repro.serve.service import ServiceConfig, SimulationService

_POOL_SIZE = 3

_SETTINGS = dict(
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def pool():
    """Tiny generated models: (submit body, serial baseline response)."""
    service = SimulationService(ServiceConfig())
    models = []
    for index in range(_POOL_SIZE):
        generated = generate_case_study(
            GeneratorConfig(
                name=f"Fuzz{index}", processes=1, threads_per_process=1, seed=index
            )
        )
        body = {
            "source": render_model(generated.model),
            "root": generated.root_implementation,
            "package": f"Fuzz{index}",
        }
        fingerprint = service.submit(dict(body))["fingerprint"]
        baseline = service.simulate(
            fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 1}
        )
        models.append(
            {
                "body": body,
                "fingerprint": fingerprint,
                "baseline": json.loads(json.dumps(baseline)),
            }
        )
    return models


def mutate_source(source, seed):
    """Formatting noise: comments, blank lines, trailing spaces.

    Never touches token content, so the canonical rendering — and hence
    the structural fingerprint — must be unchanged.
    """
    rng = random.Random(seed)
    lines = source.splitlines()
    mutated = []
    for line in lines:
        if rng.random() < 0.2:
            mutated.append(f"  -- fuzz noise {rng.randrange(1000)}")
        if rng.random() < 0.2:
            mutated.append("")
        mutated.append(line + (" " * rng.randrange(3)))
    if rng.random() < 0.5:
        mutated.append("")
    return "\n".join(mutated) + "\n"


def submit_variant(service, model, seed):
    body = dict(model["body"])
    if seed is not None:
        body["source"] = mutate_source(body["source"], seed)
    return service.submit(body)


@given(model_index=st.integers(0, _POOL_SIZE - 1), seed=st.integers(0, 2 ** 16))
@settings(**_SETTINGS)
def test_fingerprint_invariant_under_formatting(pool, model_index, seed):
    model = pool[model_index]
    original = model["body"]["source"]
    mutant = mutate_source(original, seed)
    if seed % 3:  # mutations compose: noise over noise still canonicalises
        mutant = mutate_source(mutant, seed + 1)
    assert canonical_source(mutant) == canonical_source(original)
    assert model_fingerprint(canonical_source(mutant), ()) == model_fingerprint(
        canonical_source(original), ()
    )


@given(seed=st.integers(0, 2 ** 16))
@settings(**_SETTINGS)
def test_concurrent_submit_storm_compiles_once(pool, seed):
    """N threads × byte-different sources of the same models: one compile
    per fingerprint, every response consistent, no bleed between models."""
    rng = random.Random(seed)
    service = SimulationService(ServiceConfig(cache_capacity=8, max_concurrent=8))
    jobs = [
        (rng.randrange(_POOL_SIZE), rng.randrange(2 ** 16) if rng.random() < 0.7 else None)
        for _ in range(16)
    ]

    def run(job):
        model_index, variant_seed = job
        model = pool[model_index]
        submitted = submit_variant(service, model, variant_seed)
        assert submitted["fingerprint"] == model["fingerprint"]
        response = service.simulate(
            submitted["fingerprint"],
            {"scenarios": [{"default": True}], "hyperperiods": 1},
        )
        return model_index, json.loads(json.dumps(response))

    with ThreadPoolExecutor(max_workers=8) as executor:
        outcomes = list(executor.map(run, jobs))

    seen = {model_index for model_index, _ in outcomes}
    for model_index in seen:
        fingerprint = pool[model_index]["fingerprint"]
        assert service.cache.compiles[fingerprint] == 1, (
            f"model {model_index} compiled more than once under the storm"
        )
    for model_index, response in outcomes:
        baseline = pool[model_index]["baseline"]
        assert response["fingerprint"] == baseline["fingerprint"]
        assert response["results"] == baseline["results"], (
            f"cross-request bleed: model {model_index} answered with foreign results"
        )
    stats = service.cache.stats()
    assert stats["compiles"] <= stats["misses"]
    assert stats["resident"] <= 8


@given(ops=st.lists(st.integers(0, _POOL_SIZE - 1), min_size=1, max_size=14))
@settings(**_SETTINGS)
def test_lru_eviction_matches_shadow_model(pool, ops):
    """Submissions under capacity pressure: residency tracks an explicit
    shadow LRU and every re-entry recompiles exactly once."""
    capacity = 2
    service = SimulationService(ServiceConfig(cache_capacity=capacity))
    shadow = []  # fingerprints, least recently used first
    expected_compiles = {}
    for model_index in ops:
        model = pool[model_index]
        fingerprint = model["fingerprint"]
        submitted = submit_variant(service, model, None)
        assert submitted["fingerprint"] == fingerprint
        if fingerprint in shadow:
            assert submitted["cached"] is True
            shadow.remove(fingerprint)
        else:
            assert submitted["cached"] is False
            expected_compiles[fingerprint] = expected_compiles.get(fingerprint, 0) + 1
            if len(shadow) == capacity:
                shadow.pop(0)
        shadow.append(fingerprint)
        assert service.cache.fingerprints() == shadow
        assert len(service.cache) <= capacity
    for fingerprint, count in expected_compiles.items():
        assert service.cache.compiles[fingerprint] == count
    stats = service.cache.stats()
    assert stats["compiles"] <= stats["misses"]
    assert stats["evictions"] == sum(expected_compiles.values()) - len(shadow)


@given(seed=st.integers(0, 2 ** 16))
@settings(**_SETTINGS)
def test_random_interleavings_keep_cache_coherent(pool, seed):
    """Concurrent submit/simulate/evict/info chaos: the cache never serves
    a foreign plan and counters stay coherent."""
    rng = random.Random(seed)
    service = SimulationService(ServiceConfig(cache_capacity=2, max_concurrent=8))
    jobs = [
        (rng.choice(["submit", "simulate", "evict", "info"]), rng.randrange(_POOL_SIZE))
        for _ in range(20)
    ]

    def run(job):
        action, model_index = job
        model = pool[model_index]
        if action == "submit":
            assert (
                submit_variant(service, model, rng.randrange(2 ** 16))["fingerprint"]
                == model["fingerprint"]
            )
        elif action == "simulate":
            submit_variant(service, model, None)
            try:
                response = service.simulate(
                    model["fingerprint"],
                    {"scenarios": [{"default": True}], "hyperperiods": 1},
                )
            except Exception as error:  # evicted between submit and simulate
                assert getattr(error, "code", None) == "model-not-found"
                return
            assert (
                json.loads(json.dumps(response))["results"]
                == pool[model_index]["baseline"]["results"]
            )
        elif action == "evict":
            try:
                service.evict(model["fingerprint"])
            except Exception as error:
                assert getattr(error, "code", None) == "model-not-found"
        else:
            try:
                info = service.model_info(model["fingerprint"])
                assert info["fingerprint"] == model["fingerprint"]
            except Exception as error:
                assert getattr(error, "code", None) == "model-not-found"

    with ThreadPoolExecutor(max_workers=6) as executor:
        list(executor.map(run, jobs))

    stats = service.cache.stats()
    assert stats["resident"] <= 2
    assert stats["compiles"] <= stats["misses"]
    for fingerprint in service.cache.fingerprints():
        assert service.cache.compiles[fingerprint] >= 1
