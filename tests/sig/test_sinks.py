"""Tests of the streaming trace sinks (repro.sig.sinks).

The contract under test: streaming a run into sinks observes exactly what
the legacy materialising path records (MaterializeSink is bit-identical to
``SimulationTrace``), statistics aggregate without holding flows, sinks
close even when the simulation aborts, and the batched APIs create, drive
and harvest per-scenario sinks in scenario order — sequentially and across
worker processes.
"""

import pytest

from repro.sig import builder as b
from repro.sig.engine import CompiledBackend, ReferenceBackend, simulate, simulate_batch
from repro.sig.engine.batch import batch_flow_summary
from repro.sig.process import ProcessModel
from repro.sig.simulator import ClockViolation, Scenario, Simulator
from repro.sig.sinks import (
    MaterializeSink,
    SignalStatistics,
    StatisticsSink,
    TraceHeader,
    TraceSink,
    as_sink_list,
    batch_statistics_summary,
    replay_trace,
)
from repro.sig.values import ABSENT, EVENT, INTEGER


def counter_model() -> ProcessModel:
    model = ProcessModel("sink_sample")
    model.input("tick", EVENT)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    return model


def clock_conflict_model() -> ProcessModel:
    """Applying ``+`` to signals on different clocks raises in strict mode."""
    model = ProcessModel("conflict")
    model.input("x", INTEGER)
    model.input("y", INTEGER)
    model.output("bad", INTEGER)
    model.define("bad", b.func("+", b.ref("x"), b.ref("y")))
    return model


@pytest.fixture()
def model():
    return counter_model()


@pytest.fixture()
def scenario():
    return Scenario(8).set_periodic("tick", 2)


class RecordingSink(TraceSink):
    """Collects every callback for protocol assertions."""

    def __init__(self):
        self.headers = []
        self.instants = []
        self.closed = 0

    def on_header(self, header):
        super().on_header(header)
        self.headers.append(header)

    def on_instant(self, instant, statuses, values):
        self.instants.append((instant, statuses, values))

    def on_close(self):
        self.closed += 1


class TestProtocol:
    def test_header_describes_the_run(self, model, scenario):
        sink = RecordingSink()
        out = simulate(model, scenario, record=["tick", "count"], sinks=sink)
        assert out is None
        (header,) = sink.headers
        assert header.process_name == "sink_sample"
        assert header.length == 8
        assert header.signals == ("tick", "count")
        assert header.types["count"] is INTEGER
        assert sink.closed == 1
        assert len(sink.instants) == 8

    def test_statuses_match_values(self, model, scenario):
        sink = RecordingSink()
        simulate(model, scenario, record=["tick", "count"], sinks=[sink])
        for _, statuses, values in sink.instants:
            assert statuses == tuple(value is not ABSENT for value in values)

    def test_as_sink_list_normalises(self):
        sink = RecordingSink()
        assert as_sink_list(None) == []
        assert as_sink_list(sink) == [sink]
        assert as_sink_list([sink, sink]) == [sink, sink]

    @pytest.mark.parametrize("backend", [ReferenceBackend, CompiledBackend])
    def test_both_backends_stream(self, model, scenario, backend):
        sink = RecordingSink()
        runner = backend(model)
        assert runner.run(scenario, sinks=[sink]) is None
        assert sink.closed == 1
        assert len(sink.instants) == scenario.length

    @pytest.mark.parametrize("backend", [ReferenceBackend, CompiledBackend])
    def test_empty_sink_list_streams_to_nothing(self, model, scenario, backend):
        """``sinks=[]`` selects streaming (nothing retained, ``None``
        returned) — it must not silently materialise and discard a trace."""
        runner = backend(model)
        assert runner.run(scenario, sinks=[]) is None

    def test_failing_on_header_still_closes_earlier_sinks(self, model, scenario, tmp_path):
        from repro.sig.vcd import StreamingVcdSink

        class ExplodingSink(TraceSink):
            def on_header(self, header):
                raise RuntimeError("boom")

            def on_instant(self, instant, statuses, values):
                pass

        path = tmp_path / "partial.vcd"
        vcd_sink = StreamingVcdSink(str(path))
        untouched = MaterializeSink()  # its on_header never runs
        with pytest.raises(RuntimeError, match="boom"):
            simulate(model, scenario, sinks=[vcd_sink, ExplodingSink(), untouched])
        # The VCD sink's handle was closed (file readable and terminated)
        # and the never-started sink tolerated the close.
        assert path.read_text().rstrip().endswith("#0")
        assert untouched.trace is None

    def test_failing_on_close_still_closes_remaining_sinks(self, model, scenario, tmp_path):
        from repro.sig.vcd import StreamingVcdSink

        class FailingClose(TraceSink):
            def on_instant(self, instant, statuses, values):
                pass

            def on_close(self):
                raise OSError("disk full")

        path = tmp_path / "after-failure.vcd"
        vcd_sink = StreamingVcdSink(str(path))
        with pytest.raises(OSError, match="disk full"):
            simulate(model, scenario, sinks=[FailingClose(), vcd_sink])
        # The later sink was still closed: the file is terminated properly.
        assert path.read_text().rstrip().endswith(f"#{scenario.length}")

    def test_sinks_closed_when_the_run_aborts(self):
        model = clock_conflict_model()
        scenario = Scenario(4).set_periodic("x", 1).set_periodic("y", 2, phase=1)
        for factory in (ReferenceBackend, CompiledBackend):
            sink = RecordingSink()
            with pytest.raises(ClockViolation):
                factory(model, strict=True).run(scenario, sinks=[sink])
            assert sink.closed == 1
            assert len(sink.instants) < scenario.length


class TestMaterializeSink:
    @pytest.mark.parametrize("backend", [ReferenceBackend, CompiledBackend])
    def test_bit_identical_to_legacy_trace(self, model, scenario, backend):
        runner = backend(model)
        legacy = runner.run(scenario)
        sink = MaterializeSink()
        assert runner.run(scenario, sinks=[sink]) is None
        assert sink.trace is not None
        assert sink.trace.process_name == legacy.process_name
        assert sink.trace.length == legacy.length
        assert sink.trace.flows == legacy.flows
        assert sink.trace.warnings == legacy.warnings

    def test_result_returns_the_trace(self, model, scenario):
        sink = MaterializeSink()
        simulate(model, scenario, sinks=sink)
        assert sink.result() is sink.trace

    def test_duplicate_record_names_share_one_flow(self, model, scenario):
        """A name recorded twice double-appends into one shared flow, exactly
        like the legacy recording paths."""
        legacy = Simulator(model).run(scenario, record=["count", "count"])
        sink = MaterializeSink()
        simulate(model, scenario, record=["count", "count"], sinks=sink)
        assert sink.trace.flows == legacy.flows
        assert len(sink.trace.flows["count"]) == 2 * scenario.length

    def test_aborted_run_yields_a_consistent_partial_trace(self):
        """On abort, the trace covers exactly the completed instants — its
        declared length never exceeds its flows (same for statistics)."""
        model = clock_conflict_model()
        # Instant 0 succeeds (both present), instant 1 violates the clocks.
        scenario = Scenario(6).set_periodic("x", 1, value=3).set_periodic("y", 2, value=4)
        materialize, stats = MaterializeSink(), StatisticsSink()
        with pytest.raises(ClockViolation):
            simulate(model, scenario, sinks=[materialize, stats])
        trace = materialize.trace
        assert trace.length == 1
        assert all(len(flow) == trace.length for flow in trace.flows.values())
        assert trace.value_at("bad", 0) == 7
        statistics = stats.result()
        assert statistics.length == 1
        entry = statistics.per_signal["bad"]
        assert entry.present + entry.absent == statistics.length

    def test_zero_instant_scenario(self, model):
        sink = MaterializeSink()
        simulate(model, Scenario(0), sinks=sink)
        assert sink.trace.length == 0
        assert set(sink.trace.flows) == set(model.signals)
        assert all(len(flow) == 0 for flow in sink.trace.flows.values())


class TestStatisticsSink:
    def test_counts_match_the_trace(self, model, scenario):
        legacy = simulate(model, scenario)
        sink = StatisticsSink()
        simulate(model, scenario, sinks=sink)
        stats = sink.result()
        assert stats.length == legacy.length
        assert stats.signals() == legacy.signals()
        for name in legacy.signals():
            assert stats.count_present(name) == legacy.count_present(name)
            entry = stats.per_signal[name]
            assert entry.absent == legacy.length - entry.present

    def test_min_max_and_activity_window(self, model, scenario):
        sink = StatisticsSink()
        simulate(model, scenario, sinks=sink)
        count = sink.result().per_signal["count"]
        assert (count.minimum, count.maximum) == (1, 4)
        assert (count.first_instant, count.last_instant) == (0, 6)

    def test_unorderable_values_keep_counts_drop_range(self):
        entry = SignalStatistics("s")
        entry.observe(0, 1)
        entry.observe(1, "a")  # int < str raises TypeError
        assert entry.present == 2
        # The whole range is dropped, not left at the stale pre-conflict
        # value: a partial min/max would depend on observation order and
        # break merge() associativity (see TestStatisticsMerge).
        assert (entry.minimum, entry.maximum) == (None, None)
        assert entry.range_dropped

    def test_summary_limit(self, model, scenario):
        sink = StatisticsSink()
        simulate(model, scenario, sinks=sink)
        text = sink.result().summary(limit=1)
        assert "more signal(s)" in text
        assert "8 instants" in text

    def test_statistics_are_picklable(self, model, scenario):
        import pickle

        sink = StatisticsSink()
        simulate(model, scenario, sinks=sink)
        clone = pickle.loads(pickle.dumps(sink.result()))
        assert clone.count_present("count") == sink.result().count_present("count")


class TestReplay:
    def test_replay_equals_live_statistics(self, model, scenario):
        trace = simulate(model, scenario)
        live = StatisticsSink()
        simulate(model, scenario, sinks=live)
        replayed = StatisticsSink()
        replay_trace(trace, replayed)
        assert replayed.result() == live.result()

    def test_replay_unknown_name_is_always_absent(self, model, scenario):
        trace = simulate(model, scenario)
        sink = StatisticsSink()
        replay_trace(trace, sink, signals=["count", "ghost"])
        stats = sink.result()
        assert stats.per_signal["ghost"].present == 0
        assert stats.per_signal["ghost"].absent == trace.length


class _ResultLessSink(TraceSink):
    """A sink with no product (``result()`` stays ``None``)."""

    def on_instant(self, instant, statuses, values):
        pass


def _result_less_factory(index):
    return _ResultLessSink()


def _stats_factory(index):
    return StatisticsSink()


def _materialize_factory(index):
    return MaterializeSink()


def _stats_pair_factory(index):
    return [StatisticsSink(), MaterializeSink()]


class TestBatchStreaming:
    @pytest.fixture()
    def scenarios(self):
        return [Scenario(12).set_periodic("tick", period) for period in (1, 2, 3, 4)]

    def test_sink_factory_disables_materialisation(self, model, scenarios):
        result = simulate_batch(model, scenarios, sink_factory=_stats_factory)
        assert result.streamed
        assert result.traces == [None] * len(scenarios)
        assert len(result.sink_results) == len(scenarios)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_summary_matches_flow_summary(self, model, scenarios, workers):
        legacy = simulate_batch(model, scenarios)
        streamed = simulate_batch(
            model, scenarios, sink_factory=_stats_factory, workers=workers
        )
        assert batch_statistics_summary(streamed.sink_results, "count") == batch_flow_summary(
            legacy, "count"
        )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_materialize_factory_parity_across_workers(self, model, scenarios, workers):
        legacy = simulate_batch(model, scenarios)
        streamed = simulate_batch(
            model, scenarios, sink_factory=_materialize_factory, workers=workers
        )
        assert len(streamed.sink_results) == len(legacy.traces)
        for produced, reference in zip(streamed.sink_results, legacy.traces):
            assert produced.flows == reference.flows
            assert produced.warnings == reference.warnings

    def test_summary_does_not_count_result_less_sinks_as_failures(self, model, scenarios):
        result = simulate_batch(model, scenarios, sink_factory=_result_less_factory)
        assert result.ok
        assert f"{len(scenarios)} succeeded, 0 failed" in result.summary()
        assert "streamed" in result.summary()

    def test_factory_returning_several_sinks(self, model, scenarios):
        result = simulate_batch(model, scenarios, sink_factory=_stats_pair_factory)
        for payload in result.sink_results:
            stats, trace = payload
            assert stats.count_present("count") == trace.count_present("count")

    def test_failed_scenarios_contribute_none(self):
        model = clock_conflict_model()
        bad = [Scenario(4).set_periodic("x", 1).set_periodic("y", 2, phase=1)]
        good = [Scenario(4).set_periodic("x", 1).set_periodic("y", 1)]
        result = simulate_batch(
            model, bad + good, strict=True, collect_errors=True, sink_factory=_stats_factory
        )
        assert result.sink_results[0] is None
        assert result.sink_results[1] is not None
        assert [index for index, _ in result.errors] == [0]
        summary = batch_statistics_summary(result.sink_results, "bad")
        assert summary["per_scenario"] == [None, 4]


class TestToolchainStreaming:
    @pytest.fixture(scope="class")
    def streamed_toolchain(self):
        from repro.casestudies import PRODUCER_CONSUMER_AADL
        from repro.core import ToolchainOptions, run_toolchain

        stats = StatisticsSink()
        options = ToolchainOptions(
            root_implementation="ProducerConsumerSystem.others",
            default_package="ProducerConsumer",
            simulate_hyperperiods=1,
            cost_model=None,
            sinks=[stats],
            materialize_trace=False,
        )
        return run_toolchain(PRODUCER_CONSUMER_AADL, options), stats

    def test_streaming_only_run_has_no_trace(self, streamed_toolchain):
        result, stats = streamed_toolchain
        assert result.trace is None
        assert result.profile is None
        assert result.scenario_length > 0
        assert result.sink_results == [stats.result()]
        assert stats.result().length == result.scenario_length

    def test_summary_reports_the_streamed_run(self, streamed_toolchain):
        result, _ = streamed_toolchain
        assert "streamed to 1 sink(s)" in result.summary()

    def test_no_trace_without_sinks_streams_to_nothing(self):
        """materialize_trace=False with no sinks must not materialise a
        throwaway trace: the run streams to an empty sink list."""
        from repro.casestudies import PRODUCER_CONSUMER_AADL
        from repro.core import ToolchainOptions, run_toolchain

        options = ToolchainOptions(
            root_implementation="ProducerConsumerSystem.others",
            default_package="ProducerConsumer",
            simulate_hyperperiods=1,
            cost_model=None,
            materialize_trace=False,
        )
        result = run_toolchain(PRODUCER_CONSUMER_AADL, options)
        assert result.trace is None
        assert result.scenario_length > 0
        assert "streamed to 0 sink(s)" in result.summary()

    def test_sinks_alongside_materialised_trace(self, pc_toolchain):
        from repro.core import ToolchainOptions, run_toolchain
        from repro.casestudies import PRODUCER_CONSUMER_AADL

        stats = StatisticsSink()
        options = ToolchainOptions(
            root_implementation="ProducerConsumerSystem.others",
            default_package="ProducerConsumer",
            simulate_hyperperiods=2,
            stimuli_periods={"sysEnv_pProdStart_stimulus": 4, "sysEnv_pConsStart_stimulus": 6},
            sinks=[stats],
        )
        result = run_toolchain(PRODUCER_CONSUMER_AADL, options)
        assert result.trace is not None
        assert result.trace.flows == pc_toolchain.trace.flows
        for name in result.trace.signals():
            assert stats.result().count_present(name) == result.trace.count_present(name)


class TestWindowSink:
    """The ring-buffer window sink retains exactly the last N instants."""

    def test_window_shorter_than_run(self, model, scenario):
        from repro.sig.sinks import WindowSink

        full = MaterializeSink()
        window = WindowSink(3)
        CompiledBackend(model, strict=False).run(scenario, sinks=[full, window])
        trace = window.result()
        assert trace is not None
        assert trace.length == 3
        assert window.start_instant == scenario.length - 3
        # The window rows are the tail of the full trace.
        for name, flow in trace.flows.items():
            assert flow.values == full.trace.flows[name].values[-3:]

    def test_window_longer_than_run_keeps_everything(self, model, scenario):
        from repro.sig.sinks import WindowSink

        full = MaterializeSink()
        window = WindowSink(100)
        CompiledBackend(model, strict=False).run(scenario, sinks=[full, window])
        trace = window.result()
        assert trace.length == scenario.length
        assert window.start_instant == 0
        assert trace.flows == full.trace.flows

    def test_window_materializes_mid_run_and_on_abort(self):
        from repro.sig.sinks import WindowSink

        model = clock_conflict_model()
        scenario = Scenario(6)
        scenario.set_always("x", value=1)
        # y present everywhere except instant 3: the mixed-presence ``+``
        # raises there in strict mode.
        scenario.set_at("y", {0: 2, 1: 2, 2: 2, 4: 2, 5: 2})
        window = WindowSink(2)
        with pytest.raises(ClockViolation):
            CompiledBackend(model, strict=True).run(scenario, sinks=[window])
        # Instants 0..2 completed before the abort; the last two are kept.
        trace = window.result()
        assert trace.length == 2
        assert window.start_instant == 1

    def test_window_rejects_nonpositive_capacity(self):
        from repro.sig.sinks import WindowSink

        with pytest.raises(ValueError):
            WindowSink(0)

    def test_window_is_reusable_across_runs(self, model, scenario):
        from repro.sig.sinks import WindowSink

        window = WindowSink(4)
        runner = CompiledBackend(model, strict=False)
        runner.run(scenario, sinks=[window])
        first = window.result()
        runner.run(scenario, sinks=[window])
        assert window.result().flows == first.flows


class TestDeltaSink:
    """The change-log sink retains only instants where a watched signal
    changed presence or value — O(changes) memory for sparse monitoring."""

    def test_matches_stutter_edges_of_the_full_trace(self, model, scenario):
        from repro.sig.sinks import DeltaSink

        full = MaterializeSink()
        deltas = DeltaSink(["count"])
        CompiledBackend(model, strict=False).run(scenario, sinks=[full, deltas])
        log = deltas.result()
        assert log is not None
        assert log.watched == ("count",)
        flow = full.trace.flows["count"].values
        expected = []
        previous = ABSENT
        for instant, value in enumerate(flow):
            if (value is ABSENT) != (previous is ABSENT) or (
                value is not ABSENT and value != previous
            ):
                expected.append((instant, value))
                previous = value
        assert log.changes_of("count") == expected
        assert log.change_counts["count"] == len(expected)

    def test_watches_all_recorded_signals_by_default(self, model, scenario):
        from repro.sig.sinks import DeltaSink

        deltas = DeltaSink()
        CompiledBackend(model, strict=False).run(scenario, sinks=[deltas])
        log = deltas.result()
        assert set(log.watched) == {"tick", "count", "zcount"}
        # tick toggles present/absent at every instant of the period-2 flow.
        assert log.change_counts["tick"] == scenario.length

    def test_constant_signal_contributes_one_change(self):
        from repro.sig.sinks import DeltaSink

        model = counter_model()
        scenario = Scenario(10).set_always("tick")
        deltas = DeltaSink(["tick", "count"])
        CompiledBackend(model, strict=False).run(scenario, sinks=[deltas])
        log = deltas.result()
        # tick: one change at instant 0 (absent -> True), then constant.
        assert log.changes_of("tick") == [(0, True)]
        # count changes at every instant (1, 2, 3, ...).
        assert log.change_counts["count"] == 10
        assert len(log) == 10
        assert "10 change instant(s)" in log.summary()

    def test_unknown_watch_names_are_ignored(self, model, scenario):
        from repro.sig.sinks import DeltaSink

        deltas = DeltaSink(["count", "no_such_signal"])
        CompiledBackend(model, strict=False).run(scenario, sinks=[deltas])
        assert deltas.result().watched == ("count",)

    def test_result_is_picklable_for_batches(self, model, scenario):
        import pickle

        from repro.sig.sinks import DeltaSink

        deltas = DeltaSink(["count"])
        ReferenceBackend(model, strict=False).run(scenario, sinks=[deltas])
        clone = pickle.loads(pickle.dumps(deltas.result()))
        assert clone.changes_of("count") == deltas.result().changes_of("count")

    def test_reference_and_compiled_agree(self, model, scenario):
        from repro.sig.sinks import DeltaSink

        logs = {}
        for backend in (ReferenceBackend, CompiledBackend):
            sink = DeltaSink()
            backend(model, strict=False).run(scenario, sinks=[sink])
            logs[backend.name] = sink.result()
        assert logs["reference"].entries == logs["compiled"].entries
        assert logs["reference"].change_counts == logs["compiled"].change_counts

    def test_aborted_run_reports_completed_instants(self):
        from repro.sig.sinks import DeltaSink

        model = clock_conflict_model()
        scenario = Scenario(6)
        scenario.set_always("x", value=1)
        scenario.set_at("y", {0: 2, 1: 2, 2: 2, 4: 2, 5: 2})
        deltas = DeltaSink(["bad"])
        with pytest.raises(ClockViolation):
            CompiledBackend(model, strict=True).run(scenario, sinks=[deltas])
        log = deltas.result()
        assert log.length == 3  # instants 0..2 completed before the abort
        assert log.changes_of("bad") == [(0, 3)]


class TestStatisticsMerge:
    """merge(): per-partition statistics compose into sweep-level aggregates."""

    def _observe_all(self, values, start=0):
        stats = SignalStatistics("s")
        for offset, value in enumerate(values):
            stats.observe(start + offset, value)
        return stats

    def test_counts_window_and_range_combine(self):
        left = self._observe_all([1, ABSENT, 5], start=0)
        right = self._observe_all([ABSENT, -2, 9], start=10)
        merged = left.merge(right)
        assert merged is left
        assert (merged.present, merged.absent) == (4, 2)
        assert (merged.minimum, merged.maximum) == (-2, 9)
        assert (merged.first_instant, merged.last_instant) == (0, 12)

    def test_merge_rejects_other_signal(self):
        with pytest.raises(ValueError):
            SignalStatistics("a").merge(SignalStatistics("b"))

    def test_unorderable_values_drop_the_range_in_observe(self):
        stats = self._observe_all([3, "text"])
        assert stats.range_dropped
        assert stats.minimum is None and stats.maximum is None
        # The dropped state is absorbing: later orderable values cannot
        # resurrect a range that no longer covers every observation.
        stats.observe(2, 7)
        assert stats.minimum is None and stats.maximum is None
        assert stats.present == 3

    def test_dropped_range_is_absorbing_in_merge(self):
        dropped = self._observe_all([3, "text"])
        clean = self._observe_all([1, 2])
        merged = clean.merge(dropped)
        assert merged.range_dropped
        assert merged.minimum is None and merged.maximum is None

    def test_cross_partition_unorderable_ranges_drop_on_merge(self):
        numbers = self._observe_all([1, 2])
        strings = self._observe_all(["a", "b"])
        merged = numbers.merge(strings)
        assert merged.range_dropped
        assert merged.minimum is None and merged.maximum is None

    def test_merge_is_associative_with_unorderable_values(self):
        # The seed bug: observe() used to keep a stale min/max after a
        # TypeError, so (A+B)+C and A+(B+C) could disagree on the range.
        def parts():
            return (
                self._observe_all([5, 7]),
                self._observe_all(["x"]),
                self._observe_all([1]),
            )

        a1, b1, c1 = parts()
        left = a1.merge(b1).merge(c1)
        a2, b2, c2 = parts()
        right = a2.merge(b2.merge(c2))
        assert left == right
        # And both equal observing everything in one partition, any order.
        single = self._observe_all([5, 7, "x", 1])
        assert (left.minimum, left.maximum, left.range_dropped) == (
            single.minimum,
            single.maximum,
            single.range_dropped,
        )

    def test_split_observation_equals_single_partition(self):
        values = [4, ABSENT, 9, 0, ABSENT, 2, 8]
        whole = self._observe_all(values)
        for split in range(len(values) + 1):
            left = self._observe_all(values[:split])
            right = self._observe_all(values[split:], start=split)
            assert left.merge(right) == whole

    def test_trace_statistics_merge_unions_signals(self):
        from repro.sig.sinks import TraceStatistics

        left = TraceStatistics("p", 10, {"a": self._observe_all([1, 2])})
        left.per_signal["a"].name = "a"
        right = TraceStatistics(
            "p", 5, {"b": SignalStatistics("b", present=3, absent=2)}
        )
        merged = left.merge(right)
        assert merged is left
        assert merged.length == 15
        assert set(merged.per_signal) == {"a", "b"}
        # Copied entries are independent of the source aggregate.
        right.per_signal["b"].present = 99
        assert merged.per_signal["b"].present == 3

    def test_trace_statistics_merge_rejects_other_process(self):
        from repro.sig.sinks import TraceStatistics

        with pytest.raises(ValueError):
            TraceStatistics("p", 1).merge(TraceStatistics("q", 1))

    def test_merged_batch_equals_one_long_run(self, model):
        # Two half-horizon runs merged == statistics of the full horizon
        # (modulo the restart of the state, so drive a stateless signal).
        scenario = Scenario(12).set_periodic("tick", 3)
        runs = []
        for _ in range(2):
            sink = StatisticsSink()
            simulate(model, scenario, sinks=[sink])
            runs.append(sink.result())
        merged = runs[0].merge(runs[1])
        assert merged.length == 24
        assert merged.count_present("tick") == 8
        assert merged.per_signal["count"].present == 8
