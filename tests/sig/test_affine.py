"""Tests of the affine clock calculus (Section IV-D of the paper)."""

import pytest

from repro.sig.affine import (
    AffineClock,
    AffineRelation,
    first_conflict,
    gcd,
    hyperperiod_of,
    lcm,
    lcm_many,
    mutually_disjoint,
    relation_between,
    solve_congruences,
)


class TestArithmetic:
    def test_gcd_lcm(self):
        assert gcd(12, 8) == 4
        assert lcm(4, 6) == 12
        assert lcm(0, 5) == 0
        assert lcm_many([4, 6, 8]) == 24
        assert lcm_many([]) == 1

    def test_case_study_hyperperiod(self):
        # Thread periods of the paper's case study: 4, 6, 8, 8 ms -> 24 ms.
        assert lcm_many([4, 6, 8, 8]) == 24

    def test_solve_congruences_compatible(self):
        solution = solve_congruences(1, 4, 3, 6)
        assert solution is not None
        r, m = solution
        assert m == 12
        assert r % 4 == 1 and r % 6 == 3

    def test_solve_congruences_incompatible(self):
        assert solve_congruences(0, 4, 1, 2) is None


class TestAffineClock:
    def test_instants(self):
        clock = AffineClock("tick", period=4, phase=1)
        assert clock.instants(14) == [1, 5, 9, 13]

    def test_contains_and_index(self):
        clock = AffineClock("tick", period=3, phase=2)
        assert clock.contains(2) and clock.contains(8)
        assert not clock.contains(3)
        assert clock.tick_index(8) == 2
        assert clock.tick_index(3) is None
        assert clock.nth_tick(3) == 11

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AffineClock("tick", period=0)
        with pytest.raises(ValueError):
            AffineClock("tick", period=2, phase=-1)
        with pytest.raises(ValueError):
            AffineClock("tick", period=2).nth_tick(-1)

    def test_equality_and_subclock(self):
        a = AffineClock("tick", 4, 0)
        b = AffineClock("tick", 8, 4)
        assert b.is_subclock_of(a)
        assert not a.is_subclock_of(b)
        assert a.equals(AffineClock("tick", 4, 0))

    def test_different_references_raise(self):
        with pytest.raises(ValueError):
            AffineClock("t1", 2).equals(AffineClock("t2", 2))

    def test_intersection_harmonic(self):
        a = AffineClock("tick", 4, 0)
        b = AffineClock("tick", 6, 0)
        inter = a.intersection(b)
        assert inter is not None
        assert inter.period == 12 and inter.phase == 0

    def test_intersection_disjoint(self):
        a = AffineClock("tick", 4, 0)
        b = AffineClock("tick", 4, 1)
        assert a.intersection(b) is None
        assert a.disjoint_with(b)

    def test_intersection_with_offset(self):
        a = AffineClock("tick", 4, 1)
        b = AffineClock("tick", 6, 3)
        inter = a.intersection(b)
        assert inter is not None
        assert inter.contains(9)
        assert (inter.phase - 1) % 4 == 0 and (inter.phase - 3) % 6 == 0

    def test_union_hyperperiod(self):
        assert AffineClock("tick", 4).union_hyperperiod(AffineClock("tick", 6)) == 12

    def test_relative_relation_case_study(self):
        producer = AffineClock("tick", 4, 0)
        consumer = AffineClock("tick", 6, 0)
        assert producer.relative_relation(consumer) == (2, 0, 3)

    def test_synchronisable_iff_same_period(self):
        assert AffineClock("tick", 4, 0).synchronisable_with(AffineClock("tick", 4, 2))
        assert not AffineClock("tick", 4, 0).synchronisable_with(AffineClock("tick", 8, 0))

    def test_compose(self):
        outer = AffineClock("inner", period=2, phase=1)
        inner = AffineClock("tick", period=3, phase=1)
        composed = outer.compose(inner)
        assert composed.reference == "tick"
        assert composed.period == 6
        # phase = inner.phase + outer.phase * inner.period = 1 + 1*3 = 4
        assert composed.phase == 4
        # The composed ticks must be a subset of the inner ticks.
        assert all(inner.contains(t) for t in composed.instants(30))


class TestRelations:
    def test_relation_inverse(self):
        relation = AffineRelation("a", "b", n=2, phase=1, d=3)
        inverse = relation.inverse()
        assert inverse.source == "b" and inverse.target == "a"
        assert inverse.n == 3 and inverse.d == 2 and inverse.phase == -1

    def test_relation_identity(self):
        assert AffineRelation("a", "b", 1, 0, 1).is_identity()
        assert not AffineRelation("a", "b", 2, 0, 1).is_identity()

    def test_relation_composition(self):
        ab = AffineRelation("a", "b", n=1, phase=0, d=2)
        bc = AffineRelation("b", "c", n=1, phase=0, d=3)
        ac = ab.compose(bc)
        assert ac is not None
        assert (ac.n, ac.d) == (1, 6)

    def test_relation_composition_mismatch(self):
        ab = AffineRelation("a", "b", 1, 0, 2)
        cd = AffineRelation("c", "d", 1, 0, 3)
        with pytest.raises(ValueError):
            ab.compose(cd)

    def test_relation_between(self):
        rel = relation_between(AffineClock("tick", 4), AffineClock("tick", 6))
        assert (rel.n, rel.d) == (2, 3)

    def test_invalid_relation(self):
        with pytest.raises(ValueError):
            AffineRelation("a", "b", 0, 0, 1)


class TestCollections:
    def test_mutually_disjoint(self):
        clocks = [AffineClock("tick", 4, 0), AffineClock("tick", 4, 1), AffineClock("tick", 4, 2)]
        assert mutually_disjoint(clocks)
        assert not mutually_disjoint(clocks + [AffineClock("tick", 8, 0)])

    def test_first_conflict_reports_pair(self):
        named = [("a", AffineClock("tick", 4, 0)), ("b", AffineClock("tick", 6, 0))]
        conflict = first_conflict(named)
        assert conflict is not None
        assert conflict[0] == "a" and conflict[1] == "b"

    def test_first_conflict_none(self):
        named = [("a", AffineClock("tick", 2, 0)), ("b", AffineClock("tick", 2, 1))]
        assert first_conflict(named) is None

    def test_hyperperiod_of(self):
        assert hyperperiod_of([AffineClock("tick", 4), AffineClock("tick", 6)]) == 12
        assert hyperperiod_of([]) == 1
