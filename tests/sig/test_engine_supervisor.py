"""Fault-tolerant supervised batch execution.

The supervisor's contract: scenarios that crash, hang, or blow a budget
surface as structured ``ScenarioFault`` entries — never as a hang or a
poisoned batch — while every surviving scenario's trace stays bit-identical
to a serial run.  These tests drive it with *real* misbehaving user
operations (``os._exit``, an infinite loop) and with the deterministic
fault-injection harness, on both the pooled and the in-process degraded
paths.
"""

import multiprocessing
import os
import sys
import time

import pytest

from repro.sig import builder as b
from repro.sig.engine import (
    FaultPlan,
    FaultSpec,
    ScenarioBudget,
    create_backend,
    default_worker_count,
    simulate_batch,
)
from repro.sig.engine.faults import CRASH_EXIT_CODE, fire_fault
from repro.sig.engine.parallel import _shutdown_pool
from repro.sig.engine.supervisor import (
    BudgetExceeded,
    ExecutionGuard,
    ScenarioTimeout,
    current_guard,
    guarded,
    run_batch_supervised,
)
from repro.sig.expressions import register_stepwise_operation
from repro.sig.process import ProcessModel
from repro.sig.scenario import Scenario
from repro.sig.simulator import SimulationError
from repro.sig.sinks import StatisticsSink
from repro.sig.values import INTEGER

#: Input value at which the poisoned user operations misbehave.
POISON = 1000

fork_only = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="real-crash tests rely on fork-inherited user operations",
)


def _exit_on_poison(value):
    if value >= POISON:
        os._exit(1)  # a segfaulting/OOM-killed user op, as the parent sees it
    return value + 1


def _spin_on_poison(value):
    if value >= POISON:
        while True:  # an infinite loop in a user operation
            pass
    return value + 1


register_stepwise_operation("sup_exit_on_poison", _exit_on_poison)
register_stepwise_operation("sup_spin_on_poison", _spin_on_poison)
register_stepwise_operation("sup_increment", lambda value: value + 1)


def _make_model(op="sup_increment"):
    model = ProcessModel(f"supervised_{op}")
    model.input("x", INTEGER)
    model.output("y", INTEGER)
    model.define("y", b.func(op, b.ref("x")))
    return model


def _make_scenarios(count, length=24, poison=()):
    scenarios = []
    for index in range(count):
        scenario = Scenario(length)
        scenario.set_always("x", POISON if index in poison else index)
        scenarios.append(scenario)
    return scenarios


def _flows(trace):
    return {name: flow.values for name, flow in trace.flows.items()}


def _stats_factory(index):
    return StatisticsSink()


class TestRealWorkerDeath:
    @fork_only
    def test_os_exit_in_user_op_becomes_crash_fault(self):
        model = _make_model("sup_exit_on_poison")
        scenarios = _make_scenarios(8, poison={3})
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=2,
            timeout=30.0, retries=1, backoff=0.001, collect_errors=True,
        )
        assert [f.scenario for f in batch.faults] == [3]
        fault = batch.faults[0]
        assert fault.kind == "crash"
        assert fault.attempts == 2  # first try + one retry, both fatal
        assert fault.worker is not None
        assert "exit code 1" in fault.message
        assert batch.traces[3] is None
        assert not batch.errors

        survivors = [i for i in range(8) if i != 3]
        serial = simulate_batch(
            model, [scenarios[i] for i in survivors], backend="compiled", workers=1,
        )
        for slot, index in enumerate(survivors):
            assert _flows(batch.traces[index]) == _flows(serial.traces[slot])

    @fork_only
    def test_infinite_loop_in_user_op_becomes_timeout_fault_not_a_hang(self):
        model = _make_model("sup_spin_on_poison")
        scenarios = _make_scenarios(6, poison={1})
        started = time.monotonic()
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=2,
            timeout=1.0, retries=0, collect_errors=True,
        )
        elapsed = time.monotonic() - started
        assert elapsed < 30.0  # bounded, not a hang
        assert [f.scenario for f in batch.faults] == [1]
        assert batch.faults[0].kind == "timeout"
        survivors = [i for i in range(6) if i != 1]
        serial = simulate_batch(
            model, [scenarios[i] for i in survivors], backend="compiled", workers=1,
        )
        for slot, index in enumerate(survivors):
            assert _flows(batch.traces[index]) == _flows(serial.traces[slot])

    @fork_only
    def test_injected_crash_exit_code_is_reported(self):
        model = _make_model()
        scenarios = _make_scenarios(4)
        plan = FaultPlan((FaultSpec("crash", 2, attempts=None),))
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=2,
            timeout=30.0, retries=1, backoff=0.001, fault_plan=plan,
        )
        assert [f.scenario for f in batch.faults] == [2]
        assert batch.faults[0].kind == "crash"
        assert str(CRASH_EXIT_CODE) in batch.faults[0].message


class TestRetriesAndCircuitBreaker:
    def test_transient_faults_recover_bit_identically(self):
        model = _make_model()
        scenarios = _make_scenarios(6)
        plan = FaultPlan(
            (
                FaultSpec("exception", 1, attempts=(0,)),
                FaultSpec("crash", 4, attempts=(0, 1)),
            )
        )
        serial = simulate_batch(model, scenarios, backend="compiled", workers=1)
        for workers in (1, 2):
            batch = simulate_batch(
                model, scenarios, backend="compiled", workers=workers,
                timeout=30.0, retries=2, backoff=0.001, fault_plan=plan,
            )
            assert batch.ok, batch.summary()
            assert not batch.faults
            for index in range(6):
                assert _flows(batch.traces[index]) == _flows(serial.traces[index])

    def test_exhausted_retries_fault_with_attempt_count(self):
        model = _make_model()
        scenarios = _make_scenarios(3)
        plan = FaultPlan((FaultSpec("exception", 0, attempts=None),))
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=1,
            retries=2, backoff=0.001, fault_plan=plan,
        )
        assert [f.scenario for f in batch.faults] == [0]
        fault = batch.faults[0]
        assert fault.kind == "error"
        assert fault.attempts == 3
        assert fault.traceback is not None and "FaultInjected" in fault.traceback

    def test_circuit_breaker_abandons_undecided_scenarios(self):
        model = _make_model()
        scenarios = _make_scenarios(6)
        plan = FaultPlan(
            tuple(FaultSpec("exception", i, attempts=None) for i in range(6))
        )
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=1,
            retries=3, backoff=0.001, max_failures=2, fault_plan=plan,
        )
        assert len(batch.faults) == 6
        abandoned = [f for f in batch.faults if "circuit breaker" in f.message]
        assert abandoned  # at least the tail was abandoned fast
        assert all(f.kind == "error" for f in batch.faults)

    def test_retries_zero_faults_on_first_failure(self):
        model = _make_model()
        scenarios = _make_scenarios(2)
        plan = FaultPlan((FaultSpec("exception", 1, attempts=(0,)),))
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=1,
            retries=0, fault_plan=plan,
        )
        assert [f.scenario for f in batch.faults] == [1]
        assert batch.faults[0].attempts == 1


class TestBudgets:
    def test_instant_budget_faults_long_scenarios(self):
        model = _make_model()
        scenarios = _make_scenarios(4, length=32)
        for backend in ("compiled", "reference", "vectorized"):
            batch = simulate_batch(
                model, scenarios, backend=backend, workers=1,
                scenario_budget=16, retries=0,
            )
            assert len(batch.faults) == 4
            assert all(f.kind == "budget" for f in batch.faults)

    def test_budget_within_bounds_is_inert(self):
        model = _make_model()
        scenarios = _make_scenarios(4, length=16)
        serial = simulate_batch(model, scenarios, backend="compiled", workers=1)
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=1,
            scenario_budget=ScenarioBudget(max_instants=16), retries=0,
        )
        assert batch.ok
        for index in range(4):
            assert _flows(batch.traces[index]) == _flows(serial.traces[index])

    @fork_only
    def test_pooled_budget_faults(self):
        model = _make_model()
        scenarios = _make_scenarios(6, length=64)
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=2,
            scenario_budget=32, retries=0, timeout=30.0,
        )
        assert len(batch.faults) == 6
        assert all(f.kind == "budget" for f in batch.faults)


class TestSemantics:
    def test_simulation_errors_keep_their_channel(self):
        """Model errors stay in BatchResult.errors (never retried, never
        faults), exactly as on the unsupervised path."""
        model = ProcessModel("sync_pair")
        model.input("a", INTEGER)
        model.input("b", INTEGER)
        model.output("s", INTEGER)
        model.define("s", b.func("+", b.ref("a"), b.ref("b")))
        scenarios = []
        for index in range(6):
            scenario = Scenario(8)
            scenario.set_always("a", 1)
            if index in (1, 4):
                scenario.set_periodic("b", 2, value=2)
            else:
                scenario.set_always("b", 2)
            scenarios.append(scenario)

        plain = simulate_batch(
            model, scenarios, strict=True, collect_errors=True, workers=1
        )
        for workers in (1, 2):
            supervised = simulate_batch(
                model, scenarios, strict=True, collect_errors=True,
                workers=workers, timeout=30.0, retries=2,
            )
            assert [i for i, _ in supervised.errors] == [1, 4]
            assert not supervised.faults
            assert [
                (i, type(e).__name__, str(e)) for i, e in supervised.errors
            ] == [(i, type(e).__name__, str(e)) for i, e in plain.errors]

    def test_earliest_simulation_error_raises_without_collect(self):
        model = ProcessModel("sync_pair")
        model.input("a", INTEGER)
        model.input("b", INTEGER)
        model.output("s", INTEGER)
        model.define("s", b.func("+", b.ref("a"), b.ref("b")))
        scenarios = []
        for index in range(6):
            scenario = Scenario(8)
            scenario.set_always("a", 1)
            if index in (2, 3):
                scenario.set_periodic("b", 2, value=2)
            else:
                scenario.set_always("b", 2)
            scenarios.append(scenario)
        with pytest.raises(SimulationError) as plain:
            simulate_batch(model, scenarios, strict=True, workers=1)
        for workers in (1, 2):
            with pytest.raises(SimulationError) as supervised:
                simulate_batch(
                    model, scenarios, strict=True, workers=workers,
                    timeout=30.0, retries=1,
                )
            assert str(supervised.value) == str(plain.value)

    def test_streaming_batches_fault_the_sink_results(self):
        model = _make_model()
        scenarios = _make_scenarios(5)
        plan = FaultPlan((FaultSpec("exception", 2, attempts=None),))
        for workers in (1, 2):
            batch = simulate_batch(
                model, scenarios, backend="compiled", workers=workers,
                sink_factory=_stats_factory, fault_plan=plan,
                retries=1, backoff=0.001, timeout=30.0,
            )
            assert [f.scenario for f in batch.faults] == [2]
            assert batch.sink_results[2] is None
            for index in (0, 1, 3, 4):
                assert batch.sink_results[index] is not None
                assert batch.sink_results[index].length == 24

    def test_slowdowns_are_stragglers_not_faults(self):
        model = _make_model()
        scenarios = _make_scenarios(4)
        plan = FaultPlan(
            (FaultSpec("slowdown", 1, attempts=None, delay=0.01),)
        )
        serial = simulate_batch(model, scenarios, backend="compiled", workers=1)
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=1,
            fault_plan=plan, retries=0,
        )
        assert batch.ok
        assert _flows(batch.traces[1]) == _flows(serial.traces[1])

    def test_fault_free_supervision_is_bit_identical_to_plain_pool(self):
        model = _make_model()
        scenarios = _make_scenarios(10)
        plain = simulate_batch(model, scenarios, backend="compiled", workers=2)
        supervised = simulate_batch(
            model, scenarios, backend="compiled", workers=2,
            timeout=30.0, retries=2,
        )
        assert supervised.ok and not supervised.faults
        for index in range(10):
            assert _flows(supervised.traces[index]) == _flows(plain.traces[index])

    def test_summary_mentions_faults(self):
        model = _make_model()
        scenarios = _make_scenarios(3)
        plan = FaultPlan((FaultSpec("exception", 0, attempts=None),))
        batch = simulate_batch(
            model, scenarios, backend="compiled", workers=1,
            retries=0, fault_plan=plan,
        )
        text = batch.summary()
        assert "1 faulted" in text
        assert "error fault" in text
        assert not batch.ok

    def test_run_batch_supervised_direct_four_tuple(self):
        model = _make_model()
        runner = create_backend(model, backend="compiled", strict=False)
        scenarios = _make_scenarios(3)
        traces, errors, sink_results, faults = run_batch_supervised(
            runner, scenarios, workers=1, retries=0
        )
        assert len(traces) == 3 and not errors and not sink_results and not faults


class TestExecutionGuard:
    def test_guard_is_installed_only_inside_guarded(self):
        assert current_guard() is None
        with guarded(timeout=1.0) as guard:
            assert current_guard() is guard
            assert isinstance(guard, ExecutionGuard)
        assert current_guard() is None

    def test_guarded_without_knobs_installs_nothing(self):
        with guarded() as guard:
            assert guard is None
            assert current_guard() is None

    def test_instant_budget_is_exact(self):
        guard = ExecutionGuard(budget=ScenarioBudget(max_instants=10))
        for instant in range(10):
            guard.check(instant)
        with pytest.raises(BudgetExceeded):
            guard.check(10)

    def test_block_budget_rejects_crossing_blocks(self):
        guard = ExecutionGuard(budget=ScenarioBudget(max_instants=100))
        guard.check_block(0, 100)
        with pytest.raises(BudgetExceeded):
            guard.check_block(64, 64)

    def test_deadline_raises_timeout(self):
        guard = ExecutionGuard(timeout=0.0)
        time.sleep(0.01)
        with pytest.raises(ScenarioTimeout):
            guard.check_time()

    def test_in_process_hang_is_cancelled_by_the_deadline(self):
        spec = FaultSpec("hang", 0, attempts=None, delay=0.005)
        with guarded(timeout=0.05) as guard:
            with pytest.raises(ScenarioTimeout):
                fire_fault(spec, in_process=True, guard=guard)


class TestSatellites:
    def test_default_worker_count_respects_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
        assert default_worker_count() == 2

    def test_default_worker_count_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert default_worker_count() == (os.cpu_count() or 1)

    @fork_only
    def test_shutdown_pool_does_not_wedge_on_busy_workers(self):
        ctx = multiprocessing.get_context("fork")
        pool = ctx.Pool(processes=1)
        pool.apply_async(time.sleep, (60.0,))
        time.sleep(0.2)
        started = time.monotonic()
        _shutdown_pool(pool)
        assert time.monotonic() - started < 15.0
