"""Tests of the reference polychronous simulator."""

import pytest

from repro.sig import builder as b
from repro.sig.process import ProcessModel
from repro.sig.simulator import (
    ClockViolation,
    InstantaneousCycle,
    NonDeterministicDefinition,
    Scenario,
    Simulator,
    simulate,
)
from repro.sig.values import ABSENT, BOOLEAN, EVENT, INTEGER, is_absent


def scenario(length, **flows):
    sc = Scenario(length)
    for name, values in flows.items():
        sc.set_flow(name, values)
    return sc


class TestScenario:
    def test_set_periodic(self):
        sc = Scenario(10).set_periodic("x", 3, phase=1)
        assert [i for i in range(10) if not is_absent(sc.value("x", i))] == [1, 4, 7]

    def test_set_at(self):
        sc = Scenario(5).set_at("x", {0: 1, 4: 2})
        assert sc.value("x", 0) == 1
        assert sc.value("x", 4) == 2
        assert is_absent(sc.value("x", 2))

    def test_set_at_out_of_range_raises(self):
        with pytest.raises(ValueError, match=r"\[9\].*outside the scenario"):
            Scenario(5).set_at("x", {0: 1, 4: 2, 9: 3})
        with pytest.raises(ValueError, match="non-negative"):
            Scenario(None).set_at("x", {-1: 1})

    def test_set_at_unbounded_accepts_any_instant(self):
        sc = Scenario(None).set_at("x", {0: 1, 9: 3})
        assert sc.value("x", 9) == 3

    def test_set_always(self):
        sc = Scenario(3).set_always("x", 7)
        assert [sc.value("x", i) for i in range(3)] == [7, 7, 7]

    def test_set_flow_pads(self):
        sc = Scenario(4).set_flow("x", [1])
        assert is_absent(sc.value("x", 3))

    def test_set_flow_over_length_raises(self):
        with pytest.raises(ValueError, match="3 values.*2 instants"):
            Scenario(2).set_flow("x", [1, 2, 3])

    def test_invalid(self):
        with pytest.raises(ValueError):
            Scenario(-1)
        with pytest.raises(ValueError):
            Scenario(3).set_periodic("x", 0)


class TestStepwise:
    def test_addition_pointwise(self):
        model = ProcessModel("add")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.func("+", b.ref("a"), b.ref("c")))
        trace = simulate(model, scenario(3, a=[1, 2, 3], c=[10, 20, 30]))
        assert trace.present_values("y") == [11, 22, 33]

    def test_absent_when_inputs_absent(self):
        model = ProcessModel("add")
        model.input("a", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.func("+", b.ref("a"), 1))
        trace = simulate(model, scenario(3, a=[1, ABSENT, 3]))
        assert trace.clock_of("y") == [0, 2]

    def test_clock_violation_raised_in_strict_mode(self):
        model = ProcessModel("bad")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.func("+", b.ref("a"), b.ref("c")))
        with pytest.raises(ClockViolation):
            simulate(model, scenario(2, a=[1, 2], c=[1, ABSENT]))

    def test_clock_violation_warns_in_lenient_mode(self):
        model = ProcessModel("bad")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.func("+", b.ref("a"), b.ref("c")))
        trace = simulate(model, scenario(2, a=[1, 2], c=[1, ABSENT]), strict=False)
        assert trace.warnings


class TestDelayWhenDefault:
    def test_delay_shifts_values(self):
        model = ProcessModel("d")
        model.input("x", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.delay(b.ref("x"), init=0))
        trace = simulate(model, scenario(4, x=[1, 2, ABSENT, 3]))
        assert trace.present_values("y") == [0, 1, 2]
        assert trace.clock_of("y") == [0, 1, 3]

    def test_delay_depth_two(self):
        model = ProcessModel("d2")
        model.input("x", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.delay(b.ref("x"), init=0, depth=2))
        trace = simulate(model, scenario(4, x=[1, 2, 3, 4]))
        assert trace.present_values("y") == [0, 0, 1, 2]

    def test_chained_delays(self):
        model = ProcessModel("dd")
        model.input("x", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.delay(b.delay(b.ref("x"), init=0), init=-1))
        trace = simulate(model, scenario(4, x=[1, 2, 3, 4]))
        assert trace.present_values("y") == [-1, 0, 1, 2]

    def test_when_samples_on_true(self):
        model = ProcessModel("w")
        model.input("x", INTEGER)
        model.input("c", BOOLEAN)
        model.output("y", INTEGER)
        model.define("y", b.when(b.ref("x"), b.ref("c")))
        trace = simulate(model, scenario(4, x=[1, 2, 3, 4], c=[True, False, True, ABSENT]))
        assert trace.present_values("y") == [1, 3]
        assert trace.clock_of("y") == [0, 2]

    def test_default_prefers_left(self):
        model = ProcessModel("m")
        model.input("x", INTEGER)
        model.input("y", INTEGER)
        model.output("z", INTEGER)
        model.define("z", b.default(b.ref("x"), b.ref("y")))
        trace = simulate(model, scenario(3, x=[1, ABSENT, ABSENT], y=[10, 20, ABSENT]))
        assert trace.present_values("z") == [1, 20]
        assert trace.clock_of("z") == [0, 1]

    def test_cell_holds_last_value(self):
        model = ProcessModel("c")
        model.input("x", INTEGER)
        model.input("c", BOOLEAN)
        model.output("y", INTEGER)
        model.define("y", b.cell(b.ref("x"), b.ref("c"), init=-1))
        trace = simulate(model, scenario(5, x=[5, ABSENT, ABSENT, 7, ABSENT], c=[ABSENT, True, False, ABSENT, True]))
        # present when x present or c true: instants 0, 1, 3, 4
        assert trace.clock_of("y") == [0, 1, 3, 4]
        assert trace.present_values("y") == [5, 5, 7, 7]

    def test_cell_initial_value_before_first_write(self):
        model = ProcessModel("c")
        model.input("x", INTEGER)
        model.input("c", BOOLEAN)
        model.output("y", INTEGER)
        model.define("y", b.cell(b.ref("x"), b.ref("c"), init=42))
        trace = simulate(model, scenario(2, x=[ABSENT, ABSENT], c=[True, True]))
        assert trace.present_values("y") == [42, 42]


class TestClockOperators:
    def test_clock_of(self):
        model = ProcessModel("k")
        model.input("x", INTEGER)
        model.output("e", EVENT)
        model.define("e", b.clock("x"))
        trace = simulate(model, scenario(3, x=[1, ABSENT, 2]))
        assert trace.clock_of("e") == [0, 2]
        assert trace.present_values("e") == [True, True]

    def test_clock_union_intersection_difference(self):
        model = ProcessModel("k")
        model.input("a", EVENT)
        model.input("c", EVENT)
        model.output("u", EVENT)
        model.output("i", EVENT)
        model.output("d", EVENT)
        model.define("u", b.clock_union("a", "c"))
        model.define("i", b.clock_intersection("a", "c"))
        model.define("d", b.clock_difference("a", "c"))
        sc = Scenario(4)
        sc.set_at("a", {0: True, 1: True})
        sc.set_at("c", {1: True, 2: True})
        trace = simulate(model, sc)
        assert trace.clock_of("u") == [0, 1, 2]
        assert trace.clock_of("i") == [1]
        assert trace.clock_of("d") == [0]

    def test_when_clock_of_boolean(self):
        model = ProcessModel("k")
        model.input("c", BOOLEAN)
        model.output("e", EVENT)
        model.define("e", b.when_clock(b.ref("c")))
        trace = simulate(model, scenario(3, c=[True, False, True]))
        assert trace.clock_of("e") == [0, 2]


class TestStateAndConstraints:
    def test_counter_with_sync_constraint(self):
        model = ProcessModel("counter")
        model.input("tick", EVENT)
        model.output("count", INTEGER)
        model.local("zcount", INTEGER)
        model.define("zcount", b.delay(b.ref("count"), init=0))
        model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
        model.synchronise("count", "tick")
        sc = Scenario(6).set_periodic("tick", 2)
        trace = simulate(model, sc)
        assert trace.present_values("count") == [1, 2, 3]
        assert trace.clock_of("count") == [0, 2, 4]

    def test_counter_without_constraint_deadlocks(self):
        model = ProcessModel("counter")
        model.input("tick", EVENT)
        model.output("count", INTEGER)
        model.local("zcount", INTEGER)
        model.define("zcount", b.delay(b.ref("count"), init=0))
        model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
        sc = Scenario(2).set_always("tick")
        with pytest.raises(InstantaneousCycle):
            simulate(model, sc)

    def test_sync_constraint_conflict_detected(self):
        model = ProcessModel("conflict")
        model.input("a", EVENT)
        model.input("c", EVENT)
        model.local("x", INTEGER)
        model.define("x", b.when(b.const(1), b.clock("a")))
        model.synchronise("x", "c")
        sc = Scenario(1)
        sc.set_at("a", {0: True})  # c absent: x present but constrained to c
        with pytest.raises(ClockViolation):
            simulate(model, sc)

    def test_non_deterministic_partial_definitions(self):
        model = ProcessModel("nondet")
        model.input("a", EVENT)
        model.shared("v", INTEGER)
        model.output("o", INTEGER)
        model.define_partial("v", b.when(b.const(1), b.clock("a")))
        model.define_partial("v", b.when(b.const(2), b.clock("a")))
        model.define("o", b.ref("v"))
        sc = Scenario(1).set_at("a", {0: True})
        with pytest.raises(NonDeterministicDefinition):
            simulate(model, sc)

    def test_consistent_partial_definitions_merge(self):
        model = ProcessModel("det")
        model.input("a", EVENT)
        model.input("c", EVENT)
        model.shared("v", INTEGER)
        model.output("o", INTEGER)
        model.define_partial("v", b.when(b.const(1), b.clock("a")))
        model.define_partial("v", b.when(b.const(2), b.clock("c")))
        model.define("o", b.ref("v"))
        sc = Scenario(3)
        sc.set_at("a", {0: True})
        sc.set_at("c", {2: True})
        trace = simulate(model, sc)
        assert trace.present_values("o") == [1, 2]

    def test_undefined_local_is_always_absent(self):
        model = ProcessModel("u")
        model.input("x", INTEGER)
        model.local("ghost", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.default(b.ref("ghost"), b.ref("x")))
        trace = simulate(model, scenario(2, x=[1, 2]))
        assert trace.present_values("y") == [1, 2]

    def test_reset_clears_memory_between_runs(self):
        model = ProcessModel("counter")
        model.input("tick", EVENT)
        model.output("count", INTEGER)
        model.local("zcount", INTEGER)
        model.define("zcount", b.delay(b.ref("count"), init=0))
        model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
        model.synchronise("count", "tick")
        simulator = Simulator(model)
        sc = Scenario(3).set_always("tick")
        first = simulator.run(sc)
        second = simulator.run(sc)
        assert first.present_values("count") == second.present_values("count") == [1, 2, 3]


class TestTrace:
    def test_trace_accessors(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.func("+", b.ref("x"), 1))
        trace = simulate(model, scenario(2, x=[1, 2]))
        assert len(trace) == 2
        assert trace.value_at("y", 1) == 3
        assert trace.count_present("y") == 2
        assert "y" in trace.signals()
        assert trace.flow("y").name == "y"

    def test_record_subset(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.output("y", INTEGER)
        model.define("y", b.func("+", b.ref("x"), 1))
        trace = simulate(model, scenario(2, x=[1, 2]), record=["y"])
        assert trace.signals() == ["y"]
