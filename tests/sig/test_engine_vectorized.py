"""Unit tests of the vectorized block-execution backend.

Catalog-wide parity lives in ``tests/integration/test_vectorized_parity.py``;
this module exercises the machinery directly: stratum partitioning, block
boundaries, fallback on warnings, the numpy-absent degradation, pickling and
buffer reuse.
"""

import pickle
import warnings

import pytest

from repro.sig import builder as b
from repro.sig.engine import (
    BACKENDS,
    VectorizedBackend,
    backend_names,
    compile_vectorized,
    create_backend,
    numpy_available,
    simulate,
)
from repro.sig.engine import vectorized as vectorized_module
from repro.sig.engine.backends import CompiledBackend
from repro.sig.expressions import STEPWISE_OPERATIONS, register_stepwise_operation
from repro.sig.process import ProcessModel
from repro.sig.simulator import ClockViolation, Scenario
from repro.sig.values import ABSENT, BOOLEAN, REAL


def _numeric_model():
    """A small numeric pipeline: stateless chains plus a delayed accumulator
    and a post-stratum alarm reading it."""
    model = ProcessModel("vec_unit")
    model.input("u", REAL)
    model.input("v", REAL)
    model.output("y", REAL)
    model.define("y", b.ref("u") * 2.0 + b.default(b.ref("v"), 0.0))
    model.output("z", REAL)
    model.define("z", b.func("min", b.func("abs", b.ref("y")), 50.0))
    model.local("zacc", REAL)
    model.output("acc", REAL)
    model.define("zacc", b.delay(b.ref("acc"), init=0.0))
    model.define("acc", b.ref("zacc") + b.ref("u"))
    model.synchronise("acc", "u")
    model.synchronise("zacc", "u")
    model.output("alarm", BOOLEAN)
    model.define("alarm", b.ref("acc").gt(10.0))
    return model


def _scenario(length=30):
    scenario = Scenario(length)
    scenario.inputs["u"] = [float(i % 7) for i in range(length)]
    scenario.inputs["v"] = [
        float(i) if i % 3 else ABSENT for i in range(length)
    ]
    return scenario


def test_vectorized_backend_is_registered():
    assert "vectorized" in BACKENDS
    assert BACKENDS["vectorized"] is VectorizedBackend
    assert "vectorized" in backend_names()


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_partition_statistics():
    plan = compile_vectorized(_numeric_model(), block_size=8)
    stats = plan.statistics()
    # y and z are input-derived (pre-stratum); the acc/zacc delay pair is
    # promoted into a recurrence scan, which unblocks alarm as a further
    # kernel stage — nothing is left in the residual sweep.
    assert stats.pre_stratum == 3
    assert stats.recurrence == 2
    assert stats.post_stratum == 0
    assert stats.residual == 0
    assert stats.vectorized == 5
    assert stats.clusters == 0
    assert stats.lowered == 0
    assert stats.block_size == 8
    assert "pre-sweep" in stats.summary()
    assert "recurrence" in stats.summary()


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_partition_statistics_without_recurrence_scan():
    """With the scan stage off, the delay pair stays residual and the alarm
    moves to the post-stratum, as before the recurrence kernels existed."""
    plan = compile_vectorized(
        _numeric_model(), block_size=8, scan_recurrences=False, cluster_residue=False
    )
    stats = plan.statistics()
    assert stats.pre_stratum == 2
    assert stats.recurrence == 0
    assert stats.post_stratum == 1
    assert stats.residual == 2
    assert stats.vectorized == 3
    assert stats.clusters == 0


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
@pytest.mark.parametrize("block_size", [1, 3, 7, 32, 1024])
def test_block_boundaries_preserve_state(block_size):
    """Delay state must flow across block boundaries for any block size."""
    model = _numeric_model()
    scenario = _scenario(50)
    reference = CompiledBackend(model, strict=False).run(scenario)
    backend = VectorizedBackend(model, strict=False, block_size=block_size)
    trace = backend.run(scenario)
    assert trace.flows == reference.flows
    assert trace.warnings == reference.warnings
    assert backend.vector_plan.fallback_blocks == 0
    for signal in reference.flows:
        for expected, actual in zip(
            reference.flows[signal].values, trace.flows[signal].values
        ):
            assert type(expected) is type(actual)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_warning_blocks_fall_back_to_pure_sweep():
    """A clock violation inside a vectorised expression must replay the
    block purely, reproducing the compiled warnings verbatim."""
    model = ProcessModel("warny")
    model.input("a", REAL)
    model.input("c", REAL)
    model.output("y", REAL)
    model.define("y", b.ref("a") + b.ref("c"))
    scenario = Scenario(12)
    scenario.inputs["a"] = [1.0] * 12
    scenario.inputs["c"] = [2.0 if i % 2 else ABSENT for i in range(12)]

    reference = CompiledBackend(model, strict=False).run(scenario)
    assert reference.warnings  # the model does warn
    backend = VectorizedBackend(model, strict=False, block_size=4)
    trace = backend.run(scenario)
    assert trace.flows == reference.flows
    assert trace.warnings == reference.warnings
    assert backend.vector_plan.fallback_blocks == 3
    assert backend.vector_plan.vector_blocks == 0
    # The fallback reason is recorded, so a coding bug masquerading as a
    # slow path stays diagnosable.
    assert sum(backend.vector_plan.fallback_reasons.values()) == 3
    assert any(
        "_FallbackBlock" in reason for reason in backend.vector_plan.fallback_reasons
    )

    with pytest.raises(ClockViolation):
        VectorizedBackend(model, strict=True, block_size=4).run(scenario)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_user_registered_operator_stays_residual():
    """User stepwise functions may be stateful: never vectorised, and the
    traces still match the compiled backend."""
    register_stepwise_operation("vec_unit_scale", lambda x: x * 3.0)
    try:
        model = ProcessModel("userop")
        model.input("u", REAL)
        model.output("y", REAL)
        model.define("y", b.func("vec_unit_scale", b.ref("u")))
        scenario = Scenario(9)
        scenario.inputs["u"] = [float(i) for i in range(9)]
        backend = VectorizedBackend(model, strict=False, block_size=4)
        assert backend.vector_plan.statistics().vectorized == 0
        reference = CompiledBackend(model, strict=False).run(scenario)
        assert backend.run(scenario).flows == reference.flows
    finally:
        STEPWISE_OPERATIONS.pop("vec_unit_scale", None)


def test_numpy_absence_falls_back_to_compiled(monkeypatch):
    """Without numpy the backend warns and degrades to the compiled plan."""
    monkeypatch.setattr(vectorized_module, "_np", None)
    model = _numeric_model()
    scenario = _scenario(20)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = VectorizedBackend(model, strict=False)
    assert any(
        issubclass(w.category, RuntimeWarning)
        and "falls back" in str(w.message)
        for w in caught
    )
    assert backend.vector_plan is None
    reference = CompiledBackend(model, strict=False).run(scenario)
    trace = backend.run(scenario)
    assert trace.flows == reference.flows
    assert trace.warnings == reference.warnings


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_backend_pickles_and_recompiles():
    backend = VectorizedBackend(_numeric_model(), strict=False, block_size=11)
    clone = pickle.loads(pickle.dumps(backend))
    assert clone.block_size == 11
    scenario = _scenario(25)
    assert clone.run(scenario).flows == backend.run(scenario).flows


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_repeated_runs_share_no_state():
    """Back-to-back runs on one backend start from fresh state buffers."""
    model = _numeric_model()
    backend = VectorizedBackend(model, strict=False, block_size=8)
    for length in (5, 30, 8, 17):
        scenario = _scenario(length)
        first = backend.run(scenario)
        again = backend.run(scenario)
        assert first.flows == again.flows


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_nan_inputs_keep_object_identity():
    """NaN compares equal only by identity, so passed-through NaN values
    must reach the trace as the *same* object the scenario supplied — the
    typed float columns must refuse them (flow ``==`` against the compiled
    backend is the parity contract)."""
    model = ProcessModel("nanny")
    model.input("c")
    model.input("u", REAL)
    model.output("y", REAL)
    model.define("y", b.when(b.ref("u"), b.clock("c")))
    nan = float("nan")
    scenario = Scenario(6)
    scenario.set_always("c")
    scenario.inputs["u"] = [nan, 2.0, nan, 3.0, nan, 4.0]

    reference = CompiledBackend(model, strict=False).run(scenario)
    backend = VectorizedBackend(model, strict=False, block_size=4)
    trace = backend.run(scenario)
    assert backend.vector_plan.fallback_blocks == 0
    assert trace.flows == reference.flows
    assert trace.flows["y"].values[0] is nan
    # A NaN constant keeps handing out the one shared object, like the
    # compiled closure does.
    model2 = ProcessModel("nanny2")
    model2.input("u", REAL)
    model2.output("y", REAL)
    model2.define("y", b.default(b.ref("u"), nan).when(b.clock("u")))
    scenario2 = Scenario(4)
    scenario2.inputs["u"] = [1.0, 2.0, 3.0, 4.0]
    ref2 = CompiledBackend(model2, strict=False).run(scenario2)
    vec2 = VectorizedBackend(model2, strict=False, block_size=2).run(scenario2)
    assert vec2.flows == ref2.flows


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_recurrence_scan_matches_compiled_across_block_sizes():
    """The scanned accumulator pair must match the compiled per-instant
    fold bit for bit, including across block boundaries."""
    model = _numeric_model()
    scenario = _scenario(60)
    reference = CompiledBackend(model, strict=False).run(scenario)
    for block_size in (1, 4, 9, 64):
        backend = VectorizedBackend(model, strict=False, block_size=block_size)
        assert backend.vector_plan.statistics().recurrence == 2
        trace = backend.run(scenario)
        assert trace.flows == reference.flows
        assert backend.vector_plan.fallback_blocks == 0


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_recurrence_clock_mismatch_falls_back():
    """An accumulator clocked apart from its mask source must fall the
    block back to the pure sweep and still match the compiled trace."""
    # A hole in u would desynchronise nothing (u is the mask source), so
    # drive the operand-mask check through a second input read by acc.
    model2 = ProcessModel("mismatch2")
    model2.input("u", REAL)
    model2.input("w", REAL)
    model2.local("zacc", REAL)
    model2.output("acc", REAL)
    model2.define("zacc", b.delay(b.ref("acc"), init=0.0))
    model2.define("acc", b.ref("zacc") + b.ref("w"))
    model2.synchronise("acc", "u")
    model2.synchronise("zacc", "u")
    scenario = Scenario(12)
    scenario.inputs["u"] = [float(i) for i in range(12)]
    scenario.inputs["w"] = [float(i) if i % 3 else ABSENT for i in range(12)]

    reference = CompiledBackend(model2, strict=False).run(scenario)
    backend = VectorizedBackend(model2, strict=False, block_size=4)
    assert backend.vector_plan.statistics().recurrence == 2
    trace = backend.run(scenario)
    assert trace.flows == reference.flows
    assert trace.warnings == reference.warnings
    assert backend.vector_plan.fallback_blocks > 0
    assert any(
        "recurrence" in reason for reason in backend.vector_plan.fallback_reasons
    )


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_unsynchronised_recurrence_is_not_promoted():
    """A delay pair with no block-available clock source deadlocks in the
    reference; the scan must leave it alone so the error is preserved."""
    model = ProcessModel("deadlock")
    model.input("u", REAL)
    model.local("zacc", REAL)
    model.output("acc", REAL)
    model.define("zacc", b.delay(b.ref("acc"), init=0.0))
    model.define("acc", b.ref("zacc") + 1.0)
    backend = VectorizedBackend(model, strict=False, block_size=4)
    assert backend.vector_plan.statistics().recurrence == 0
    scenario = Scenario(3)
    scenario.inputs["u"] = [1.0, 2.0, 3.0]
    from repro.sig.simulator import InstantaneousCycle

    with pytest.raises(InstantaneousCycle):
        backend.run(scenario)
    with pytest.raises(InstantaneousCycle):
        CompiledBackend(model, strict=False).run(scenario)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_residue_clusters_preserve_instantaneous_cycle():
    """Independent residual pipelines split into clusters, and a blocked
    cluster still reports the reference's instantaneous-cycle error."""
    register_stepwise_operation("vec_unit_id_a", lambda x: x)
    try:
        model = ProcessModel("clusters")
        model.input("p", REAL)
        model.input("q", REAL)
        model.output("a", REAL)
        model.define("a", b.func("vec_unit_id_a", b.ref("p")))
        model.output("d", REAL)
        model.define("d", b.ref("q") + b.ref("dd"))
        model.output("dd", REAL)
        model.define("dd", b.ref("q") - b.ref("d"))  # instantaneous cycle d<->dd
        scenario = Scenario(20)
        scenario.inputs["p"] = [1.0] * 20
        scenario.inputs["q"] = [float(i) for i in range(20)]

        backend = VectorizedBackend(model, strict=False, block_size=8)
        stats = backend.vector_plan.statistics()
        assert stats.clusters == 2
        from repro.sig.simulator import InstantaneousCycle

        with pytest.raises(InstantaneousCycle) as vec_error:
            backend.run(scenario)
        with pytest.raises(InstantaneousCycle) as ref_error:
            CompiledBackend(model, strict=False).run(scenario)
        assert str(vec_error.value) == str(ref_error.value)
    finally:
        STEPWISE_OPERATIONS.pop("vec_unit_id_a", None)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_cluster_skip_copies_previous_instant():
    """A stateless residual cluster whose external inputs repeat is
    resolved once per block and copied afterwards — observably identical,
    just counted.  ``d``/``dd`` read each other (a *resolvable* merge
    cycle), which is what keeps them residual yet skippable."""
    register_stepwise_operation("vec_unit_noop", lambda x: x + 0.0)
    try:
        model = ProcessModel("skippy")
        model.input("p", REAL)
        model.input("q", REAL)
        model.output("d", REAL)
        model.define("d", b.default(b.ref("p"), b.ref("dd")))
        model.output("dd", REAL)
        model.define("dd", b.default(b.ref("d"), 5.0))
        model.output("a", REAL)
        model.define("a", b.func("vec_unit_noop", b.ref("q")))  # never skips
        scenario = Scenario(24)
        scenario.inputs["p"] = [5.0] * 24
        scenario.inputs["q"] = [float(i) for i in range(24)]

        reference = CompiledBackend(model, strict=False).run(scenario)
        backend = VectorizedBackend(model, strict=False, block_size=8)
        assert backend.vector_plan.statistics().clusters == 2
        trace = backend.run(scenario)
        assert trace.flows == reference.flows
        assert backend.vector_plan.fallback_blocks == 0
        # p is constant, so the {d, dd} cluster skips every instant after
        # the first of each of the three blocks; q changes every instant,
        # so the user-operator cluster never skips.
        assert backend.vector_plan.skipped_clusters == 24 - 3
    finally:
        STEPWISE_OPERATIONS.pop("vec_unit_noop", None)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_backend_options_thread_through_entry_points():
    model = _numeric_model()
    backend = create_backend(model, "vectorized", strict=False, block_size=5)
    assert backend.block_size == 5
    trace = simulate(
        model,
        _scenario(10),
        strict=False,
        backend="vectorized",
        backend_options={"block_size": 5},
    )
    assert trace.length == 10
    # Unknown options are ignored by the other backends.
    create_backend(model, "compiled", strict=False, block_size=5)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_scenario_driving_a_vectorised_target_wins():
    """A scenario flow on an undeclared name that happens to be a target
    disables its kernel, exactly like the compiled backend skips its work
    item."""
    model = ProcessModel("driven")
    model.input("u", REAL)
    model.define("helper", b.ref("u") * 2.0)  # undeclared target
    model.output("y", REAL)
    model.define("y", b.ref("u") + 1.0)
    scenario = Scenario(10)
    scenario.inputs["u"] = [float(i) for i in range(10)]
    scenario.inputs["helper"] = [100.0] * 10

    reference = CompiledBackend(model, strict=False).run(scenario)
    trace = VectorizedBackend(model, strict=False, block_size=4).run(scenario)
    assert trace.flows == reference.flows
    assert trace.warnings == reference.warnings
