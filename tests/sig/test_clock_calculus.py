"""Tests of the clock calculus: synchronisation classes, hierarchy, endochrony."""

import pytest

from repro.sig import builder as b
from repro.sig import library
from repro.sig.clock_calculus import ClockCalculus, run_clock_calculus
from repro.sig.process import ProcessModel
from repro.sig.values import BOOLEAN, EVENT, INTEGER


def simple_sampler():
    """y := x when b ; z := x + 1  — a classic hierarchy example."""
    model = ProcessModel("sampler")
    model.input("x", INTEGER)
    model.input("b", BOOLEAN)
    model.output("y", INTEGER)
    model.output("z", INTEGER)
    model.define("y", b.when(b.ref("x"), b.ref("b")))
    model.define("z", b.func("+", b.ref("x"), 1))
    model.synchronise("x", "b")
    return model


class TestExpressionClocks:
    def test_function_clock_is_operand_clock(self):
        model = simple_sampler()
        calculus = ClockCalculus(model)
        clock = calculus.expression_clock(b.func("+", b.ref("x"), 1))
        assert clock.base_signals() == frozenset({"x"})

    def test_constant_has_no_clock(self):
        calculus = ClockCalculus(ProcessModel("p"))
        assert calculus.expression_clock(b.const(5)) is None

    def test_when_clock_adds_condition(self):
        calculus = ClockCalculus(ProcessModel("p"))
        clock = calculus.expression_clock(b.when(b.ref("x"), b.ref("c")))
        kinds = {atom.kind for atom in clock.atoms()}
        assert "true" in kinds

    def test_when_not_condition(self):
        calculus = ClockCalculus(ProcessModel("p"))
        clock = calculus.expression_clock(b.when(b.ref("x"), b.func("not", b.ref("c"))))
        kinds = {atom.kind for atom in clock.atoms()}
        assert "false" in kinds

    def test_default_clock_is_union(self):
        calculus = ClockCalculus(ProcessModel("p"))
        clock = calculus.expression_clock(b.default(b.ref("x"), b.ref("y")))
        assert clock.base_signals() == frozenset({"x", "y"})

    def test_delay_clock_is_operand_clock(self):
        calculus = ClockCalculus(ProcessModel("p"))
        clock = calculus.expression_clock(b.delay(b.ref("x"), init=0))
        assert clock.base_signals() == frozenset({"x"})

    def test_when_false_constant_is_null(self):
        calculus = ClockCalculus(ProcessModel("p"))
        clock = calculus.expression_clock(b.when_clock(b.const(False)))
        assert clock.is_null


class TestResolution:
    def test_synchronous_class_from_function(self):
        model = simple_sampler()
        result = run_clock_calculus(model)
        assert result.synchronous("z", "x")
        assert result.synchronous("x", "b")

    def test_sampled_signal_below_parent(self):
        model = simple_sampler()
        result = run_clock_calculus(model)
        y_class = result.class_of("y")
        assert y_class is not None
        assert y_class.parent == result.class_of("x").representative

    def test_endochronous_single_root(self):
        model = simple_sampler()
        result = run_clock_calculus(model)
        assert result.endochronous
        assert result.master_clock() == result.class_of("x").representative

    def test_two_independent_inputs_not_endochronous(self):
        model = ProcessModel("two_inputs")
        model.input("a", INTEGER)
        model.input("c", INTEGER)
        model.output("y", INTEGER)
        model.output("z", INTEGER)
        model.define("y", b.func("+", b.ref("a"), 1))
        model.define("z", b.func("+", b.ref("c"), 1))
        result = run_clock_calculus(model)
        assert not result.endochronous
        assert len(result.roots) == 2

    def test_null_clock_detected(self):
        model = ProcessModel("nullclock")
        model.input("b", BOOLEAN)
        model.output("y", EVENT)
        # y present when b and not b: never.
        model.define("y", b.clock_intersection(b.when_clock(b.ref("b")), b.when_clock(b.func("not", b.ref("b")))))
        result = run_clock_calculus(model)
        assert "y" in result.null_clock_signals
        assert any("null clock" in c for c in result.unresolved_constraints)

    def test_clock_count_counts_classes(self):
        model = simple_sampler()
        result = run_clock_calculus(model)
        # {x, b, z} and {y} -> 2 classes.
        assert result.clock_count() == 2

    def test_report_mentions_process(self):
        result = run_clock_calculus(simple_sampler())
        text = result.report()
        assert "sampler" in text
        assert "endochronous" in text

    def test_explicit_exclusive_constraint_unproven_is_reported(self):
        model = ProcessModel("p")
        model.input("a", EVENT)
        model.input("c", EVENT)
        model.exclusive("a", "c")
        result = run_clock_calculus(model)
        assert any("^#" in item for item in result.unresolved_constraints)

    def test_subclock_constraint_proven(self):
        model = ProcessModel("p")
        model.input("x", INTEGER)
        model.input("b", BOOLEAN)
        model.local("y", INTEGER)
        model.define("y", b.when(b.ref("x"), b.ref("b")))
        model.subclock("y", "x")
        result = run_clock_calculus(model)
        assert not any("^<" in item for item in result.unresolved_constraints)


class TestLibraryProcesses:
    def test_memory_process_endochronous_on_b(self):
        result = run_clock_calculus(library.memory_process())
        # o = (i cell b) when b: o's clock is [b], below ^b.
        assert result.class_of("o").parent is not None

    def test_in_event_port_clock_count(self):
        result = run_clock_calculus(library.in_event_port(queue_size=2))
        assert result.clock_count() >= 5

    def test_fifo_reset_free_clocks_are_inputs(self):
        model = library.fifo_reset()
        result = run_clock_calculus(model)
        assert set(result.free_signals) <= {"write", "reset", "read"}

    def test_scheduler_hierarchy_rooted_at_tick(self):
        divider = library.periodic_clock_divider(period=4, phase=0)
        result = run_clock_calculus(divider)
        assert result.class_of("index").representative == result.class_of("tick").representative

    def test_flatten_before_analysis(self, pc_translation):
        # The full translated system runs through the clock calculus without error.
        result = run_clock_calculus(pc_translation.system_model)
        assert result.clock_count() > 50
