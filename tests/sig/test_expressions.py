"""Tests of the SIGNAL expression AST and the stepwise operator table."""

import pytest

from repro.sig.expressions import (
    Cell,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    FunctionApp,
    SignalRef,
    When,
    WhenClock,
    apply_stepwise,
    free_signals,
    lift,
    register_stepwise_operation,
)


class TestConstruction:
    def test_signal_ref_signals(self):
        assert SignalRef("x").signals() == ("x",)

    def test_const_has_no_signals(self):
        assert Const(5).signals() == ()

    def test_function_app_collects_signals_in_order(self):
        expr = FunctionApp("+", (SignalRef("a"), SignalRef("b")))
        assert expr.signals() == ("a", "b")

    def test_operator_overloads_build_function_apps(self):
        expr = SignalRef("a") + 1
        assert isinstance(expr, FunctionApp)
        assert expr.op == "+"
        assert isinstance(expr.args[1], Const)

    def test_comparison_helpers(self):
        assert SignalRef("a").eq(1).op == "="
        assert SignalRef("a").lt(1).op == "<"
        assert SignalRef("a").ge(1).op == ">="

    def test_when_default_helpers(self):
        expr = SignalRef("a").when(SignalRef("b")).default(Const(0))
        assert isinstance(expr, Default)
        assert isinstance(expr.left, When)

    def test_lift_passthrough_for_expressions(self):
        ref = SignalRef("x")
        assert lift(ref) is ref
        assert isinstance(lift(3), Const)

    def test_free_signals_dedup_preserves_order(self):
        expr = FunctionApp("+", (SignalRef("a"), FunctionApp("*", (SignalRef("b"), SignalRef("a")))))
        assert free_signals(expr) == ("a", "b")


class TestStringRendering:
    def test_infix_rendering(self):
        assert str(SignalRef("a") + SignalRef("b")) == "(a + b)"

    def test_delay_rendering(self):
        assert "$" in str(Delay(SignalRef("x"), init=0))
        assert "init 0" in str(Delay(SignalRef("x"), init=0))

    def test_when_default_rendering(self):
        assert str(When(SignalRef("x"), SignalRef("b"))) == "(x when b)"
        assert str(Default(SignalRef("x"), SignalRef("y"))) == "(x default y)"

    def test_cell_rendering(self):
        text = str(Cell(SignalRef("x"), SignalRef("b"), init=1))
        assert "cell" in text and "init 1" in text

    def test_clock_rendering(self):
        assert str(ClockOf(SignalRef("x"))) == "(^x)"
        assert "^+" in str(ClockUnion(SignalRef("x"), SignalRef("y")))
        assert str(WhenClock(SignalRef("b"))) == "(when b)"

    def test_boolean_constant_rendering(self):
        assert str(Const(True)) == "true"
        assert str(Const(False)) == "false"
        assert str(Const("s")) == '"s"'


class TestStepwiseOperations:
    def test_arithmetic(self):
        assert apply_stepwise("+", [2, 3]) == 5
        assert apply_stepwise("-", [2, 3]) == -1
        assert apply_stepwise("*", [2, 3]) == 6
        assert apply_stepwise("%", [7, 3]) == 1

    def test_comparisons(self):
        assert apply_stepwise("=", [2, 2]) is True
        assert apply_stepwise("/=", [2, 3]) is True
        assert apply_stepwise("<", [1, 2]) is True
        assert apply_stepwise(">=", [2, 2]) is True

    def test_boolean_operators(self):
        assert apply_stepwise("and", [True, False]) is False
        assert apply_stepwise("or", [True, False]) is True
        assert apply_stepwise("xor", [True, True]) is False
        assert apply_stepwise("not", [False]) is True

    def test_min_max_abs(self):
        assert apply_stepwise("min", [3, 5]) == 3
        assert apply_stepwise("max", [3, 5]) == 5
        assert apply_stepwise("abs", [-2]) == 2

    def test_unknown_operator_raises(self):
        with pytest.raises(KeyError):
            apply_stepwise("frobnicate", [1])

    def test_absent_operand_raises(self):
        from repro.sig.values import ABSENT

        with pytest.raises(ValueError):
            apply_stepwise("+", [1, ABSENT])

    def test_register_custom_operation(self):
        register_stepwise_operation("triple", lambda x: 3 * x)
        assert apply_stepwise("triple", [4]) == 12

    def test_integer_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            apply_stepwise("/", [1, 0])
