"""Reusable hypothesis strategies over symbolic scenario rule programs.

One source of rule-shape generators, shared by the symbolic-scenario fuzz
suite (``tests/sig/test_symbolic_scenario_fuzz.py``) and the sweep-layer
``RandomSpace`` tests (``tests/sweep/``): random rules of every kind
(periodic, constant, sparse — optionally overlaid on a base rule —
explicit and generator), and random scenarios assigning them to named
inputs.  Import this module only under ``pytest.importorskip("hypothesis")``
(it imports hypothesis at module import time).
"""

from hypothesis import strategies as st

from repro.sig.scenario import (
    ConstantRule,
    ExplicitRule,
    GeneratorRule,
    PeriodicRule,
    Scenario,
    SparseRule,
)
from repro.sig.values import ABSENT

#: Horizon the generated rule programs are shaped for (sparse keys and
#: explicit windows stay inside it).
RULE_LENGTH = 24


def stair(t):
    """Deterministic generator payload (module-level, picklable)."""
    return float(t % 5) if t % 3 else ABSENT


#: Scalar values a rule may carry: small floats, booleans, and an ``int``
#: in a REAL column to exercise the object path.
values = st.one_of(
    st.integers(min_value=-3, max_value=9).map(float),
    st.just(True),
    st.just(False),
    st.just(1),
)


@st.composite
def rules(draw, allow_base=True):
    """One random input rule of any kind (*allow_base* gates sparse-on-base
    nesting so recursion stays one level deep)."""
    kind = draw(st.sampled_from(["periodic", "constant", "sparse", "explicit", "generator"]))
    if kind == "periodic":
        period = draw(st.integers(min_value=1, max_value=9))
        phase = draw(st.integers(min_value=0, max_value=12))
        return PeriodicRule(period, phase=phase, fill=draw(values))
    if kind == "constant":
        return ConstantRule(draw(values))
    if kind == "sparse":
        entries = draw(
            st.dictionaries(
                st.integers(min_value=0, max_value=RULE_LENGTH - 1),
                st.one_of(values, st.just(ABSENT)),
                max_size=8,
            )
        )
        base = draw(rules(allow_base=False)) if allow_base and draw(st.booleans()) else None
        return SparseRule(entries, base=base)
    if kind == "explicit":
        window = draw(
            st.lists(st.one_of(values, st.just(ABSENT)), max_size=RULE_LENGTH)
        )
        return ExplicitRule(window)
    return GeneratorRule(stair)


@st.composite
def scenarios(draw, inputs=("u", "v", "gate"), length=RULE_LENGTH):
    """A random scenario assigning random rules to a subset of *inputs*."""
    scenario = Scenario(length)
    for name in inputs:
        if draw(st.booleans()):
            scenario.inputs[name] = draw(rules())
    return scenario
