"""Unit tests of the lowered (codegen) backend.

Catalog-wide parity lives in ``tests/integration/test_lowered_parity.py``;
this module exercises the machinery directly: per-equation source
generation, fold/identity behaviour, the state-slot consistency guard, the
numba soft gate, pickling and the ``lowered_residue`` option of the
vectorized backend.
"""

import pickle
import warnings

import pytest

from repro.sig import builder as b
from repro.sig.engine import (
    BACKENDS,
    LoweredBackend,
    VectorizedBackend,
    backend_names,
    compile_lowered,
    create_backend,
    lower_plan_evaluators,
    numba_available,
    numpy_available,
    simulate,
)
from repro.sig.engine import lowered as lowered_module
from repro.sig.engine.backends import CompiledBackend
from repro.sig.engine.plan import compile_plan
from repro.sig.expressions import register_stepwise_operation
from repro.sig.process import ProcessModel
from repro.sig.simulator import ClockViolation, Scenario
from repro.sig.values import ABSENT, BOOLEAN, REAL


def _rich_model():
    """One model per expression family: delays, cells, sampling, merges,
    clock operators, nested pure applications and constant folds."""
    model = ProcessModel("low_unit")
    model.input("u", REAL)
    model.input("v", REAL)
    model.input("gate", BOOLEAN)
    model.output("y", REAL)
    model.define("y", b.ref("u") * 2.0 + b.default(b.ref("v"), 0.0))
    model.local("zacc", REAL)
    model.output("acc", REAL)
    model.define("zacc", b.delay(b.ref("acc"), init=0.0))
    model.define("acc", b.ref("zacc") + b.ref("u"))
    model.synchronise("acc", "u")
    model.synchronise("zacc", "u")
    model.output("held", REAL)
    model.define("held", b.cell(b.ref("v"), b.ref("gate"), init=-1.0))
    model.output("sampled", REAL)
    model.define("sampled", b.when(b.ref("u"), b.ref("gate")))
    model.output("evt", BOOLEAN)
    model.define("evt", b.when_clock(b.ref("gate")))
    model.output("anyclk", BOOLEAN)
    model.define("anyclk", b.clock_union(b.ref("u"), b.ref("v")))
    model.output("both", BOOLEAN)
    model.define("both", b.clock_intersection(b.ref("u"), b.ref("v")))
    model.output("only_u", BOOLEAN)
    model.define("only_u", b.clock_difference(b.ref("u"), b.ref("v")))
    model.output("uclk", BOOLEAN)
    model.define("uclk", b.clock(b.ref("u")))
    model.output("sat", REAL)
    model.define("sat", b.func("min", b.func("abs", b.ref("y")), 50.0))
    model.output("folded", REAL)
    model.define("folded", b.ref("u") * (b.const(2.0) + b.const(3.0)))
    return model


def _scenario(length=30):
    scenario = Scenario(length)
    scenario.inputs["u"] = [float(i % 7) for i in range(length)]
    scenario.inputs["v"] = [float(i) if i % 3 else ABSENT for i in range(length)]
    scenario.inputs["gate"] = [bool(i % 2) for i in range(length)]
    return scenario


def _violation_model():
    model = ProcessModel("low_viol")
    model.input("u", REAL)
    model.input("v", REAL)
    model.output("w", REAL)
    model.define("w", b.ref("u") + b.ref("v"))
    return model


def _assert_identical(reference, candidate):
    assert candidate.length == reference.length
    assert set(candidate.flows) == set(reference.flows)
    for signal in reference.flows:
        assert candidate.flows[signal] == reference.flows[signal], signal
        for expected, actual in zip(
            reference.flows[signal].values, candidate.flows[signal].values
        ):
            assert type(expected) is type(actual), signal
    assert candidate.warnings == reference.warnings


def test_backend_registered():
    assert "lowered" in backend_names()
    assert BACKENDS["lowered"] is LoweredBackend
    assert isinstance(
        create_backend(_rich_model(), backend="lowered"), LoweredBackend
    )


def test_rich_model_parity():
    model = _rich_model()
    scenario = _scenario()
    reference = CompiledBackend(model, strict=False).run(scenario)
    candidate = LoweredBackend(model, strict=False).run(scenario)
    _assert_identical(reference, candidate)


def test_every_equation_is_lowered():
    plan = compile_lowered(_rich_model())
    assert plan.interpreted_targets == 0
    assert plan.lowered_targets == len(plan.targets)


def test_generated_source_is_attached():
    plan = compile_plan(_rich_model())
    lowered_map = lower_plan_evaluators(plan)
    assert lowered_map, "expected at least one lowered target"
    source = lowered_map["acc"][0].__lowered_source__
    assert source.startswith("def _lowered(")
    assert "return" in source


def test_constant_fold_produces_single_object():
    # (2.0 + 3.0) folds at generation time: the same float object is
    # returned every instant, like the plan compiler's folded Const.
    trace = simulate(
        _rich_model(), _scenario(), backend="lowered", strict=False
    )
    values = [v for v in trace.flows["folded"].values if v is not ABSENT]
    assert values == [u * 5.0 for u in trace.flows["u"].values]


def test_multi_definition_targets():
    model = ProcessModel("low_multi")
    model.input("u", REAL)
    model.input("gate", BOOLEAN)
    model.output("m", REAL)
    model.define("m", b.when(b.ref("u"), b.ref("gate")))
    model.define("m", b.when(-b.ref("u"), b.func("not", b.ref("gate"))))
    scenario = _scenario()
    reference = CompiledBackend(model, strict=False).run(scenario)
    candidate = LoweredBackend(model, strict=False).run(scenario)
    _assert_identical(reference, candidate)


def test_user_registered_operator():
    register_stepwise_operation("low_unit_clamp", lambda a: min(a, 4.0))
    model = ProcessModel("low_userop")
    model.input("u", REAL)
    model.output("c", REAL)
    model.define("c", b.func("low_unit_clamp", b.ref("u")))
    scenario = _scenario()
    reference = CompiledBackend(model, strict=False).run(scenario)
    candidate = LoweredBackend(model, strict=False).run(scenario)
    _assert_identical(reference, candidate)


def test_clock_violation_warning_parity():
    model = _violation_model()
    scenario = _scenario()
    reference = CompiledBackend(model, strict=False).run(scenario)
    candidate = LoweredBackend(model, strict=False).run(scenario)
    assert reference.warnings, "expected clock-violation warnings"
    _assert_identical(reference, candidate)


def test_clock_violation_strict_parity():
    model = _violation_model()
    scenario = _scenario()
    with pytest.raises(ClockViolation) as expected:
        CompiledBackend(model, strict=True).run(scenario)
    with pytest.raises(ClockViolation) as actual:
        LoweredBackend(model, strict=True).run(scenario)
    assert str(actual.value) == str(expected.value)


def test_state_mismatch_degrades_to_interpreter(monkeypatch):
    # Force the consistency guard to fire: the whole lowering is dropped
    # with a RuntimeWarning and the plan keeps its closures.
    monkeypatch.setattr(lowered_module, "_count_state_slots", lambda expr: 0)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        plan = compile_lowered(_rich_model())
    assert any(
        lowered_module.STATE_MISMATCH_MESSAGE in str(w.message) for w in caught
    )
    assert plan.lowered_targets == 0
    scenario = _scenario()
    reference = CompiledBackend(_rich_model(), strict=False).run(scenario)
    _assert_identical(reference, plan.run(scenario, strict=False))


def test_numba_gate():
    model = _rich_model()
    if numba_available():
        backend = LoweredBackend(model, strict=False, jit=True)
    else:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = LoweredBackend(model, strict=False, jit=True)
        assert any(
            lowered_module.NUMBA_FALLBACK_MESSAGE in str(w.message)
            for w in caught
        )
    scenario = _scenario()
    reference = CompiledBackend(model, strict=False).run(scenario)
    _assert_identical(reference, backend.run(scenario))


def test_pickle_roundtrip():
    backend = LoweredBackend(_rich_model(), strict=False)
    clone = pickle.loads(pickle.dumps(backend))
    scenario = _scenario()
    _assert_identical(backend.run(scenario), clone.run(scenario))
    assert clone.jit is backend.jit


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_vectorized_lowered_residue_option():
    model = _rich_model()
    vectorized = VectorizedBackend(
        model, strict=False, block_size=7, lowered_residue=True
    )
    stats = vectorized.vector_plan.statistics()
    assert stats.lowered == stats.residual
    scenario = _scenario()
    reference = CompiledBackend(model, strict=False).run(scenario)
    _assert_identical(reference, vectorized.run(scenario))
    clone = pickle.loads(pickle.dumps(vectorized))
    assert clone.lowered_residue is True
    _assert_identical(reference, clone.run(scenario))
