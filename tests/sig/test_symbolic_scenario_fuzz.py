"""Property-based fuzz: symbolic scenarios equal their materialised twins.

Hypothesis composes random rule programs — periodic, constant, sparse
(optionally overlaid on a base rule), explicit and generator rules — and
asserts that simulating the symbolic scenario is trace-identical (values,
Python value types, warnings) to simulating its eagerly materialised
:class:`~repro.sig.scenario.ExplicitRule` equivalent, across random block
sizes and all three backends.  Skips cleanly when ``hypothesis`` is not
installed.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sig import builder as b
from repro.sig.engine import numpy_available, simulate
from repro.sig.process import ProcessModel
from repro.sig.scenario import Scenario
from repro.sig.values import BOOLEAN, INTEGER, REAL

# The rule/scenario generators live in a shared module so the sweep layer's
# RandomSpace tests fuzz the exact same rule shapes (tests/sig/scenario_strategies.py).
from tests.sig.scenario_strategies import RULE_LENGTH as _LENGTH
from tests.sig.scenario_strategies import scenarios as _scenarios

_BACKENDS = ["reference", "compiled"] + (["vectorized"] if numpy_available() else [])


def _model():
    """Numeric pipeline with sampling, merge, state and a boolean gate —
    enough structure to populate the vectorized pre/post strata as well as
    the residual sweep."""
    model = ProcessModel("fuzz_symbolic")
    model.input("u", REAL)
    model.input("v", REAL)
    model.input("gate", BOOLEAN)
    model.output("y", REAL)
    model.define("y", b.ref("u") * 2.0 + b.default(b.ref("v"), 0.5))
    model.output("picked", REAL)
    model.define("picked", b.when(b.ref("y"), b.ref("gate")))
    model.local("zacc", REAL)
    model.output("acc", REAL)
    model.define("zacc", b.delay(b.ref("acc"), init=0.0))
    model.define("acc", b.ref("zacc") + b.ref("u"))
    model.synchronise("acc", "u")
    model.synchronise("zacc", "u")
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("u")))
    model.synchronise("count", "u")
    return model


_MODEL = _model()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(
    scenario=_scenarios(),
    block_size=st.sampled_from([1, 2, 3, 7, 16, 64]),
    backend=st.sampled_from(_BACKENDS),
)
def test_symbolic_equals_materialized(scenario, block_size, backend):
    """The property: rules and their eager expansion are indistinguishable."""
    eager = scenario.materialized()
    options = {"block_size": block_size} if backend == "vectorized" else None
    symbolic_trace = simulate(
        _MODEL, scenario, strict=False, backend=backend, backend_options=options
    )
    eager_trace = simulate(
        _MODEL, eager, strict=False, backend=backend, backend_options=options
    )
    assert symbolic_trace.length == eager_trace.length
    assert set(symbolic_trace.flows) == set(eager_trace.flows)
    for name in eager_trace.flows:
        expected = eager_trace.flows[name].values
        actual = symbolic_trace.flows[name].values
        assert actual == expected, f"flow {name!r} diverges on {backend}"
        for left, right in zip(expected, actual):
            assert type(left) is type(right), (
                f"{name!r}: {right!r} is {type(right).__name__}, "
                f"expected {type(left).__name__}"
            )
    assert symbolic_trace.warnings == eager_trace.warnings


@settings(max_examples=20, deadline=None)
@given(
    length=st.integers(min_value=0, max_value=48),
    backend=st.sampled_from(_BACKENDS),
)
def test_unbounded_scenario_consistent_across_horizons(length, backend):
    """An unbounded scenario truncated at any horizon equals the bounded
    scenario built at that horizon."""
    unbounded = (
        Scenario()
        .set_periodic("u", 3, phase=1, value=2.0)
        .set_always("gate", True)
        .set_at("v", {0: 1.0, 5: 2.0, 40: 3.0})
    )
    bounded = unbounded.materialized(length)
    a = simulate(_MODEL, unbounded, strict=False, backend=backend, length=length)
    c = simulate(_MODEL, bounded, strict=False, backend=backend)
    assert a.length == c.length == length
    for name in c.flows:
        assert a.flows[name] == c.flows[name]
