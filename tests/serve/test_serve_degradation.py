"""Soft-dependency degradation: the serving layer without fastapi/uvicorn.

``repro.serve`` (fingerprinting, plan cache, service core, wire codecs)
must import and work on a bare install; only ``create_app`` / ``repro
serve`` require the HTTP stack, and when it is missing they must fail
with one clear actionable message (``SERVE_FALLBACK_MESSAGE``) instead of
a bare ImportError — mirroring the numpy/vectorized and numba/lowered
degradation contracts.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro import cli
from repro.serve import (
    SERVE_FALLBACK_MESSAGE,
    create_app,
    serve_available,
    uvicorn_available,
)

HAS_FASTAPI = serve_available()


def test_core_import_does_not_pull_in_http_stack():
    """Importing repro.serve must not import fastapi/pydantic/uvicorn."""
    code = (
        "import sys\n"
        "import repro.serve\n"
        "import repro.serve.service\n"
        "leaked = [m for m in ('fastapi', 'pydantic', 'uvicorn', 'starlette')\n"
        "          if m in sys.modules]\n"
        "assert not leaked, f'repro.serve leaked HTTP deps: {leaked}'\n"
        "print('clean')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "clean" in result.stdout


def test_availability_probes_are_booleans():
    assert isinstance(serve_available(), bool)
    assert isinstance(uvicorn_available(), bool)


def test_fallback_message_is_actionable():
    assert "pip install" in SERVE_FALLBACK_MESSAGE
    assert "serve" in SERVE_FALLBACK_MESSAGE


@pytest.mark.skipif(HAS_FASTAPI, reason="fastapi installed; degraded paths inert")
class TestWithoutFastapi:
    def test_create_app_raises_with_fallback_message(self):
        with pytest.raises(ImportError) as excinfo:
            create_app()
        assert SERVE_FALLBACK_MESSAGE in str(excinfo.value)

    def test_cli_serve_check_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve", "--check"])
        assert excinfo.value.code not in (0, None)
        message = str(excinfo.value.code) + capsys.readouterr().err
        assert "fastapi" in message or SERVE_FALLBACK_MESSAGE in message

    def test_cli_serve_refuses_to_start(self):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve", "--port", "0"])
        assert excinfo.value.code not in (0, None)


@pytest.mark.skipif(not HAS_FASTAPI, reason="fastapi not installed")
class TestWithFastapi:
    def test_create_app_builds(self):
        app = create_app()
        assert app.state.service is not None

    def test_cli_serve_check_reports_ok(self, capsys):
        cli.main(["serve", "--check"])
        out = capsys.readouterr().out
        assert "serve" in out.lower()


def test_service_core_works_without_http_stack():
    """The framework-free core carries the full serving contract."""
    from repro.casestudies.catalog import load_case_study
    from repro.aadl.printer import render_model
    from repro.serve.service import SimulationService

    case = load_case_study("producer_consumer")
    service = SimulationService()
    submitted = service.submit(
        {
            "source": render_model(case.load_model()),
            "root": case.root_implementation,
            "package": case.default_package,
        }
    )
    response = service.simulate(
        submitted["fingerprint"],
        {"scenarios": [{"default": True}], "hyperperiods": 1},
    )
    assert response["ok"] is True
    assert response["results"][0]["trace"]["length"] > 0
