"""Wire-codec tests: scenario programs and results survive JSON exactly.

The serving layer's contract is bit-identical round-trips: every rule kind
encodes → (through real ``json.dumps``/``loads``) → decodes back to a rule
producing the same flow, signal values keep their Python types (``True``
vs ``1``, ``1`` vs ``1.0``), absence never collides with a present
``None``, and malformed payloads fail as ``invalid-program`` naming the
offending field instead of being silently coerced.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.errors import ServeError
from repro.serve.programs import (
    SimulateRequest,
    decode_trace,
    decode_value,
    encode_value,
    rule_from_payload,
    rule_to_payload,
    scenario_from_payload,
    scenario_to_payload,
    trace_to_payload,
)
from repro.sig.scenario import (
    ConstantRule,
    ExplicitRule,
    GeneratorRule,
    PeriodicRule,
    Scenario,
    SparseRule,
)
from repro.sig.simulator import SimulationTrace
from repro.sig.values import ABSENT, Flow


def json_roundtrip(payload):
    """Push a payload through real JSON serialisation."""
    return json.loads(json.dumps(payload))


class TestValueCodec:
    def test_present_values_keep_python_types(self):
        for value in (True, False, 0, 1, -3, 1.5, 0.0, "text", "", None):
            wire = json_roundtrip(encode_value(value))
            decoded = decode_value(wire)
            assert decoded == value
            assert type(decoded) is type(value)

    def test_absent_is_bare_null(self):
        assert encode_value(ABSENT) is None
        assert decode_value(None) is ABSENT

    def test_present_none_is_wrapped_null(self):
        assert encode_value(None) == [None]
        assert decode_value([None]) is None

    def test_bool_and_int_do_not_collide(self):
        assert decode_value(json_roundtrip(encode_value(True))) is True
        assert type(decode_value(json_roundtrip(encode_value(1)))) is int

    def test_unserialisable_value_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            encode_value(object())
        assert excinfo.value.code == "invalid-program"

    def test_malformed_wire_values_rejected(self):
        for bad in ([], [1, 2], "x", 5, {"v": 1}, [object]):
            with pytest.raises(ServeError):
                decode_value(bad)


class TestRuleCodec:
    RULES = [
        ConstantRule(True),
        ConstantRule(3),
        ConstantRule("on"),
        PeriodicRule(3),
        PeriodicRule(5, phase=2, fill=2.5),
        SparseRule({0: 1, 7: ABSENT, 3: False}),
        SparseRule({2: 9}, base=PeriodicRule(2, fill=1)),
        SparseRule({1: "x"}, base=ConstantRule("y")),
        ExplicitRule([1, ABSENT, True, "s", 2.0]),
        ExplicitRule([]),
    ]

    @pytest.mark.parametrize("rule", RULES, ids=lambda r: repr(r))
    def test_roundtrip_preserves_flow(self, rule):
        decoded = rule_from_payload(json_roundtrip(rule_to_payload(rule)), "sig")
        assert type(decoded) is type(rule)
        window = 24
        original = [rule.value(i) for i in range(window)]
        restored = [decoded.value(i) for i in range(window)]
        assert restored == original
        assert [type(v) for v in restored] == [type(v) for v in original]

    def test_generator_rule_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            rule_to_payload(GeneratorRule(lambda i: i))
        assert excinfo.value.code == "invalid-program"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            rule_from_payload({"kind": "wavelet"}, "sig")
        assert "wavelet" in excinfo.value.message

    def test_unknown_key_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            rule_from_payload({"kind": "periodic", "period": 2, "phse": 1}, "sig")
        assert "phse" in excinfo.value.message

    def test_invalid_period_maps_to_program_error(self):
        with pytest.raises(ServeError) as excinfo:
            rule_from_payload({"kind": "periodic", "period": 0}, "sig")
        assert excinfo.value.code == "invalid-program"

    def test_sparse_string_keys_decode_to_instants(self):
        rule = rule_from_payload(
            {"kind": "sparse", "entries": {"4": [7], "0": None}}, "sig"
        )
        assert rule.value(4) == 7
        assert rule.value(0) is ABSENT

    def test_sparse_bad_key_rejected(self):
        with pytest.raises(ServeError):
            rule_from_payload({"kind": "sparse", "entries": {"four": [7]}}, "sig")


class TestScenarioCodec:
    def test_roundtrip(self):
        scenario = Scenario(40)
        scenario.set_always("tick")
        scenario.set_periodic("stim", 5, phase=1, value=3)
        scenario.set_at("stim", {7: 99, 9: ABSENT})
        scenario.set_flow("burst", [1, ABSENT, 2])
        decoded = scenario_from_payload(json_roundtrip(scenario_to_payload(scenario)))
        assert decoded.length == 40
        assert sorted(decoded.inputs) == sorted(scenario.inputs)
        for name in scenario.inputs:
            assert decoded.materialize(name) == scenario.materialize(name)

    def test_unbounded_scenario_roundtrip(self):
        scenario = Scenario(None).set_always("tick")
        decoded = scenario_from_payload(json_roundtrip(scenario_to_payload(scenario)))
        assert decoded.length is None
        assert decoded.value("tick", 10 ** 6) is True

    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            scenario_from_payload({"length": 4, "imputs": {}})
        assert "imputs" in excinfo.value.message

    def test_negative_length_rejected(self):
        with pytest.raises(ServeError):
            scenario_from_payload({"length": -1, "inputs": {}})


class TestTraceCodec:
    def test_roundtrip_bit_identical(self):
        trace = SimulationTrace(
            process_name="p",
            length=4,
            flows={
                "a": Flow("a", [1, ABSENT, True, None]),
                "b": Flow("b", [ABSENT, 2.5, "x", False]),
            },
            warnings=["w1"],
        )
        decoded = decode_trace(json_roundtrip(trace_to_payload(trace)))
        assert decoded.process_name == trace.process_name
        assert decoded.length == trace.length
        assert decoded.warnings == trace.warnings
        assert decoded.flows == trace.flows
        for name in trace.flows:
            assert [type(v) for v in decoded.flows[name].values] == [
                type(v) for v in trace.flows[name].values
            ]


class TestSimulateRequest:
    def test_minimal(self):
        request = SimulateRequest.from_payload({"scenarios": [{"default": True}]})
        assert request.workers == 1
        assert request.strict is True
        assert request.include_trace is True

    def test_unknown_key_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            SimulateRequest.from_payload({"scenarios": [{}], "worker": 2})
        assert "worker" in excinfo.value.message

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ServeError):
            SimulateRequest.from_payload({"scenarios": []})

    def test_unknown_sink_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            SimulateRequest.from_payload({"scenarios": [{}], "sinks": ["parquet"]})
        assert "parquet" in excinfo.value.message

    def test_budget_shorthand_and_mapping(self):
        request = SimulateRequest.from_payload(
            {"scenarios": [{}], "scenario_budget": 100}
        )
        assert request.scenario_budget == 100
        request = SimulateRequest.from_payload(
            {"scenarios": [{}], "scenario_budget": {"max_instants": 5}}
        )
        assert request.scenario_budget == {"max_instants": 5}
        with pytest.raises(ServeError):
            SimulateRequest.from_payload(
                {"scenarios": [{}], "scenario_budget": {"max_seconds": 5}}
            )

    def test_bad_types_rejected(self):
        for body in (
            {"scenarios": [{}], "workers": "two"},
            {"scenarios": [{}], "timeout": -1},
            {"scenarios": [{}], "strict": "yes"},
            {"scenarios": [{}], "record": [1]},
            {"scenarios": "all"},
        ):
            with pytest.raises(ServeError):
                SimulateRequest.from_payload(body)
