"""Fault-surface tests: PR 7's chaos harness through the serving layer.

Deterministic :class:`~repro.sig.engine.faults.FaultPlan` injections (the
test-only ``fault_plan`` request field, gated behind
``ServiceConfig.allow_fault_injection``) must surface as the documented
typed JSON taxonomy — ``crash`` / ``timeout`` / ``budget`` / ``error``
faults inside 200 responses, scenario-indexed, with survivors
bit-identical to a fault-free run — and the streaming path must terminate
cleanly around faulted scenarios.
"""

from __future__ import annotations

import pytest

from repro.casestudies.catalog import load_case_study
from repro.serve.errors import ServeError
from repro.serve.service import ServiceConfig, SimulationService

CASE = "producer_consumer"


@pytest.fixture(scope="module")
def service():
    case = load_case_study(CASE)
    from repro.aadl.printer import render_model

    svc = SimulationService(ServiceConfig(allow_fault_injection=True))
    response = svc.submit(
        {
            "source": render_model(case.load_model()),
            "root": case.root_implementation,
            "package": case.default_package,
        }
    )
    svc.fingerprint = response["fingerprint"]
    return svc


def simulate(service, **overrides):
    body = {"scenarios": [{"default": True}] * 3, "hyperperiods": 1}
    body.update(overrides)
    return service.simulate(service.fingerprint, body)


class TestInjectionGate:
    def test_fault_plan_rejected_without_opt_in(self):
        case = load_case_study(CASE)
        from repro.aadl.printer import render_model

        svc = SimulationService(ServiceConfig())  # injection NOT allowed
        fingerprint = svc.submit(
            {
                "source": render_model(case.load_model()),
                "root": case.root_implementation,
                "package": case.default_package,
            }
        )["fingerprint"]
        with pytest.raises(ServeError) as excinfo:
            svc.simulate(
                fingerprint,
                {
                    "scenarios": [{"default": True}],
                    "hyperperiods": 1,
                    "fault_plan": [{"kind": "crash", "scenario": 0}],
                },
            )
        assert excinfo.value.code == "invalid-program"
        assert excinfo.value.status == 422

    def test_malformed_fault_plan_rejected(self, service):
        for plan in (
            {"kind": "crash"},
            [{"kind": "meteor", "scenario": 0}],
            [{"kind": "crash", "scenario": 0, "retries": 9}],
            [{"kind": "crash", "scenario": 0, "attempts": ["first"]}],
        ):
            with pytest.raises(ServeError):
                simulate(service, fault_plan=plan)


class TestFaultTaxonomy:
    def test_persistent_crash_surfaces_as_typed_fault(self, service):
        response = simulate(
            service,
            fault_plan=[{"kind": "crash", "scenario": 1, "attempts": None}],
            retries=1,
        )
        assert response["ok"] is False
        fault = response["results"][1]["fault"]
        assert fault["kind"] == "crash"
        assert fault["scenario"] == 1
        assert fault["attempts"] >= 1
        assert "trace" not in response["results"][1]

    def test_persistent_hang_surfaces_as_timeout(self, service):
        response = simulate(
            service,
            fault_plan=[
                {"kind": "hang", "scenario": 0, "attempts": None, "delay": 0.01}
            ],
            timeout=0.3,
            retries=0,
        )
        fault = response["results"][0]["fault"]
        assert fault["kind"] == "timeout"

    def test_persistent_exception_surfaces_as_error_with_traceback(self, service):
        response = simulate(
            service,
            fault_plan=[{"kind": "exception", "scenario": 2, "attempts": None}],
            retries=0,
        )
        fault = response["results"][2]["fault"]
        assert fault["kind"] == "error"
        assert fault["traceback"]

    def test_budget_violation_surfaces_as_budget(self, service):
        response = simulate(service, scenario_budget=3)
        for result in response["results"]:
            assert result["fault"]["kind"] == "budget"

    def test_survivors_bit_identical_to_fault_free_run(self, service):
        clean = simulate(service)
        faulted = simulate(
            service,
            fault_plan=[{"kind": "crash", "scenario": 1, "attempts": None}],
            retries=1,
        )
        for index in (0, 2):
            assert (
                faulted["results"][index]["trace"] == clean["results"][index]["trace"]
            )

    def test_transient_crash_recovers_via_retries(self, service):
        clean = simulate(service)
        response = simulate(
            service,
            fault_plan=[{"kind": "crash", "scenario": 0, "attempts": [0]}],
            retries=2,
        )
        assert response["ok"] is True
        assert response["results"][0]["trace"] == clean["results"][0]["trace"]

    def test_circuit_breaker_faults_fast(self, service):
        response = simulate(
            service,
            fault_plan=[
                {"kind": "crash", "scenario": index, "attempts": None}
                for index in range(3)
            ],
            retries=3,
            max_failures=1,
        )
        assert response["ok"] is False
        kinds = {result["fault"]["kind"] for result in response["results"]}
        assert "crash" in kinds  # at least the breaker-tripping fault is typed


class TestStreamingFaults:
    def test_budget_fault_event_then_clean_termination(self, service):
        stream = service.stream_simulate(
            service.fingerprint,
            {
                "scenarios": [{"default": True}] * 2,
                "hyperperiods": 1,
                "scenario_budget": 3,
            },
        )
        events = list(stream)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "open"
        assert kinds[-1] == "done"
        faults = [event for event in events if event["event"] == "fault"]
        assert [fault["scenario"] for fault in faults] == [0, 1]
        assert all(fault["kind"] == "budget" for fault in faults)
        assert events[-1]["faults"] == 2
        assert events[-1]["ok"] is False
        # Every scenario's sinks were still closed despite the faults.
        assert stream.sinks_closed >= 2

    def test_timeout_fault_event(self, service):
        stream = service.stream_simulate(
            service.fingerprint,
            {
                "scenarios": [{"default": True, "length": 200000}],
                "timeout": 0.0,
            },
        )
        events = list(stream)
        faults = [event for event in events if event["event"] == "fault"]
        assert len(faults) == 1
        assert faults[0]["kind"] == "timeout"
        assert events[-1]["event"] == "done"
