"""End-to-end HTTP conformance of the FastAPI adapter (``repro.serve.app``).

These tests need the ``serve`` extra (fastapi + httpx-backed test client)
and skip cleanly on a bare install — the CI ``serve`` job runs them.  The
service-core semantics are covered framework-free in ``test_service.py``;
here we assert the HTTP layer's added contract: routing, pydantic
``extra='forbid'`` request validation, the JSON error taxonomy's status
codes on the wire, and SSE stream framing.
"""

from __future__ import annotations

import json

import pytest

fastapi = pytest.importorskip("fastapi")
pytest.importorskip("httpx")

from fastapi.testclient import TestClient  # noqa: E402

from repro.aadl.printer import render_model  # noqa: E402
from repro.casestudies.catalog import load_case_study  # noqa: E402
from repro.serve import create_app  # noqa: E402
from repro.serve.service import ServiceConfig  # noqa: E402

CASE = "producer_consumer"


@pytest.fixture(scope="module")
def client():
    app = create_app(ServiceConfig(cache_capacity=4, max_concurrent=2))
    with TestClient(app) as test_client:
        yield test_client


@pytest.fixture(scope="module")
def submit_body():
    case = load_case_study(CASE)
    return {
        "source": render_model(case.load_model()),
        "root": case.root_implementation,
        "package": case.default_package,
    }


@pytest.fixture(scope="module")
def fingerprint(client, submit_body):
    response = client.post("/models", json=submit_body)
    assert response.status_code == 200, response.text
    return response.json()["fingerprint"]


def sse_events(response):
    """Parse an SSE body back into the JSON event objects."""
    events = []
    for line in response.text.splitlines():
        if line.startswith("data: "):
            events.append(json.loads(line[len("data: "):]))
    return events


class TestLifecycle:
    def test_healthz(self, client):
        response = client.get("/healthz")
        assert response.status_code == 200
        assert response.json() == {"ok": True}

    def test_submit_then_resubmit_hits_cache(self, client, submit_body, fingerprint):
        response = client.post("/models", json=submit_body)
        assert response.status_code == 200
        body = response.json()
        assert body["fingerprint"] == fingerprint
        assert body["cached"] is True

    def test_model_info_and_listing(self, client, fingerprint):
        info = client.get(f"/models/{fingerprint}")
        assert info.status_code == 200
        assert info.json()["fingerprint"] == fingerprint
        listing = client.get("/models")
        assert listing.status_code == 200
        assert fingerprint in listing.json()["models"]

    def test_stats_counters(self, client, fingerprint):
        stats = client.get("/stats")
        assert stats.status_code == 200
        cache = stats.json()["cache"]
        assert cache["compiles"] >= 1
        assert cache["hits"] >= 1

    def test_simulate(self, client, fingerprint):
        response = client.post(
            f"/models/{fingerprint}/simulate",
            json={"scenarios": [{"default": True}], "hyperperiods": 1},
        )
        assert response.status_code == 200, response.text
        body = response.json()
        assert body["ok"] is True
        assert body["results"][0]["trace"]["length"] > 0

    def test_stream_sse_framing(self, client, fingerprint):
        response = client.post(
            f"/models/{fingerprint}/simulate/stream",
            json={
                "scenarios": [{"default": True}],
                "hyperperiods": 1,
                "sinks": ["stats", "vcd"],
            },
        )
        assert response.status_code == 200
        assert response.headers["content-type"].startswith("text/event-stream")
        events = sse_events(response)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "open"
        assert kinds[-1] == "done"
        assert "result" in kinds
        assert any(kind == "vcd" for kind in kinds)
        assert events[-1]["ok"] is True

    def test_evict_then_404(self, client, submit_body):
        fingerprint = client.post("/models", json=submit_body).json()["fingerprint"]
        assert client.delete(f"/models/{fingerprint}").status_code == 200
        assert client.get(f"/models/{fingerprint}").status_code == 404


class TestHttpErrors:
    def test_unknown_fingerprint_404(self, client):
        response = client.post(
            "/models/deadbeef/simulate", json={"scenarios": [{"default": True}]}
        )
        assert response.status_code == 404
        assert response.json()["error"]["code"] == "model-not-found"

    def test_invalid_model_422(self, client):
        response = client.post("/models", json={"source": "not aadl at all"})
        assert response.status_code == 422
        assert response.json()["error"]["code"] == "invalid-model"

    def test_typoed_body_key_422(self, client, submit_body, fingerprint):
        assert (
            client.post("/models", json=dict(submit_body, roots="x")).status_code
            == 422
        )
        response = client.post(
            f"/models/{fingerprint}/simulate",
            json={"scenarios": [{"default": True}], "worker": 2},
        )
        assert response.status_code == 422

    def test_unknown_backend_422(self, client, fingerprint):
        response = client.post(
            f"/models/{fingerprint}/simulate",
            json={
                "scenarios": [{"default": True}],
                "hyperperiods": 1,
                "backend": "quantum",
            },
        )
        assert response.status_code == 422
        assert response.json()["error"]["code"] == "unknown-backend"
