"""The persistent store behind the serving core.

`ServiceConfig(store=...)` turns the in-memory :class:`PlanCache` into the
front tier of a two-level cache: a fresh service process over a warm store
directory restores its analyses from disk instead of recompiling, and the
responses it serves are identical to the cold ones.
"""

from __future__ import annotations

import pytest

from repro.casestudies.catalog import load_case_study
from repro.serve.service import ServiceConfig, SimulationService
from repro.store import ArtifactStore

CASE = "producer_consumer"


@pytest.fixture(scope="module")
def submit_body():
    case = load_case_study(CASE)
    from repro.aadl.printer import render_model

    return {
        "source": render_model(case.load_model()),
        "root": case.root_implementation,
        "package": case.default_package,
    }


SIMULATE_BODY = {"scenarios": [{"default": True}], "hyperperiods": 2}


def _service(store):
    return SimulationService(ServiceConfig(max_concurrent=2, store=store))


def test_cold_service_publishes_artifacts(tmp_path, submit_body):
    store = ArtifactStore(str(tmp_path))
    service = _service(store)
    response = service.submit(submit_body)
    assert response["cached"] is False
    assert store.writes > 0
    census = store.stats()["kinds"]
    assert census["toolchain"]["entries"] == 1
    assert census["extraction"]["entries"] > 0


def test_fresh_service_warm_starts_with_identical_responses(tmp_path, submit_body):
    root = str(tmp_path)
    cold_service = _service(ArtifactStore(root))
    cold_submit = cold_service.submit(submit_body)
    cold_simulate = cold_service.simulate(cold_submit["fingerprint"], SIMULATE_BODY)

    # A brand-new service (new process, in effect): the plan cache is empty
    # but the store is warm — compile happens once, analyses come off disk.
    warm_store = ArtifactStore(root)
    warm_service = _service(warm_store)
    warm_submit = warm_service.submit(submit_body)
    assert warm_store.hits > 0
    assert warm_service.cache.stats()["compiles"] == 1

    assert warm_submit["fingerprint"] == cold_submit["fingerprint"]
    assert warm_submit["model"]["analysis"] == cold_submit["model"]["analysis"]
    assert (
        warm_submit["model"]["signals"] == cold_submit["model"]["signals"]
    )

    warm_simulate = warm_service.simulate(warm_submit["fingerprint"], SIMULATE_BODY)
    assert warm_simulate["results"] == cold_simulate["results"]


def test_store_less_service_matches_stored_one(tmp_path, submit_body):
    plain = _service(None)
    stored = _service(ArtifactStore(str(tmp_path)))
    plain_submit = plain.submit(submit_body)
    stored_submit = stored.submit(submit_body)
    assert stored_submit["fingerprint"] == plain_submit["fingerprint"]
    assert stored_submit["model"]["analysis"] == plain_submit["model"]["analysis"]
    plain_sim = plain.simulate(plain_submit["fingerprint"], SIMULATE_BODY)
    stored_sim = stored.simulate(stored_submit["fingerprint"], SIMULATE_BODY)
    assert stored_sim["results"] == plain_sim["results"]


def test_stats_surface_the_store(tmp_path, submit_body):
    stored = _service(ArtifactStore(str(tmp_path)))
    stored.submit(submit_body)
    stats = stored.stats()
    assert stats["store"] is not None
    assert stats["store"]["entries"] > 0
    assert stats["store"]["writes"] > 0

    plain = _service(None)
    assert plain.stats()["store"] is None


def test_service_config_store_true_resolves_default(tmp_path, monkeypatch, submit_body):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "svc"))
    service = _service(True)
    assert isinstance(service.store, ArtifactStore)
    assert service.store.root == str(tmp_path / "svc")
    service.submit(submit_body)
    assert service.store.stats()["entries"] > 0
