"""Conformance tests of the framework-free service core.

Pin the serving semantics the HTTP layer inherits: compile-exactly-once
per structural fingerprint (whitespace/comment variants converge, options
split), LRU eviction with transparent recompile, hit/miss counters,
served-vs-direct bit-identical results (materialised traces, sink
payloads, value types, ``workers=N``), backpressure as typed ``busy``
rejections, and the streaming path's event protocol including client
disconnect mid-stream closing every sink.
"""

from __future__ import annotations

import pytest

from repro.casestudies.catalog import load_case_study
from repro.core import ToolchainOptions, run_toolchain
from repro.serve.cache import PlanCache
from repro.serve.errors import ERROR_STATUS, ServeError
from repro.serve.programs import decode_trace, scenario_to_payload
from repro.serve.service import ServiceConfig, SimulationService
from repro.sig.engine import simulate_batch
from repro.sig.scenario import Scenario

CASE = "producer_consumer"


@pytest.fixture(scope="module")
def case():
    return load_case_study(CASE)


@pytest.fixture(scope="module")
def source(case):
    from repro.aadl.printer import render_model

    return render_model(case.load_model())


@pytest.fixture(scope="module")
def submit_body(case, source):
    return {
        "source": source,
        "root": case.root_implementation,
        "package": case.default_package,
    }


@pytest.fixture(scope="module")
def service(submit_body):
    svc = SimulationService(ServiceConfig(max_concurrent=2))
    svc.submit(submit_body)
    return svc


@pytest.fixture(scope="module")
def fingerprint(service, submit_body):
    return service.submit(submit_body)["fingerprint"]


@pytest.fixture(scope="module")
def direct(case, source):
    options = ToolchainOptions(
        root_implementation=case.root_implementation,
        default_package=case.default_package,
        simulate_hyperperiods=2,
        cost_model=None,
    )
    return run_toolchain(source, options)


class TestSubmit:
    def test_compile_exactly_once(self, service, submit_body):
        before = service.cache.stats()["compiles"]
        first = service.submit(submit_body)
        second = service.submit(submit_body)
        assert first["fingerprint"] == second["fingerprint"]
        assert first["cached"] and second["cached"]
        assert service.cache.stats()["compiles"] == before

    def test_whitespace_and_comments_share_fingerprint(
        self, service, submit_body, fingerprint
    ):
        noisy = dict(submit_body)
        noisy["source"] = (
            "-- a leading comment\n"
            + submit_body["source"].replace("\n", "\n\n", 3)
            + "\n   \n"
        )
        before = service.cache.stats()["compiles"]
        response = service.submit(noisy)
        assert response["fingerprint"] == fingerprint
        assert response["cached"] is True
        assert service.cache.stats()["compiles"] == before

    def test_different_options_split_fingerprints(self, service, submit_body):
        other = dict(submit_body)
        other["policy"] = "edf"
        response = service.submit(other)
        assert response["fingerprint"] != service.submit(submit_body)["fingerprint"]
        service.evict(response["fingerprint"])

    def test_invalid_source_rejected(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.submit({"source": "system garbage {{{"})
        assert excinfo.value.code == "invalid-model"
        assert excinfo.value.status == 422

    def test_unknown_submit_key_rejected(self, service, submit_body):
        body = dict(submit_body)
        body["sauce"] = "x"
        with pytest.raises(ServeError) as excinfo:
            service.submit(body)
        assert "sauce" in excinfo.value.message

    def test_model_info_and_counters(self, service, submit_body, fingerprint):
        info = service.model_info(fingerprint)
        assert info["fingerprint"] == fingerprint
        assert info["root"] == submit_body["root"]
        assert info["hits"] >= 1
        assert info["analysis"]["clocks"]["signals"] > 0
        assert "compiled" in info["prepared_backends"]

    def test_model_not_found_is_404(self, service):
        with pytest.raises(ServeError) as excinfo:
            service.model_info("not-a-fingerprint")
        assert excinfo.value.code == "model-not-found"
        assert excinfo.value.status == 404


class TestCacheLifecycle:
    def test_lru_eviction_and_transparent_recompile(self, submit_body):
        svc = SimulationService(ServiceConfig(cache_capacity=1))
        first = svc.submit(submit_body)["fingerprint"]
        other = dict(submit_body)
        other["policy"] = "edf"
        second = svc.submit(other)["fingerprint"]
        # Capacity 1: the second submission evicted the first.
        assert svc.cache.fingerprints() == [second]
        assert svc.cache.stats()["evictions"] == 1
        with pytest.raises(ServeError):
            svc.model_info(first)
        # Resubmitting transparently recompiles (one extra compile, not two).
        again = svc.submit(submit_body)
        assert again["fingerprint"] == first
        assert again["cached"] is False
        assert svc.cache.compiles[first] == 2

    def test_explicit_evict(self, submit_body):
        svc = SimulationService(ServiceConfig())
        fingerprint = svc.submit(submit_body)["fingerprint"]
        assert svc.evict(fingerprint)["evicted"] is True
        with pytest.raises(ServeError) as excinfo:
            svc.evict(fingerprint)
        assert excinfo.value.status == 404

    def test_failed_compile_leaves_no_entry(self):
        cache = PlanCache(4)

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            cache.get_or_create("fp", boom)
        assert len(cache) == 0
        assert cache.stats()["compiles"] == 0
        entry, created = cache.get_or_create("fp", lambda: object())
        assert created and entry is not None


class TestSimulateParity:
    def test_default_scenario_matches_toolchain(self, service, fingerprint, direct):
        response = service.simulate(
            fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 2}
        )
        assert response["ok"] is True
        served = decode_trace(response["results"][0]["trace"])
        assert served.length == direct.trace.length
        assert served.flows == direct.trace.flows
        assert served.warnings == direct.trace.warnings

    def test_symbolic_scenarios_match_simulate_batch(self, service, fingerprint, direct):
        scenarios = []
        for phase in range(3):
            scenario = Scenario(30)
            for decl in direct.system_model.inputs():
                if decl.name == "tick" or decl.name.endswith("_tick"):
                    scenario.set_always(decl.name)
            scenarios.append(scenario)
        local = simulate_batch(direct.system_model, scenarios, collect_errors=True)
        response = service.simulate(
            fingerprint,
            {"scenarios": [scenario_to_payload(s) for s in scenarios]},
        )
        assert response["ok"] and local.ok
        assert response["scenarios"] == len(scenarios)
        for index, trace in enumerate(local.traces):
            served = decode_trace(response["results"][index]["trace"])
            assert served.flows == trace.flows
            assert served.warnings == trace.warnings

    def test_workers_batch_matches_sequential(self, service, fingerprint):
        body = {"scenarios": [{"default": True}] * 4, "hyperperiods": 1}
        sequential = service.simulate(fingerprint, body)
        parallel = service.simulate(fingerprint, dict(body, workers=2))
        assert parallel["workers"] == 2
        assert [r.get("trace") for r in parallel["results"]] == [
            r.get("trace") for r in sequential["results"]
        ]

    def test_sink_results_match_in_process_sinks(self, service, fingerprint, direct):
        from repro.serve.programs import statistics_to_payload
        from repro.sig.sinks import StatisticsSink

        response = service.simulate(
            fingerprint,
            {
                "scenarios": [{"default": True}],
                "hyperperiods": 1,
                "sinks": ["stats"],
                "include_trace": False,
            },
        )
        result = service.simulate(
            fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 1}
        )
        # Replay the served trace through a StatisticsSink: the served stats
        # payload must match stats computed from the served trace.
        from repro.sig.sinks import replay_trace

        sink = StatisticsSink()
        replay_trace(decode_trace(result["results"][0]["trace"]), [sink])
        assert response["results"][0]["stats"] == statistics_to_payload(sink.result())

    def test_value_types_survive(self, service, fingerprint):
        response = service.simulate(
            fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 1}
        )
        flows = response["results"][0]["trace"]["flows"]
        kinds = set()
        for values in flows.values():
            for value in values:
                if value is not None:
                    kinds.add(type(value[0]))
        assert bool in kinds  # ticks and control signals stay booleans

    def test_unbounded_scenario_needs_horizon(self, service, fingerprint):
        with pytest.raises(ServeError) as excinfo:
            service.simulate(
                fingerprint,
                {"scenarios": [{"length": None, "inputs": {}}]},
            )
        assert excinfo.value.code == "invalid-program"

    def test_unknown_backend_is_422(self, service, fingerprint):
        with pytest.raises(ServeError) as excinfo:
            service.simulate(
                fingerprint,
                {"scenarios": [{"default": True}], "hyperperiods": 1, "backend": "gpu"},
            )
        assert excinfo.value.code == "unknown-backend"
        assert excinfo.value.status == 422

    def test_vcd_sink_is_stream_only(self, service, fingerprint):
        with pytest.raises(ServeError) as excinfo:
            service.simulate(
                fingerprint,
                {"scenarios": [{"default": True}], "hyperperiods": 1, "sinks": ["vcd"]},
            )
        assert "stream" in excinfo.value.message


class TestBackpressure:
    def test_busy_rejection_and_recovery(self, submit_body):
        svc = SimulationService(ServiceConfig(max_concurrent=1))
        fingerprint = svc.submit(submit_body)["fingerprint"]
        # A stream holds its execution slot until closed.
        stream = svc.stream_simulate(
            fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 1}
        )
        with pytest.raises(ServeError) as excinfo:
            svc.simulate(
                fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 1}
            )
        assert excinfo.value.code == "busy"
        assert excinfo.value.status == 503
        assert svc.requests["rejected"] == 1
        stream.close()
        response = svc.simulate(
            fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 1}
        )
        assert response["ok"] is True


class TestStreaming:
    def test_event_protocol(self, service, fingerprint):
        stream = service.stream_simulate(
            fingerprint,
            {
                "scenarios": [{"default": True}] * 2,
                "hyperperiods": 1,
                "sinks": ["stats", "vcd"],
                "include_trace": False,
            },
        )
        events = list(stream)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "open"
        assert kinds[-1] == "done"
        assert kinds.count("result") == 2
        assert "vcd" in kinds
        vcd_text = "".join(e["chunk"] for e in events if e["event"] == "vcd")
        assert vcd_text.startswith("$date")
        assert events[-1]["ok"] is True

    def test_stream_trace_matches_batch(self, service, fingerprint):
        stream = service.stream_simulate(
            fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 1}
        )
        events = {e["event"]: e for e in stream}
        batch = service.simulate(
            fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 1}
        )
        assert events["result"]["trace"] == batch["results"][0]["trace"]

    def test_disconnect_mid_stream_closes_sinks(self, service, fingerprint):
        stream = service.stream_simulate(
            fingerprint,
            {
                "scenarios": [{"default": True}] * 5,
                "hyperperiods": 2,
                "sinks": ["stats"],
            },
        )
        iterator = iter(stream)
        assert next(iterator)["event"] == "open"
        stream.close()
        # The running scenario was cancelled cooperatively and every one of
        # its sinks (stats + materialize + cancel) was on_close()d.
        assert stream.scenarios_started >= 1
        assert stream.sinks_closed >= 3 * 1
        assert stream.sinks_closed % 3 == 0
        # The slot is free again: stats reflect no active simulation.
        assert service.stats()["active_simulations"] == 0

    def test_stream_consumed_twice_is_409(self, service, fingerprint):
        stream = service.stream_simulate(
            fingerprint, {"scenarios": [{"default": True}], "hyperperiods": 1}
        )
        list(stream)
        with pytest.raises(ServeError) as excinfo:
            list(stream)
        assert excinfo.value.code == "stream-closed"
        assert excinfo.value.status == 409


class TestErrorTaxonomy:
    def test_status_table_is_complete(self):
        assert ERROR_STATUS == {
            "invalid-model": 422,
            "unschedulable": 422,
            "invalid-program": 422,
            "model-not-found": 404,
            "unknown-backend": 422,
            "busy": 503,
            "stream-closed": 409,
        }

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            ServeError("teapot", "short and stout")
