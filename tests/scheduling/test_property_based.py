"""Property-based tests on the scheduler invariants."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.scheduling.analysis import analyse_schedulability
from repro.scheduling.baseline import simulate_preemptive
from repro.scheduling.hyperperiod import hyperperiod_ms
from repro.scheduling.static_scheduler import (
    SchedulingError,
    SchedulingPolicy,
    StaticSchedulerConfig,
    synthesise_schedule,
)
from repro.scheduling.task import Task, TaskSet

# Small harmonic-ish periods keep hyper-periods (and test time) bounded.
periods = st.sampled_from([2, 3, 4, 5, 6, 8, 10, 12])


@st.composite
def task_sets(draw, max_tasks=4, max_utilisation=0.75):
    count = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = []
    remaining = max_utilisation
    for index in range(count):
        period = draw(periods)
        max_wcet = max(1, int(period * min(remaining, 0.5)))
        wcet = draw(st.integers(min_value=1, max_value=max_wcet))
        remaining -= wcet / period
        if remaining < 0:
            break
        tasks.append(Task(name=f"t{index}", period_ms=float(period), deadline_ms=float(period), wcet_ms=float(wcet)))
    assume(tasks)
    ts = TaskSet()
    for task in tasks:
        ts.add(task)
    return ts


@given(task_sets())
@settings(max_examples=40, deadline=None)
def test_static_schedule_invariants(ts):
    """Whenever a static schedule is found, it satisfies all its constraints."""
    try:
        schedule = synthesise_schedule(ts)
    except SchedulingError:
        return
    assert schedule.is_valid()
    assert schedule.hyperperiod_ms == hyperperiod_ms(ts)
    # Every task has exactly hyperperiod/period jobs.
    for task in ts:
        expected_jobs = int(schedule.hyperperiod_ms / task.period_ms)
        assert len(schedule.jobs_of(task.name)) == expected_jobs
    # Dispatches are strictly periodic.
    for task in ts:
        dispatches = sorted(job.dispatch_tick for job in schedule.jobs_of(task.name))
        steps = {b - a for a, b in zip(dispatches, dispatches[1:])}
        assert steps <= {int(task.period_ms / schedule.tick_ms)}


@given(task_sets())
@settings(max_examples=40, deadline=None)
def test_static_schedulability_implies_preemptive_schedulability(ts):
    """A non-preemptive static schedule is also feasible for the preemptive baseline."""
    try:
        synthesise_schedule(ts)
    except SchedulingError:
        return
    assert simulate_preemptive(ts).schedulable


@given(task_sets())
@settings(max_examples=40, deadline=None)
def test_affine_export_covers_every_job(ts):
    from repro.scheduling.affine_export import export_affine_clocks

    try:
        schedule = synthesise_schedule(ts)
    except SchedulingError:
        return
    export = export_affine_clocks(schedule)
    for job in schedule.jobs:
        for kind in ("dispatch", "start", "complete", "deadline"):
            tick = getattr(job, f"{kind}_tick")
            assert any(clock.contains(tick) for clock in export.clock_of(job.task, kind))


@given(task_sets())
@settings(max_examples=40, deadline=None)
def test_utilisation_bound_sufficiency(ts):
    """If the Liu-Layland test passes, the preemptive RM simulation meets all deadlines."""
    report = analyse_schedulability(ts, preemptive=True)
    if report.utilisation_test_passed:
        assert simulate_preemptive(ts).schedulable


@given(task_sets(), st.sampled_from([SchedulingPolicy.RATE_MONOTONIC, SchedulingPolicy.EARLIEST_DEADLINE_FIRST,
                                     SchedulingPolicy.DEADLINE_MONOTONIC]))
@settings(max_examples=40, deadline=None)
def test_policies_agree_on_job_population(ts, policy):
    """All policies schedule the same set of jobs (only placement differs)."""
    try:
        schedule = synthesise_schedule(ts, StaticSchedulerConfig(policy=policy))
    except SchedulingError:
        return
    rm_jobs = {(job.task, job.job_index, job.dispatch_tick) for job in schedule.jobs}
    try:
        reference = synthesise_schedule(ts)
    except SchedulingError:
        return
    ref_jobs = {(job.task, job.job_index, job.dispatch_tick) for job in reference.jobs}
    assert rm_jobs == ref_jobs
