"""Tests of the task model extraction and the hyper-period computation."""

import pytest

from repro.aadl.properties import IOReference
from repro.scheduling.hyperperiod import hyperperiod_ms, hyperperiod_ticks, tick_resolution_ms, to_ticks
from repro.scheduling.task import Task, TaskSet, task_set_from_instance, task_set_from_threads


def make_task(name="t", period=4.0, deadline=None, wcet=1.0, offset=0.0, priority=None):
    return Task(
        name=name,
        period_ms=period,
        deadline_ms=deadline if deadline is not None else period,
        wcet_ms=wcet,
        offset_ms=offset,
        priority=priority,
    )


class TestTask:
    def test_utilisation(self):
        assert make_task(period=4, wcet=1).utilisation == pytest.approx(0.25)

    def test_release_times(self):
        assert make_task(period=4, offset=1).release_times(13) == [1, 5, 9]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_task(period=0)
        with pytest.raises(ValueError):
            make_task(deadline=-1)
        with pytest.raises(ValueError):
            make_task(wcet=5, deadline=4)

    def test_str_mentions_parameters(self):
        assert "T=4" in str(make_task()).replace(".0", "")


class TestTaskSet:
    def make_set(self):
        ts = TaskSet(processor_name="cpu0")
        ts.add(make_task("a", period=8, wcet=2))
        ts.add(make_task("b", period=4, wcet=1))
        ts.add(make_task("c", period=6, deadline=5, wcet=1))
        return ts

    def test_accessors(self):
        ts = self.make_set()
        assert len(ts) == 3
        assert ts.names() == ["a", "b", "c"]
        assert ts.by_name("b").period_ms == 4
        with pytest.raises(KeyError):
            ts.by_name("zzz")

    def test_utilisation_sum(self):
        assert self.make_set().utilisation == pytest.approx(2 / 8 + 1 / 4 + 1 / 6)

    def test_rm_and_dm_orders(self):
        ts = self.make_set()
        assert [t.name for t in ts.rm_sorted()] == ["b", "c", "a"]
        assert [t.name for t in ts.dm_sorted()] == ["b", "c", "a"]


class TestExtractionFromAadl:
    def test_case_study_task_set(self, pc_task_set):
        assert set(pc_task_set.names()) == {"thProducer", "thConsumer", "thProdTimer", "thConsTimer"}
        assert pc_task_set.by_name("thProducer").period_ms == 4.0
        assert pc_task_set.by_name("thConsumer").period_ms == 6.0
        assert pc_task_set.processor_name == "Processor1"

    def test_wcet_from_compute_execution_time(self, pc_task_set):
        assert pc_task_set.by_name("thProducer").wcet_ms == 1.0

    def test_io_time_specs_extracted(self, pc_task_set):
        producer = pc_task_set.by_name("thProducer")
        assert producer.input_time.reference is IOReference.DISPATCH
        assert producer.output_time.reference is IOReference.COMPLETION

    def test_default_wcet_fraction_applies(self, pc_root):
        threads = pc_root.find(["prProdCons"]).threads()
        task_set = task_set_from_threads(threads, default_wcet_fraction=0.5)
        # thTimer has an explicit Compute_Execution_Time, so only threads
        # without one would use the fraction; all case-study threads have one.
        assert task_set.by_name("thProdTimer").wcet_ms == 1.0

    def test_unknown_process_path_raises(self, pc_root):
        with pytest.raises(KeyError):
            task_set_from_instance(pc_root, ["missing"])

    def test_thread_without_period_raises(self):
        from repro.aadl.parser import parse_string
        from repro.aadl.instance import instantiate
        from repro.scheduling.task import task_from_thread

        text = """
        package P
        public
          thread t
          properties
            Dispatch_Protocol => Periodic;
          end t;
          thread implementation t.impl
          end t.impl;
          process p
          end p;
          process implementation p.impl
          subcomponents
            w: thread t.impl;
          end p.impl;
        end P;
        """
        root = instantiate(parse_string(text), "p.impl")
        with pytest.raises(ValueError):
            task_from_thread(root.subcomponents["w"])


class TestHyperperiod:
    def test_case_study_hyperperiod(self, pc_task_set):
        assert hyperperiod_ms(pc_task_set) == 24.0
        assert hyperperiod_ticks(pc_task_set) == 24

    def test_tick_resolution_integral_periods(self, pc_task_set):
        assert tick_resolution_ms(pc_task_set) == 1.0

    def test_tick_resolution_fractional_periods(self):
        tasks = [make_task("a", period=2.5, wcet=0.5), make_task("b", period=5.0, wcet=0.5)]
        assert tick_resolution_ms(tasks) == pytest.approx(0.5)
        assert hyperperiod_ms(tasks) == pytest.approx(5.0)
        assert hyperperiod_ticks(tasks) == 10

    def test_empty_task_set(self):
        assert hyperperiod_ms([]) == 0.0
        assert hyperperiod_ticks([]) == 0
        assert tick_resolution_ms([]) == 1.0

    def test_to_ticks_rounds_up(self):
        assert to_ticks(3.0, 1.0) == 3
        assert to_ticks(2.5, 1.0) == 3
        assert to_ticks(2.5, 0.5) == 5

    def test_non_harmonic_hyperperiod(self):
        tasks = [make_task("a", period=3), make_task("b", period=5), make_task("c", period=7)]
        assert hyperperiod_ms(tasks) == 105.0
