"""Tests of the static non-preemptive scheduler synthesis (Section IV-D)."""

import pytest

from repro.aadl.properties import IOReference, IOTimeSpec
from repro.scheduling.static_scheduler import (
    SchedulingError,
    SchedulingPolicy,
    StaticSchedulerConfig,
    synthesise_schedule,
)
from repro.scheduling.task import Task, TaskSet


def make_task(name, period, wcet, deadline=None, offset=0.0, priority=None,
              input_time=None, output_time=None):
    return Task(
        name=name,
        period_ms=period,
        deadline_ms=deadline if deadline is not None else period,
        wcet_ms=wcet,
        offset_ms=offset,
        priority=priority,
        input_time=input_time or IOTimeSpec(IOReference.DISPATCH),
        output_time=output_time or IOTimeSpec(IOReference.COMPLETION),
    )


def task_set(*tasks):
    ts = TaskSet()
    for task in tasks:
        ts.add(task)
    return ts


class TestPolicyParsing:
    def test_from_name_aliases(self):
        assert SchedulingPolicy.from_name("rms") is SchedulingPolicy.RATE_MONOTONIC
        assert SchedulingPolicy.from_name("EDF") is SchedulingPolicy.EARLIEST_DEADLINE_FIRST
        assert SchedulingPolicy.from_name("dm") is SchedulingPolicy.DEADLINE_MONOTONIC
        assert SchedulingPolicy.from_name("priority") is SchedulingPolicy.FIXED_PRIORITY

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            SchedulingPolicy.from_name("random")


class TestCaseStudySchedule:
    def test_rm_schedule_valid(self, pc_task_set):
        schedule = synthesise_schedule(pc_task_set)
        assert schedule.is_valid()
        assert schedule.hyperperiod_ms == 24.0
        assert schedule.hyperperiod_ticks == 24
        # 6 + 4 + 3 + 3 jobs inside the hyper-period.
        assert len(schedule.jobs) == 16

    def test_job_counts_per_task(self, pc_task_set):
        schedule = synthesise_schedule(pc_task_set)
        assert len(schedule.jobs_of("thProducer")) == 6
        assert len(schedule.jobs_of("thConsumer")) == 4
        assert len(schedule.jobs_of("thProdTimer")) == 3

    def test_dispatches_are_periodic(self, pc_task_set):
        schedule = synthesise_schedule(pc_task_set)
        dispatches = [job.dispatch_tick for job in schedule.jobs_of("thProducer")]
        assert dispatches == [0, 4, 8, 12, 16, 20]

    def test_all_deadlines_met(self, pc_task_set):
        schedule = synthesise_schedule(pc_task_set)
        for job in schedule.jobs:
            assert job.complete_tick <= job.deadline_tick

    def test_non_preemptive_mutual_exclusion(self, pc_task_set):
        schedule = synthesise_schedule(pc_task_set)
        intervals = schedule.busy_intervals()
        for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
            assert s2 >= e1

    def test_rm_priority_order_at_time_zero(self, pc_task_set):
        # At t=0 all four threads are released; under RM the producer (4 ms)
        # runs first, then the consumer (6 ms), then the timers (8 ms).
        schedule = synthesise_schedule(pc_task_set)
        first_jobs = sorted((job.start_tick, job.task) for job in schedule.jobs if job.dispatch_tick == 0)
        assert first_jobs[0][1] == "thProducer"
        assert first_jobs[1][1] == "thConsumer"

    def test_edf_schedule_also_valid(self, pc_task_set):
        schedule = synthesise_schedule(
            pc_task_set, StaticSchedulerConfig(policy=SchedulingPolicy.EARLIEST_DEADLINE_FIRST)
        )
        assert schedule.is_valid()
        assert len(schedule.jobs) == 16

    def test_utilisation_matches_task_set(self, pc_task_set):
        schedule = synthesise_schedule(pc_task_set)
        assert schedule.processor_utilisation() == pytest.approx(16 / 24)

    def test_table_rows(self, pc_task_set):
        schedule = synthesise_schedule(pc_task_set)
        rows = schedule.table()
        assert len(rows) == 16
        assert set(rows[0]) == {
            "task", "job", "dispatch_ms", "input_freeze_ms", "start_ms",
            "complete_ms", "output_send_ms", "deadline_ms",
        }

    def test_max_response(self, pc_task_set):
        schedule = synthesise_schedule(pc_task_set)
        assert schedule.max_response_ms("thProducer") <= 4.0
        assert schedule.max_response_ms("unknown") == 0.0


class TestEventPlacement:
    def test_input_freeze_at_dispatch_by_default(self):
        schedule = synthesise_schedule(task_set(make_task("a", 4, 1), make_task("b", 4, 1)))
        for job in schedule.jobs:
            assert job.input_freeze_tick == job.dispatch_tick

    def test_input_freeze_at_start_when_specified(self):
        spec = IOTimeSpec(IOReference.START)
        schedule = synthesise_schedule(
            task_set(make_task("a", 4, 1), make_task("b", 4, 1, input_time=spec))
        )
        delayed_job = [j for j in schedule.jobs_of("b") if j.start_tick > j.dispatch_tick]
        assert all(j.input_freeze_tick == j.start_tick for j in delayed_job)

    def test_output_at_deadline_for_delayed_connections(self):
        spec = IOTimeSpec(IOReference.DEADLINE)
        schedule = synthesise_schedule(task_set(make_task("a", 4, 1, output_time=spec)))
        for job in schedule.jobs:
            assert job.output_send_tick == job.deadline_tick

    def test_output_at_completion_by_default(self):
        schedule = synthesise_schedule(task_set(make_task("a", 4, 1)))
        for job in schedule.jobs:
            assert job.output_send_tick == job.complete_tick

    def test_offsets_shift_releases(self):
        # One task with offset 2: the single job of the hyper-period is
        # released at the offset, not at 0.
        schedule = synthesise_schedule(task_set(make_task("a", 4, 1, offset=2)))
        assert [job.dispatch_tick * schedule.tick_ms for job in schedule.jobs] == [2.0]

    def test_offsets_with_second_task_keep_periodicity(self):
        schedule = synthesise_schedule(task_set(make_task("a", 4, 1, offset=2), make_task("b", 8, 1)))
        assert [job.dispatch_tick for job in schedule.jobs_of("a")] == [2, 6]


class TestInfeasibleAndPolicies:
    def test_overload_detected(self):
        with pytest.raises(SchedulingError):
            synthesise_schedule(task_set(make_task("a", 4, 3), make_task("b", 4, 3)))

    def test_empty_task_set_rejected(self):
        with pytest.raises(SchedulingError):
            synthesise_schedule(task_set())

    def test_non_preemptive_blocking_can_break_rm_but_not_edf(self):
        # A long low-priority job blocks a tight high-priority one under RM
        # non-preemptive scheduling when released simultaneously is fine, but
        # the long job started earlier (offset 0) blocks the short task released
        # later. Under EDF the same blocking occurs: both policies must detect it.
        tasks = task_set(
            make_task("short", period=5, wcet=2, deadline=2, offset=1),
            make_task("long", period=20, wcet=4),
        )
        with pytest.raises(SchedulingError):
            synthesise_schedule(tasks)

    def test_fixed_priority_policy_uses_aadl_priorities(self):
        tasks = task_set(
            make_task("low", period=10, wcet=2, priority=10),
            make_task("high", period=10, wcet=2, priority=1),
        )
        schedule = synthesise_schedule(tasks, StaticSchedulerConfig(policy=SchedulingPolicy.FIXED_PRIORITY))
        first = min(schedule.jobs, key=lambda j: j.start_tick)
        assert first.task == "high"

    def test_deadline_monotonic_orders_by_deadline(self):
        tasks = task_set(
            make_task("loose", period=10, wcet=1, deadline=10),
            make_task("tight", period=10, wcet=1, deadline=3),
        )
        schedule = synthesise_schedule(tasks, StaticSchedulerConfig(policy=SchedulingPolicy.DEADLINE_MONOTONIC))
        first = min(schedule.jobs, key=lambda j: j.start_tick)
        assert first.task == "tight"

    def test_explicit_tick_override(self, pc_task_set):
        schedule = synthesise_schedule(pc_task_set, StaticSchedulerConfig(tick_ms=0.5))
        assert schedule.tick_ms == 0.5
        assert schedule.hyperperiod_ticks == 48
        assert schedule.is_valid()

    def test_fractional_periods_scheduled(self):
        tasks = task_set(make_task("a", period=2.5, wcet=0.5), make_task("b", period=5.0, wcet=1.0))
        schedule = synthesise_schedule(tasks)
        assert schedule.tick_ms == pytest.approx(0.5)
        assert schedule.is_valid()
