"""Tests of the schedulability / synchronizability analyses and the preemptive baseline."""

import pytest

from repro.scheduling.analysis import (
    analyse_schedulability,
    analyse_synchronizability,
    liu_layland_bound,
    utilisation,
)
from repro.scheduling.baseline import PreemptiveScheduler, simulate_preemptive
from repro.scheduling.static_scheduler import SchedulingPolicy, synthesise_schedule
from repro.scheduling.task import Task, TaskSet


def make_task(name, period, wcet, deadline=None, priority=None):
    return Task(name=name, period_ms=period, deadline_ms=deadline or period, wcet_ms=wcet, priority=priority)


def task_set(*tasks):
    ts = TaskSet()
    for t in tasks:
        ts.add(t)
    return ts


class TestSchedulability:
    def test_case_study_passes_utilisation_test(self, pc_task_set):
        report = analyse_schedulability(pc_task_set)
        assert report.total_utilisation == pytest.approx(2 / 3)
        assert report.utilisation_test_passed
        assert report.schedulable

    def test_liu_layland_bound_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.828, abs=1e-3)
        assert liu_layland_bound(0) == 1.0

    def test_non_preemptive_blocking_accounted(self, pc_task_set):
        report = analyse_schedulability(pc_task_set)
        producer = report.task("thProducer")
        assert producer.blocking_ms == 1.0  # blocked by one lower-priority job
        preemptive = analyse_schedulability(pc_task_set, preemptive=True)
        assert preemptive.task("thProducer").blocking_ms == 0.0

    def test_response_times_monotone_in_priority(self, pc_task_set):
        report = analyse_schedulability(pc_task_set)
        assert report.task("thProducer").response_time_ms <= report.task("thConsTimer").response_time_ms

    def test_unschedulable_set_detected(self):
        ts = task_set(make_task("a", 4, 3), make_task("b", 4, 3))
        report = analyse_schedulability(ts)
        assert not report.schedulable

    def test_utilisation_helper(self, pc_task_set):
        assert utilisation(pc_task_set) == pytest.approx(2 / 3)

    def test_summary_text(self, pc_task_set):
        text = analyse_schedulability(pc_task_set).summary()
        assert "Liu-Layland" in text and "thProducer" in text

    def test_unknown_task_lookup(self, pc_task_set):
        with pytest.raises(KeyError):
            analyse_schedulability(pc_task_set).task("ghost")


class TestSynchronizability:
    def test_case_study_relations(self, pc_task_set):
        report = analyse_synchronizability(pc_task_set)
        pair = report.pair("thProducer", "thConsumer")
        assert pair.relation[0:1] + pair.relation[2:3] == (2, 3)
        assert not pair.harmonic
        assert pair.common_hyperperiod_ms == 12.0

    def test_harmonic_pairs_detected(self, pc_task_set):
        report = analyse_synchronizability(pc_task_set)
        assert report.pair("thProducer", "thProdTimer").harmonic
        assert not report.all_harmonic

    def test_equal_periods_are_synchronisable(self, pc_task_set):
        report = analyse_synchronizability(pc_task_set)
        assert report.pair("thProdTimer", "thConsTimer").synchronisable

    def test_pair_count(self, pc_task_set):
        report = analyse_synchronizability(pc_task_set)
        assert len(report.pairs) == 6  # C(4, 2)

    def test_summary_and_missing_pair(self, pc_task_set):
        report = analyse_synchronizability(pc_task_set)
        assert "Synchronizability report" in report.summary()
        with pytest.raises(KeyError):
            report.pair("thProducer", "ghost")


class TestPreemptiveBaseline:
    def test_case_study_schedulable_under_preemptive_rm(self, pc_task_set):
        result = simulate_preemptive(pc_task_set)
        assert result.schedulable
        assert result.deadline_misses == 0
        assert result.hyperperiod_ticks == 24

    def test_response_times_within_deadlines(self, pc_task_set):
        result = simulate_preemptive(pc_task_set)
        assert result.max_response_ms("thProducer") <= 4.0
        assert result.max_response_ms("thConsumer") <= 6.0

    def test_preemption_occurs_when_long_low_priority_job_runs(self):
        ts = task_set(make_task("long", 20, 6), make_task("short", 5, 1))
        result = simulate_preemptive(ts)
        assert result.schedulable
        assert result.total_preemptions >= 1

    def test_blocking_breaks_non_preemptive_but_not_preemptive(self):
        # A long non-preemptable job blocks a tight short task: the static
        # non-preemptive synthesis fails while the preemptive baseline succeeds —
        # the predictability-vs-flexibility trade-off discussed in Section IV-D.
        from repro.scheduling.static_scheduler import SchedulingError

        ts = task_set(make_task("long", 20, 7), make_task("short", 5, 1, deadline=3))
        with pytest.raises(SchedulingError):
            synthesise_schedule(ts)
        assert simulate_preemptive(ts).schedulable

    def test_edf_baseline(self, pc_task_set):
        result = PreemptiveScheduler(pc_task_set, SchedulingPolicy.EARLIEST_DEADLINE_FIRST).run()
        assert result.schedulable

    def test_overload_reports_misses(self):
        ts = task_set(make_task("a", 4, 3), make_task("b", 4, 3))
        result = simulate_preemptive(ts)
        assert not result.schedulable
        assert result.deadline_misses >= 1

    def test_not_exportable_to_affine_clocks(self, pc_task_set):
        result = simulate_preemptive(pc_task_set)
        assert result.exportable_to_affine_clocks() is False

    def test_summary(self, pc_task_set):
        assert "baseline" in simulate_preemptive(pc_task_set).summary()

    def test_empty_task_set_rejected(self):
        with pytest.raises(ValueError):
            simulate_preemptive(task_set())

    def test_job_records_complete(self, pc_task_set):
        result = simulate_preemptive(pc_task_set)
        assert len(result.jobs) == 16
        assert all(job.completion_tick is not None for job in result.jobs)
