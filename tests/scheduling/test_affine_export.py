"""Tests of the schedule → affine clocks → SIGNAL scheduler export."""

import pytest

from repro.scheduling.affine_export import (
    BASE_CLOCK,
    AffineScheduleExport,
    export_affine_clocks,
    scheduler_process,
)
from repro.scheduling.static_scheduler import SchedulingPolicy, StaticSchedulerConfig, synthesise_schedule
from repro.sig.simulator import Scenario, Simulator


@pytest.fixture(scope="module")
def rm_schedule(pc_task_set):
    return synthesise_schedule(pc_task_set)


@pytest.fixture(scope="module")
def export(rm_schedule):
    return export_affine_clocks(rm_schedule)


class TestAffineExport:
    def test_dispatch_clocks_are_single_affine_relations(self, export):
        for task, period in [("thProducer", 4), ("thConsumer", 6), ("thProdTimer", 8), ("thConsTimer", 8)]:
            clock = export.single_affine(task, "dispatch")
            assert clock is not None, task
            assert clock.period == period and clock.phase == 0
            assert clock.reference == BASE_CLOCK

    def test_deadline_clocks_follow_periods(self, export):
        clock = export.single_affine("thProducer", "deadline")
        assert clock.period == 4 and clock.phase == 4

    def test_input_freeze_matches_dispatch_for_default_input_time(self, export):
        for task in ("thProducer", "thConsumer"):
            dispatch = export.single_affine(task, "dispatch")
            freeze = export.single_affine(task, "input_freeze")
            assert freeze is not None and freeze.equals(dispatch)

    def test_producer_start_is_strictly_periodic(self, export):
        # The highest-priority thread always starts right at its dispatch.
        start = export.single_affine("thProducer", "start")
        assert start is not None
        assert start.period == 4

    def test_non_periodic_streams_become_unions(self, export, rm_schedule):
        # The timer threads start at irregular offsets inside the hyper-period.
        clocks = export.clock_of("thConsTimer", "start")
        assert len(clocks) >= 1
        if len(clocks) > 1:
            assert all(c.period == rm_schedule.hyperperiod_ticks for c in clocks)
        assert not export.is_strictly_periodic("thConsTimer", "start") or len(clocks) == 1

    def test_all_clocks_cover_every_event_kind(self, export):
        kinds = {kind for _, kind in export.clocks}
        assert kinds == {"dispatch", "input_freeze", "start", "complete", "output_send", "deadline"}

    def test_start_clocks_mutually_disjoint(self, export):
        # Non-preemptive single processor: two jobs never start at the same tick.
        assert export.start_clocks_mutually_disjoint()

    def test_relations_between_dispatch_clocks(self, export):
        relations = export.relations("dispatch")
        assert relations
        producers = [r for r in relations if "thProducer" in (r.source.split(".")[0], r.target.split(".")[0])
                     and "thConsumer" in (r.source.split(".")[0], r.target.split(".")[0])]
        assert producers
        relation = producers[0]
        assert {relation.n, relation.d} == {2, 3}

    def test_summary_lists_every_stream(self, export):
        text = export.summary()
        assert "thProducer.dispatch" in text
        assert "hyper-period = 24 ticks" in text

    def test_clocks_match_schedule_ticks(self, export, rm_schedule):
        for job in rm_schedule.jobs:
            clocks = export.clock_of(job.task, "start")
            assert any(clock.contains(job.start_tick) for clock in clocks)


class TestSchedulerProcess:
    def test_process_has_one_output_per_stream(self, rm_schedule):
        model = scheduler_process(rm_schedule)
        outputs = {d.name for d in model.outputs()}
        assert "thProducer_dispatch" in outputs
        assert "thConsTimer_output_send" in outputs
        assert len(outputs) == 6 * 4

    def test_simulated_dispatch_clocks_match_affine_relations(self, rm_schedule):
        model = scheduler_process(rm_schedule)
        sc = Scenario(rm_schedule.hyperperiod_ticks).set_always(BASE_CLOCK)
        trace = Simulator(model).run(sc)
        assert trace.clock_of("thProducer_dispatch") == [0, 4, 8, 12, 16, 20]
        assert trace.clock_of("thConsumer_dispatch") == [0, 6, 12, 18]
        assert trace.clock_of("thProdTimer_dispatch") == [0, 8, 16]

    def test_simulated_start_times_match_schedule(self, rm_schedule):
        model = scheduler_process(rm_schedule)
        sc = Scenario(rm_schedule.hyperperiod_ticks).set_always(BASE_CLOCK)
        trace = Simulator(model).run(sc)
        for task in ("thProducer", "thConsumer", "thProdTimer", "thConsTimer"):
            expected = sorted(job.start_tick for job in rm_schedule.jobs_of(task))
            assert trace.clock_of(f"{task}_start") == expected

    def test_schedule_repeats_over_two_hyperperiods(self, rm_schedule):
        model = scheduler_process(rm_schedule)
        horizon = rm_schedule.hyperperiod_ticks
        sc = Scenario(2 * horizon).set_always(BASE_CLOCK)
        trace = Simulator(model).run(sc)
        first = [t for t in trace.clock_of("thConsumer_start") if t < horizon]
        second = [t - horizon for t in trace.clock_of("thConsumer_start") if t >= horizon]
        assert first == second

    def test_pragmas_record_policy_and_hyperperiod(self, rm_schedule):
        model = scheduler_process(rm_schedule)
        assert model.pragmas["policy"] == "RM"
        assert model.pragmas["hyperperiod_ticks"] == "24"

    def test_edf_process_differs_from_rm_only_in_placement(self, pc_task_set):
        edf = synthesise_schedule(pc_task_set, StaticSchedulerConfig(policy=SchedulingPolicy.EARLIEST_DEADLINE_FIRST))
        model = scheduler_process(edf, name="edf_scheduler")
        assert model.name == "edf_scheduler"
        assert {d.name for d in model.outputs()} == {
            f"{task}_{kind}"
            for task in ("thProducer", "thConsumer", "thProdTimer", "thConsTimer")
            for kind in ("dispatch", "input_freeze", "start", "complete", "output_send", "deadline")
        }
