"""Tier-1 enforcement of the documentation health checks.

Imports ``tools/check_docs.py`` (the script CI runs) and asserts both of
its checks are clean: no broken relative markdown links in README/ROADMAP/
``docs/``, and no missing docstrings or dangling ``__all__`` entries in the
engine and sink modules.
"""

import importlib.util
import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", os.path.join(_ROOT, "tools", "check_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_suite_exists():
    for name in ("ARCHITECTURE.md", "API.md", "PERFORMANCE.md"):
        assert os.path.exists(os.path.join(_ROOT, "docs", name)), f"docs/{name} is missing"


def test_readme_links_the_docs_suite():
    readme = open(os.path.join(_ROOT, "README.md"), "r", encoding="utf-8").read()
    for name in ("docs/ARCHITECTURE.md", "docs/API.md", "docs/PERFORMANCE.md"):
        assert name in readme, f"README.md does not link {name}"


def test_markdown_links_resolve(check_docs):
    problems = check_docs.check_markdown_links()
    assert problems == []


def test_engine_and_sink_docstrings_present(check_docs):
    problems = check_docs.check_docstrings()
    assert problems == []


def test_public_all_exports_resolve(check_docs):
    problems = check_docs.audit_all_exports()
    assert problems == []
