"""Tests of the ProducerConsumer case study, the generator and the catalog."""

import pytest

from repro.aadl.instance import instance_report, processor_bindings
from repro.aadl.validation import validate
from repro.casestudies import (
    CASE_STUDY_FACTS,
    CATALOG,
    GeneratorConfig,
    build_producer_consumer_model,
    catalog_names,
    generate_case_study,
    instantiate_producer_consumer,
    load_case_study,
    load_producer_consumer_model,
)
from repro.scheduling import hyperperiod_ms, task_set_from_instance


class TestProducerConsumer:
    def test_facts_match_paper(self):
        assert CASE_STUDY_FACTS["periods_ms"] == {
            "thProducer": 4.0,
            "thConsumer": 6.0,
            "thProdTimer": 8.0,
            "thConsTimer": 8.0,
        }
        assert CASE_STUDY_FACTS["hyperperiod_ms"] == 24.0

    def test_parsed_model_matches_facts(self, pc_root):
        process = pc_root.find(["prProdCons"])
        periods = {t.name: t.period_ms() for t in process.threads()}
        assert periods == CASE_STUDY_FACTS["periods_ms"]
        assert {s for s in pc_root.subcomponents} >= set(CASE_STUDY_FACTS["subsystems"])

    def test_validation_clean(self, pc_model, pc_root):
        assert not validate(pc_model, pc_root).has_errors

    def test_hyperperiod_from_model(self, pc_root):
        task_set = task_set_from_instance(pc_root, ["prProdCons"])
        assert hyperperiod_ms(task_set) == CASE_STUDY_FACTS["hyperperiod_ms"]

    def test_programmatic_builder_equivalent_to_text(self, pc_model):
        built = build_producer_consumer_model()
        assert built.classifier_count() == pc_model.classifier_count()
        text_root = instantiate_producer_consumer(pc_model)
        built_root = instantiate_producer_consumer(built)
        assert instance_report(built_root).as_dict() == instance_report(text_root).as_dict()
        built_periods = {t.name: t.period_ms() for t in built_root.find(["prProdCons"]).threads()}
        assert built_periods == CASE_STUDY_FACTS["periods_ms"]

    def test_programmatic_builder_binding(self):
        root = instantiate_producer_consumer(build_producer_consumer_model())
        bindings = processor_bindings(root)
        assert bindings["ProducerConsumerSystem.prProdCons"].name == "Processor1"

    def test_producer_automaton_shape(self, pc_root):
        producer = pc_root.find(["prProdCons", "thProducer"])
        triggers = [t.triggers[0] for t in producer.mode_transitions]
        assert triggers.count("pProdTimeOut") == 2  # the overlapping pair of E7


class TestGenerator:
    def test_thread_count_matches_config(self):
        config = GeneratorConfig(name="G1", processes=3, threads_per_process=4, seed=1)
        generated = generate_case_study(config)
        root = load_case_study  # silence linters
        from repro.aadl.instance import Instantiator

        instance = Instantiator(generated.model, default_package="G1").instantiate(generated.root_implementation)
        assert len(instance.threads()) == 12
        assert len(generated.thread_periods_ms) == 12

    def test_harmonic_periods_only_from_pool(self):
        from repro.casestudies.generator import HARMONIC_PERIODS

        generated = generate_case_study(GeneratorConfig(name="G2", harmonic=True, seed=3))
        assert set(generated.thread_periods_ms.values()) <= set(float(p) for p in HARMONIC_PERIODS)

    def test_generation_is_deterministic_per_seed(self):
        a = generate_case_study(GeneratorConfig(name="G3", seed=7))
        b = generate_case_study(GeneratorConfig(name="G3", seed=7))
        assert a.thread_periods_ms == b.thread_periods_ms

    def test_generated_model_is_valid(self):
        generated = generate_case_study(GeneratorConfig(name="G4", processes=2, seed=5))
        from repro.aadl.instance import Instantiator

        root = Instantiator(generated.model, default_package="G4").instantiate(generated.root_implementation)
        diagnostics = validate(generated.model, root)
        assert not diagnostics.has_errors

    def test_shared_data_and_connections_generated(self):
        generated = generate_case_study(
            GeneratorConfig(name="G5", threads_per_process=4, shared_data_per_process=2,
                            event_connections_per_process=3, seed=2)
        )
        from repro.aadl.instance import Instantiator

        root = Instantiator(generated.model, default_package="G5").instantiate(generated.root_implementation)
        report = instance_report(root)
        assert report.data == 2
        assert report.connections >= 4

    def test_processor_bindings_cover_processes(self):
        generated = generate_case_study(GeneratorConfig(name="G6", processes=4, seed=9))
        from repro.aadl.instance import Instantiator

        root = Instantiator(generated.model, default_package="G6").instantiate(generated.root_implementation)
        bindings = processor_bindings(root)
        assert len(bindings) == 4


class TestCatalog:
    def test_more_than_ten_case_studies(self):
        assert len(CATALOG) > 10
        assert len(set(catalog_names())) == len(CATALOG)

    def test_lookup(self):
        entry = load_case_study("producer_consumer")
        assert entry.root_implementation == "ProducerConsumerSystem.others"
        with pytest.raises(KeyError):
            load_case_study("missing")

    def test_every_entry_instantiates(self):
        for entry in CATALOG:
            root = entry.instantiate()
            assert instance_report(root).threads >= 2, entry.name

    def test_every_entry_has_description(self):
        assert all(entry.description for entry in CATALOG)
