"""Tests of the AADL unparser (round-trips) and the standard property knowledge."""

import pytest

from repro.aadl import stdlib
from repro.aadl.instance import instance_report, instantiate
from repro.aadl.model import ComponentCategory
from repro.aadl.parser import parse_string
from repro.aadl.printer import render_component_type, render_model, render_package


class TestRoundTrip:
    def test_case_study_roundtrip_preserves_classifiers(self, pc_model):
        text = render_model(pc_model)
        reparsed = parse_string(text)
        assert reparsed.classifier_count() == pc_model.classifier_count()

    def test_case_study_roundtrip_preserves_instance_shape(self, pc_model, pc_root):
        text = render_model(pc_model)
        reparsed = parse_string(text)
        root = instantiate(reparsed, "ProducerConsumerSystem.others", default_package="ProducerConsumer")
        assert instance_report(root).as_dict() == instance_report(pc_root).as_dict()

    def test_roundtrip_preserves_thread_properties(self, pc_model):
        reparsed = parse_string(render_model(pc_model))
        original = pc_model.find_type("thProducer")
        round_tripped = reparsed.find_type("thProducer")
        assert round_tripped.properties.value("Period") == original.properties.value("Period")
        assert round_tripped.properties.value("Dispatch_Protocol") == "Periodic"

    def test_roundtrip_preserves_modes(self, pc_model):
        reparsed = parse_string(render_model(pc_model))
        impl = reparsed.find_implementation("thProducer.impl")
        assert set(impl.modes) == {"idle", "producing", "error"}
        assert len(impl.mode_transitions) == 3

    def test_roundtrip_preserves_connection_timing(self):
        text = """
        package P
        public
          thread a
          features
            o: out data port;
            i: in data port;
          end a;
          thread implementation a.impl
          end a.impl;
          process p
          end p;
          process implementation p.impl
          subcomponents
            x: thread a.impl;
            y: thread a.impl;
          connections
            c: port x.o -> y.i {Timing => Delayed;};
          end p.impl;
        end P;
        """
        reparsed = parse_string(render_model(parse_string(text)))
        impl = reparsed.find_implementation("p.impl")
        assert impl.connections[0].timing == "delayed"

    def test_render_package_and_type_fragments(self, pc_model):
        package = pc_model.packages["ProducerConsumer"]
        assert "package ProducerConsumer" in render_package(package)
        fragment = render_component_type(pc_model.find_type("thProducer"))
        assert "thread thProducer" in fragment
        assert "Period => 4 ms;" in fragment

    def test_generated_models_roundtrip(self):
        from repro.casestudies import GeneratorConfig, generate_case_study

        generated = generate_case_study(GeneratorConfig(name="RT", processes=2, threads_per_process=3))
        reparsed = parse_string(render_model(generated.model))
        assert reparsed.classifier_count() == generated.model.classifier_count()


class TestStdlib:
    def test_lookup_is_case_insensitive_and_strips_qualifier(self):
        assert stdlib.lookup("period").name == "Period"
        assert stdlib.lookup("Timing_Properties::Period").name == "Period"
        assert stdlib.lookup("NotAProperty") is None

    def test_defaults(self):
        assert stdlib.default_value("Queue_Size") == 1
        assert stdlib.default_value("Queue_Processing_Protocol") == "FIFO"
        assert stdlib.default_value("Input_Time") == "Dispatch"
        assert stdlib.default_value("Period") is None

    def test_is_standard(self):
        assert stdlib.is_standard("Dispatch_Protocol")
        assert not stdlib.is_standard("My_Custom_Property")

    def test_applicability_categories(self):
        definition = stdlib.lookup("Actual_Processor_Binding")
        assert ComponentCategory.PROCESS in definition.applies_to

    def test_dispatch_protocol_literals(self):
        definition = stdlib.lookup("Dispatch_Protocol")
        assert "Periodic" in definition.literals and "Sporadic" in definition.literals
