"""Tests of the declarative and instance-level validation passes."""

import pytest

from repro.aadl.instance import instantiate
from repro.aadl.parser import parse_string
from repro.aadl.validation import validate, validate_declarative_model, validate_instance_model


def build(text, root=None):
    model = parse_string(text)
    instance = instantiate(model, root) if root else None
    return model, instance


class TestDeclarativeChecks:
    def test_case_study_is_clean(self, pc_model, pc_root):
        diagnostics = validate(pc_model, pc_root)
        assert not diagnostics.has_errors
        assert diagnostics.warnings == []

    def test_implementation_without_type(self):
        text = """
        package P
        public
          thread implementation ghost.impl
          end ghost.impl;
        end P;
        """
        model, _ = build(text)
        diagnostics = validate_declarative_model(model)
        assert any("no matching component type" in d.message for d in diagnostics.errors)

    def test_illegal_subcomponent_category(self):
        text = """
        package P
        public
          thread t
          end t;
          thread implementation t.impl
          end t.impl;
          processor cpu
          end cpu;
          process p
          end p;
          process implementation p.impl
          subcomponents
            c: processor cpu;
          end p.impl;
        end P;
        """
        model, _ = build(text)
        diagnostics = validate_declarative_model(model)
        assert any("not allowed inside" in d.message for d in diagnostics.errors)

    def test_unknown_classifier_reported(self):
        text = """
        package P
        public
          process p
          end p;
          process implementation p.impl
          subcomponents
            t: thread missing.impl;
          end p.impl;
        end P;
        """
        model, _ = build(text)
        diagnostics = validate_declarative_model(model)
        assert any("not found" in d.message for d in diagnostics.errors)

    def test_mode_transition_to_undeclared_mode(self):
        text = """
        package P
        public
          thread t
          features
            go: in event port;
          end t;
          thread implementation t.impl
          modes
            idle: initial mode;
            idle -[ go ]-> phantom;
          end t.impl;
        end P;
        """
        model, _ = build(text)
        diagnostics = validate_declarative_model(model)
        assert any("undeclared mode" in d.message for d in diagnostics.errors)


THREAD_TEMPLATE = """
package P
public
  thread t
  properties
    Dispatch_Protocol => Periodic;
    {properties}
  end t;
  thread implementation t.impl
  end t.impl;
  process p
  end p;
  process implementation p.impl
  subcomponents
    worker: thread t.impl;
  end p.impl;
end P;
"""


class TestInstanceChecks:
    def test_periodic_thread_without_period(self):
        model, root = build(THREAD_TEMPLATE.format(properties=""), "p.impl")
        diagnostics = validate_instance_model(root)
        assert any("no Period" in d.message for d in diagnostics.errors)

    def test_deadline_larger_than_period_warns(self):
        model, root = build(
            THREAD_TEMPLATE.format(properties="Period => 4 ms; Deadline => 6 ms;"), "p.impl"
        )
        diagnostics = validate_instance_model(root)
        assert any("exceeds Period" in d.message for d in diagnostics.warnings)

    def test_wcet_exceeding_deadline_is_error(self):
        model, root = build(
            THREAD_TEMPLATE.format(
                properties="Period => 4 ms; Deadline => 4 ms; Compute_Execution_Time => 0 ms .. 6 ms;"
            ),
            "p.impl",
        )
        diagnostics = validate_instance_model(root)
        assert any("exceeds Deadline" in d.message for d in diagnostics.errors)

    def test_missing_dispatch_protocol_warns_and_assumes_periodic(self):
        text = THREAD_TEMPLATE.replace("Dispatch_Protocol => Periodic;\n    {properties}", "Period => 4 ms;")
        model, root = build(text, "p.impl")
        diagnostics = validate_instance_model(root)
        assert any("Periodic is assumed" in d.message for d in diagnostics.warnings)

    def test_unbound_process_warns_when_processor_exists(self):
        text = """
        package P
        public
          thread t
          properties
            Dispatch_Protocol => Periodic;
            Period => 4 ms;
          end t;
          thread implementation t.impl
          end t.impl;
          process p
          end p;
          process implementation p.impl
          subcomponents
            worker: thread t.impl;
          end p.impl;
          processor cpu
          end cpu;
          system s
          end s;
          system implementation s.impl
          subcomponents
            host: process p.impl;
            cpu0: processor cpu;
          end s.impl;
        end P;
        """
        model, root = build(text, "s.impl")
        diagnostics = validate_instance_model(root)
        assert any("Actual_Processor_Binding" in d.message for d in diagnostics.warnings)

    def test_event_to_data_port_connection_is_error(self):
        text = """
        package P
        public
          thread src
          features
            o: out event port;
          end src;
          thread implementation src.impl
          end src.impl;
          thread dst
          features
            i: in data port;
          end dst;
          thread implementation dst.impl
          end dst.impl;
          process p
          end p;
          process implementation p.impl
          subcomponents
            a: thread src.impl;
            b: thread dst.impl;
          connections
            c: port a.o -> b.i;
          end p.impl;
        end P;
        """
        model, root = build(text, "p.impl")
        diagnostics = validate_instance_model(root)
        assert any("event port connected to a data port" in d.message for d in diagnostics.errors)

    def test_shared_data_info_emitted(self, pc_root):
        diagnostics = validate_instance_model(pc_root)
        assert any("mutual exclusion" in d.message for d in diagnostics.diagnostics if d.severity == "info")


class TestDiagnosticsCollector:
    def test_summary_and_counts(self):
        model, root = build(THREAD_TEMPLATE.format(properties=""), "p.impl")
        diagnostics = validate(model, root)
        assert diagnostics.has_errors
        assert "error" in diagnostics.summary()
        assert len(diagnostics.errors) + len(diagnostics.warnings) <= len(diagnostics.diagnostics)
