"""Tests of AADL property values, units and interpreted timing properties."""

import pytest

from repro.aadl.errors import AadlSemanticError
from repro.aadl.properties import (
    BooleanValue,
    DispatchProtocol,
    EnumerationValue,
    IntegerValue,
    IOReference,
    IOTimeSpec,
    ListValue,
    PropertyAssociation,
    PropertyMap,
    RangeValue,
    RealValue,
    RecordValue,
    ReferenceValue,
    StringValue,
    convert_time,
    io_time,
    ms,
    parse_io_time,
    parse_time_value,
)


class TestUnits:
    def test_ms_to_us(self):
        assert convert_time(4, "ms", "us") == pytest.approx(4000)

    def test_sec_to_ms(self):
        assert convert_time(1, "sec", "ms") == pytest.approx(1000)

    def test_identity(self):
        assert convert_time(7, "ms", "ms") == pytest.approx(7)

    def test_unknown_unit_raises(self):
        with pytest.raises(AadlSemanticError):
            convert_time(1, "fortnight")


class TestValues:
    def test_integer_with_unit(self):
        value = IntegerValue(4, "ms")
        assert value.python_value() == 4
        assert str(value) == "4 ms"

    def test_real_and_boolean_and_string(self):
        assert RealValue(1.5).python_value() == 1.5
        assert BooleanValue(True).python_value() is True
        assert str(BooleanValue(False)) == "false"
        assert StringValue("hi").python_value() == "hi"

    def test_enumeration(self):
        assert EnumerationValue("Periodic").python_value() == "Periodic"

    def test_reference(self):
        value = ReferenceValue(("Processor1",))
        assert value.python_value() == "Processor1"
        assert "reference" in str(value)

    def test_range(self):
        value = RangeValue(IntegerValue(0, "ms"), IntegerValue(1, "ms"))
        assert value.python_value() == (0, 1)

    def test_list(self):
        value = ListValue((IntegerValue(1), IntegerValue(2)))
        assert value.python_value() == [1, 2]

    def test_record_get_case_insensitive(self):
        record = RecordValue((("Time", EnumerationValue("Dispatch")),))
        assert record.get("time").literal == "Dispatch"
        assert record.get("missing") is None
        assert record.python_value() == {"Time": "Dispatch"}

    def test_ms_helper(self):
        assert isinstance(ms(4), IntegerValue)
        assert ms(4).unit == "ms"
        assert ms(2.5).python_value() == 2.5


class TestPropertyMap:
    def make_map(self):
        return PropertyMap(
            [
                PropertyAssociation("Period", ms(4)),
                PropertyAssociation("Timing_Properties::Deadline", ms(4)),
                PropertyAssociation("Period", ms(8)),
            ]
        )

    def test_case_insensitive_lookup(self):
        pmap = self.make_map()
        assert pmap.value("period") == 8  # last association wins
        assert pmap.value("DEADLINE") == 4

    def test_qualified_name_matches_base_name(self):
        pmap = self.make_map()
        assert pmap.value("Timing_Properties::Period") == 8

    def test_find_all(self):
        assert len(self.make_map().find_all("Period")) == 2

    def test_contains_and_default(self):
        pmap = self.make_map()
        assert "Period" in pmap
        assert "Priority" not in pmap
        assert pmap.value("Priority", 42) == 42

    def test_copy_is_independent(self):
        pmap = self.make_map()
        clone = pmap.copy()
        clone.add(PropertyAssociation("Priority", IntegerValue(1)))
        assert len(pmap) == 3 and len(clone) == 4

    def test_association_str_with_applies_to(self):
        association = PropertyAssociation(
            "Actual_Processor_Binding",
            ListValue((ReferenceValue(("Processor1",)),)),
            applies_to=(("prProdCons",),),
        )
        text = str(association)
        assert "applies to prProdCons" in text


class TestInterpretedProperties:
    def test_dispatch_protocol_from_literal(self):
        assert DispatchProtocol.from_literal("periodic") is DispatchProtocol.PERIODIC
        with pytest.raises(AadlSemanticError):
            DispatchProtocol.from_literal("quantum")

    def test_io_reference_from_literal(self):
        assert IOReference.from_literal("Completion") is IOReference.COMPLETION
        with pytest.raises(AadlSemanticError):
            IOReference.from_literal("whenever")

    def test_parse_time_value_integer_ms(self):
        assert parse_time_value(ms(4)) == 4.0

    def test_parse_time_value_range_uses_upper_bound(self):
        assert parse_time_value(RangeValue(ms(0), ms(2))) == 2.0

    def test_parse_time_value_converts_units(self):
        assert parse_time_value(IntegerValue(1, "sec")) == 1000.0

    def test_parse_time_value_rejects_strings(self):
        with pytest.raises(AadlSemanticError):
            parse_time_value(StringValue("soon"))

    def test_parse_io_time_record(self):
        specs = parse_io_time(io_time("Dispatch", 1.0))
        assert specs[0].reference is IOReference.DISPATCH
        assert specs[0].offset_ms() == 1.0

    def test_parse_io_time_list(self):
        value = ListValue((io_time("Start", 0.0), io_time("Completion", 0.5)))
        specs = parse_io_time(value)
        assert [s.reference for s in specs] == [IOReference.START, IOReference.COMPLETION]

    def test_parse_io_time_bare_enumeration(self):
        specs = parse_io_time(EnumerationValue("Deadline"))
        assert specs[0].reference is IOReference.DEADLINE

    def test_io_time_spec_str(self):
        assert "Dispatch" in str(IOTimeSpec(IOReference.DISPATCH))
