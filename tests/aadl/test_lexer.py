"""Tests of the AADL lexer."""

import pytest

from repro.aadl.errors import AadlSyntaxError
from repro.aadl.lexer import Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text) if t.kind is not TokenKind.END_OF_FILE]


def texts(text):
    return [t.text for t in tokenize(text) if t.kind is not TokenKind.END_OF_FILE]


class TestBasicTokens:
    def test_identifiers_and_punctuation(self):
        assert texts("thread thProducer ;") == ["thread", "thProducer", ";"]

    def test_numbers(self):
        tokens = tokenize("4 4.5 1e3")
        assert tokens[0].kind is TokenKind.INTEGER
        assert tokens[1].kind is TokenKind.REAL
        assert tokens[2].kind is TokenKind.REAL

    def test_number_followed_by_range_operator(self):
        assert texts("0 .. 1") == ["0", "..", "1"]
        assert texts("0..1") == ["0", "..", "1"]

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "hello world"

    def test_unterminated_string_raises(self):
        with pytest.raises(AadlSyntaxError):
            tokenize('"unterminated')

    def test_unexpected_character_raises(self):
        with pytest.raises(AadlSyntaxError):
            tokenize("§")

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.END_OF_FILE


class TestMultiCharPunctuation:
    def test_arrow_and_association(self):
        assert texts("a => b -> c +=> d") == ["a", "=>", "b", "->", "c", "+=>", "d"]

    def test_double_colon(self):
        assert texts("SEI::Period") == ["SEI", "::", "Period"]

    def test_mode_transition_brackets(self):
        assert texts("idle -[ start ]-> running") == ["idle", "-[", "start", "]->", "running"]

    def test_bidirectional_connection(self):
        assert "<->" in texts("a <-> b")


class TestCommentsAndLocations:
    def test_line_comments_skipped(self):
        assert texts("thread -- comment here\n th1") == ["thread", "th1"]

    def test_locations_track_lines_and_columns(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_keyword_helpers_case_insensitive(self):
        token = tokenize("THREAD")[0]
        assert token.is_keyword("thread")
        assert not token.is_keyword("process")

    def test_is_punct_helper(self):
        token = tokenize(";")[0]
        assert token.is_punct(";")
        assert not token.is_punct(":")
