"""Tests of the instance model: instantiation, properties, bindings."""

import pytest

from repro.aadl.errors import AadlInstantiationError
from repro.aadl.instance import Instantiator, instance_report, instantiate, processor_bindings
from repro.aadl.model import ComponentCategory
from repro.aadl.parser import parse_string


class TestCaseStudyInstance:
    def test_instance_tree_shape(self, pc_root):
        assert pc_root.category is ComponentCategory.SYSTEM
        assert set(pc_root.subcomponents) == {"prProdCons", "Processor1", "sysEnv", "sysOperatorDisplay"}

    def test_report_counts(self, pc_root):
        report = instance_report(pc_root)
        assert report.threads == 4
        assert report.processes == 1
        assert report.processors == 1
        assert report.data == 1
        assert report.connections == 16

    def test_qualified_names_and_paths(self, pc_root):
        producer = pc_root.find(["prProdCons", "thProducer"])
        assert producer.qualified_name == "ProducerConsumerSystem.prProdCons.thProducer"
        assert producer.path == ("ProducerConsumerSystem", "prProdCons", "thProducer")
        assert producer.root() is pc_root

    def test_thread_features_inherited_from_type(self, pc_root):
        producer = pc_root.find(["prProdCons", "thProducer"])
        assert "pProdStart" in producer.features
        assert producer.features["pProdStart"].is_port
        assert "reqQueue" in producer.features
        assert producer.features["reqQueue"].is_data_access

    def test_period_and_deadline_interpretation(self, pc_root, pc_process):
        periods = {t.name: t.period_ms() for t in pc_process.threads()}
        assert periods == {"thProducer": 4.0, "thConsumer": 6.0, "thProdTimer": 8.0, "thConsTimer": 8.0}
        assert pc_process.subcomponents["thProducer"].deadline_ms() == 4.0

    def test_dispatch_protocol(self, pc_root):
        producer = pc_root.find(["prProdCons", "thProducer"])
        assert producer.dispatch_protocol() == "Periodic"

    def test_connection_instances_resolved(self, pc_process):
        names = {c.name for c in pc_process.connections}
        assert "cnxProdStartTimer" in names
        connection = next(c for c in pc_process.connections if c.name == "cnxProdStartTimer")
        assert connection.source.owner.name == "thProducer"
        assert connection.destination.owner.name == "thProdTimer"

    def test_data_access_connection_uses_synthetic_feature(self, pc_process):
        access = next(c for c in pc_process.connections if c.name == "accProducer")
        assert access.source.owner.name == "Queue"

    def test_in_out_port_queries(self, pc_root):
        producer = pc_root.find(["prProdCons", "thProducer"])
        in_names = {f.name for f in producer.in_ports()}
        out_names = {f.name for f in producer.out_ports()}
        assert in_names == {"pProdStart", "pProdTimeOut"}
        assert "pProdStartTimer" in out_names

    def test_processor_binding_resolution(self, pc_root):
        bindings = processor_bindings(pc_root)
        assert bindings["ProducerConsumerSystem.prProdCons"].name == "Processor1"

    def test_mode_automaton_instantiated(self, pc_root):
        producer = pc_root.find(["prProdCons", "thProducer"])
        assert set(producer.modes) == {"idle", "producing", "error"}
        assert len(producer.mode_transitions) == 3

    def test_port_queue_size_property(self, pc_root):
        timer = pc_root.find(["prProdCons", "thProdTimer"])
        assert timer.features["pStartTimer"].declaration.properties.value("Queue_Size") == 2

    def test_find_feature_by_path(self, pc_root):
        feature = pc_root.find_feature(["prProdCons", "thProducer", "pProdStart"])
        assert feature is not None and feature.name == "pProdStart"
        assert pc_root.find_feature(["nope"]) is None

    def test_instances_of_category(self, pc_root):
        assert len(pc_root.instances_of(ComponentCategory.SYSTEM)) == 3
        assert len(pc_root.devices()) == 0


class TestInstantiationErrors:
    def test_unknown_root_raises(self, pc_model):
        with pytest.raises(AadlInstantiationError):
            Instantiator(pc_model).instantiate("Missing.impl")

    def test_unknown_subcomponent_classifier_raises(self):
        text = """
        package P
        public
          process p
          end p;
          process implementation p.impl
          subcomponents
            t: thread ghost.impl;
          end p.impl;
        end P;
        """
        model = parse_string(text)
        with pytest.raises(AadlInstantiationError):
            instantiate(model, "p.impl")

    def test_unresolvable_connection_raises(self):
        text = """
        package P
        public
          thread t
          features
            i: in event port;
          end t;
          thread implementation t.impl
          end t.impl;
          process p
          end p;
          process implementation p.impl
          subcomponents
            a: thread t.impl;
          connections
            c: port a.missing -> a.i;
          end p.impl;
        end P;
        """
        model = parse_string(text)
        with pytest.raises(AadlInstantiationError):
            instantiate(model, "p.impl")

    def test_subcomponent_without_classifier_ok(self):
        text = """
        package P
        public
          process p
          end p;
          process implementation p.impl
          subcomponents
            buffer: data;
          end p.impl;
        end P;
        """
        root = instantiate(parse_string(text), "p.impl")
        assert root.subcomponents["buffer"].component_type is None
