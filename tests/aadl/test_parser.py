"""Tests of the AADL parser on the textual subset."""

import pytest

from repro.aadl.errors import AadlSyntaxError
from repro.aadl.model import (
    AccessKind,
    ComponentCategory,
    ConnectionKind,
    DataAccess,
    Port,
    PortDirection,
    PortKind,
)
from repro.aadl.parser import parse_string
from repro.aadl.properties import IntegerValue, ListValue, RangeValue, RecordValue, ReferenceValue


SMALL_PACKAGE = """
package Small
public
  thread worker
  features
    input: in event data port;
    output: out data port;
    command: in event port {Queue_Size => 3;};
    store: requires data access;
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 1 ms .. 2 ms;
    Input_Time => ([Time => Dispatch; Offset => 0 ms .. 0 ms;]);
  end worker;

  thread implementation worker.impl
  end worker.impl;

  process host
  features
    feed: in event port;
  end host;

  process implementation host.impl
  subcomponents
    w1: thread worker.impl;
    w2: thread worker.impl;
    buffer: data;
  connections
    c0: port feed -> w1.command;
    c1: port w1.output -> w2.input {Timing => Delayed;};
    a0: data access buffer -> w1.store;
  end host.impl;

  processor cpu
  end cpu;

  system rig
  end rig;

  system implementation rig.impl
  subcomponents
    host: process host.impl;
    cpu0: processor cpu;
  properties
    Actual_Processor_Binding => (reference (cpu0)) applies to host;
  end rig.impl;
end Small;
"""


@pytest.fixture(scope="module")
def small_model():
    return parse_string(SMALL_PACKAGE)


class TestPackagesAndClassifiers:
    def test_package_parsed(self, small_model):
        assert "Small" in small_model.packages
        package = small_model.packages["Small"]
        assert set(package.types) == {"worker", "host", "cpu", "rig"}
        assert set(package.implementations) == {"worker.impl", "host.impl", "rig.impl"}

    def test_categories(self, small_model):
        package = small_model.packages["Small"]
        assert package.types["worker"].category is ComponentCategory.THREAD
        assert package.types["cpu"].category is ComponentCategory.PROCESSOR
        assert package.implementations["rig.impl"].category is ComponentCategory.SYSTEM

    def test_lookup_helpers(self, small_model):
        assert small_model.find_type("worker") is not None
        assert small_model.find_implementation("worker.impl") is not None
        assert small_model.find_classifier("Small::worker") is not None
        assert small_model.find_type("nonexistent") is None

    def test_component_counts(self, small_model):
        counts = small_model.component_counts()
        assert counts["thread"] == 1
        assert counts["system"] == 1
        assert small_model.classifier_count() == 7


class TestFeatures:
    def test_port_kinds_and_directions(self, small_model):
        worker = small_model.find_type("worker")
        input_port = worker.features["input"]
        assert isinstance(input_port, Port)
        assert input_port.kind is PortKind.EVENT_DATA
        assert input_port.direction is PortDirection.IN
        assert worker.features["output"].kind is PortKind.DATA
        assert worker.features["output"].direction is PortDirection.OUT
        assert worker.features["command"].kind is PortKind.EVENT

    def test_feature_property_block(self, small_model):
        worker = small_model.find_type("worker")
        assert worker.features["command"].properties.value("Queue_Size") == 3

    def test_data_access_feature(self, small_model):
        worker = small_model.find_type("worker")
        store = worker.features["store"]
        assert isinstance(store, DataAccess)
        assert store.access is AccessKind.REQUIRES


class TestProperties:
    def test_time_property_with_unit(self, small_model):
        worker = small_model.find_type("worker")
        period = worker.properties.find("Period")
        assert isinstance(period.value, IntegerValue)
        assert period.value.unit == "ms"

    def test_range_property(self, small_model):
        worker = small_model.find_type("worker")
        wcet = worker.properties.find("Compute_Execution_Time")
        assert isinstance(wcet.value, RangeValue)

    def test_record_list_property(self, small_model):
        worker = small_model.find_type("worker")
        input_time = worker.properties.find("Input_Time")
        assert isinstance(input_time.value, ListValue)
        assert isinstance(input_time.value.items[0], RecordValue)

    def test_reference_with_applies_to(self, small_model):
        rig = small_model.find_implementation("rig.impl")
        binding = rig.properties.find("Actual_Processor_Binding")
        assert binding.applies_to == (("host",),)
        assert isinstance(binding.value.items[0], ReferenceValue)


class TestSubcomponentsAndConnections:
    def test_subcomponents(self, small_model):
        host = small_model.find_implementation("host.impl")
        assert set(host.subcomponents) == {"w1", "w2", "buffer"}
        assert host.subcomponents["buffer"].category is ComponentCategory.DATA
        assert host.subcomponents["buffer"].classifier is None
        assert host.subcomponents["w1"].classifier == "worker.impl"

    def test_port_connections(self, small_model):
        host = small_model.find_implementation("host.impl")
        c0 = host.connections[0]
        assert c0.kind is ConnectionKind.PORT
        assert c0.source.subcomponent is None and c0.source.feature == "feed"
        assert c0.destination.subcomponent == "w1"

    def test_connection_timing_property_block(self, small_model):
        host = small_model.find_implementation("host.impl")
        c1 = next(c for c in host.connections if c.name == "c1")
        assert c1.timing == "delayed"

    def test_data_access_connection(self, small_model):
        host = small_model.find_implementation("host.impl")
        a0 = next(c for c in host.connections if c.name == "a0")
        assert a0.kind is ConnectionKind.DATA_ACCESS


class TestModesAndPropertySets:
    MODES = """
    package M
    public
      thread t
      end t;
      thread implementation t.impl
      modes
        idle: initial mode;
        busy: mode;
        go: idle -[ start ]-> busy;
        busy -[ stop ]-> idle {Priority => 2;};
      end t.impl;
    end M;
    """

    def test_modes_and_transitions(self):
        model = parse_string(self.MODES)
        impl = model.find_implementation("t.impl")
        assert impl.modes["idle"].initial
        assert not impl.modes["busy"].initial
        assert len(impl.mode_transitions) == 2
        named = impl.mode_transitions[0]
        assert named.name == "go" and named.triggers == ("start",)
        assert impl.mode_transitions[1].priority == 2

    def test_property_set_recorded(self):
        text = """
        property set MyProps is
          Budget: aadlinteger applies to (thread);
        end MyProps;
        package P
        public
          data d
          end d;
        end P;
        """
        model = parse_string(text)
        assert "MyProps" in model.property_sets
        assert "Budget" in model.property_sets["MyProps"].declarations

    def test_with_clause_and_none_sections(self):
        text = """
        package P
        public
          with Base_Types;
          thread t
          features
            none;
          properties
            none;
          end t;
        end P;
        """
        model = parse_string(text)
        assert model.packages["P"].imports == ["Base_Types"]
        assert model.find_type("t").features == {}


class TestErrors:
    def test_missing_end_raises(self):
        with pytest.raises(AadlSyntaxError):
            parse_string("package P\npublic\n  thread t\n")

    def test_unknown_top_level_raises(self):
        with pytest.raises(AadlSyntaxError):
            parse_string("banana P;")

    def test_bad_range_bounds(self):
        with pytest.raises(AadlSyntaxError):
            parse_string(
                "package P\npublic\n  thread t\n  properties\n    Period => abc .. 3;\n  end t;\nend P;"
            )
