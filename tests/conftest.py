"""Shared fixtures of the test suite.

The heavier artefacts (the parsed ProducerConsumer model, its instance tree,
the full translation and a complete tool-chain run) are session-scoped so the
many tests that inspect them do not rebuild them over and over.
"""

from __future__ import annotations

import os

import pytest

from repro.casestudies import (
    PRODUCER_CONSUMER_AADL,
    instantiate_producer_consumer,
    load_producer_consumer_model,
)
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain, translate_system
from repro.scheduling import task_set_from_instance


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the persistent artifact cache at a per-session temp directory.

    CLI invocations enable the store by default; without this fixture a test
    run would read from (and write into) the developer's real
    ``~/.cache/repro``, making tests order-dependent across repo versions.
    Store-specific tests that need their own roots pass explicit
    ``ArtifactStore(root)`` instances or override ``REPRO_CACHE_DIR``
    themselves.
    """
    root = str(tmp_path_factory.mktemp("repro-cache"))
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = root
    yield root
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def pc_model():
    """Parsed declarative model of the ProducerConsumer case study."""
    return load_producer_consumer_model()


@pytest.fixture(scope="session")
def pc_root(pc_model):
    """Instance tree of the ProducerConsumer case study."""
    return instantiate_producer_consumer(pc_model)


@pytest.fixture(scope="session")
def pc_process(pc_root):
    """The prProdCons process instance."""
    return pc_root.find(["prProdCons"])


@pytest.fixture(scope="session")
def pc_task_set(pc_root):
    """Task set of the four case-study threads."""
    return task_set_from_instance(pc_root, ["prProdCons"])


@pytest.fixture(scope="session")
def pc_translation(pc_root):
    """Full ASME2SSME translation of the case study (with scheduler)."""
    return translate_system(pc_root)


@pytest.fixture(scope="session")
def pc_toolchain():
    """Complete tool-chain run on the case study (2 hyper-periods simulated)."""
    options = ToolchainOptions(
        root_implementation="ProducerConsumerSystem.others",
        default_package="ProducerConsumer",
        simulate_hyperperiods=2,
        stimuli_periods={"sysEnv_pProdStart_stimulus": 4, "sysEnv_pConsStart_stimulus": 6},
    )
    return run_toolchain(PRODUCER_CONSUMER_AADL, options)
