"""Symbolic-scenario parity over the full case-study catalog.

A symbolic scenario (periodic/constant/sparse rules evaluated lazily) must
be observationally identical to its eagerly materialised
:class:`~repro.sig.scenario.ExplicitRule` equivalent: same flows bit for
bit — including the Python types of every value — same warnings, on the
``reference``, ``compiled`` and ``vectorized`` backends, sequentially and
across ``workers=N`` sharded batches.  This is the E15 acceptance gate's
correctness half (the memory half lives in
``benchmarks/test_bench_e15_scenario_memory.py``).
"""

import pytest

from repro.casestudies import catalog_names, load_case_study, scenario_sweep
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain
from repro.scheduling.static_scheduler import SchedulingError
from repro.sig.engine import simulate, simulate_batch
from repro.sig.scenario import ExplicitRule


@pytest.fixture(scope="module")
def translated():
    """Translate each catalog entry once, caching per module."""
    cache = {}

    def get(name):
        if name not in cache:
            entry = load_case_study(name)
            options = ToolchainOptions(
                root_implementation=entry.root_implementation,
                default_package=entry.default_package,
                simulate_hyperperiods=0,
                cost_model=None,
            )
            try:
                cache[name] = run_toolchain(entry.load_model(), options)
            except SchedulingError:
                options.translation = TranslationConfig(include_scheduler=False)
                cache[name] = run_toolchain(entry.load_model(), options)
        return cache[name]

    return get


def _scenario_length(result, fallback=24, cap=None):
    if result.schedules:
        length = next(iter(result.schedules.values())).simulation_length(1)
    else:
        length = fallback
    return min(length, cap) if cap else length


def _assert_traces_identical(reference, candidate, context):
    assert candidate.length == reference.length, context
    assert set(candidate.flows) == set(reference.flows), context
    for signal in reference.flows:
        assert candidate.flows[signal] == reference.flows[signal], (
            f"{context}: flow of {signal!r} diverges"
        )
        for expected, actual in zip(
            reference.flows[signal].values, candidate.flows[signal].values
        ):
            assert type(expected) is type(actual), (
                f"{context}: {signal!r} value {actual!r} has type "
                f"{type(actual).__name__}, expected {type(expected).__name__}"
            )
    assert candidate.warnings == reference.warnings, context


@pytest.mark.parametrize("name", catalog_names())
@pytest.mark.parametrize("backend", ["reference", "compiled", "vectorized", "lowered"])
def test_symbolic_scenarios_match_materialized(name, backend, translated, recwarn):
    """Single-run parity: symbolic rules versus their eager expansion."""
    result = translated(name)
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=48), variants=2, seed=23
    )
    # Sparse exceptions on top of the periodic stimuli exercise the overlay
    # composition on every model of the catalog.
    for scenario in scenarios:
        stimuli = [n for n in scenario.inputs if not n.endswith("tick")]
        if stimuli:
            scenario.set_at(stimuli[0], {0: True, min(3, scenario.length - 1): True})

    backend_options = {"block_size": 13} if backend == "vectorized" else None
    for index, scenario in enumerate(scenarios):
        eager = scenario.materialized()
        assert all(
            isinstance(rule, ExplicitRule) for rule in eager.inputs.values()
        )
        symbolic_trace = simulate(
            system_model,
            scenario,
            strict=False,
            backend=backend,
            backend_options=backend_options,
        )
        eager_trace = simulate(
            system_model,
            eager,
            strict=False,
            backend=backend,
            backend_options=backend_options,
        )
        _assert_traces_identical(
            eager_trace, symbolic_trace, f"{name}, {backend}, scenario {index}"
        )


@pytest.mark.parametrize("name", ["producer_consumer", "cruise_control"])
def test_symbolic_scenarios_match_materialized_in_worker_batches(name, translated):
    """Sharded-batch parity: the rules (not lists) cross process boundaries."""
    result = translated(name)
    system_model = result.translation.system_model
    length = _scenario_length(result, cap=32)
    symbolic = scenario_sweep(system_model, length=length, variants=3, seed=7)
    eager = [scenario.materialized() for scenario in symbolic]

    batch_symbolic = simulate_batch(
        system_model, symbolic, strict=False, collect_errors=True, workers=2
    )
    batch_eager = simulate_batch(
        system_model, eager, strict=False, collect_errors=True, workers=2
    )
    assert [i for i, _ in batch_symbolic.errors] == [i for i, _ in batch_eager.errors]
    for index, (sym_trace, eag_trace) in enumerate(
        zip(batch_symbolic.traces, batch_eager.traces)
    ):
        if eag_trace is None:
            assert sym_trace is None
            continue
        _assert_traces_identical(eag_trace, sym_trace, f"{name}, batch scenario {index}")


@pytest.mark.parametrize("name", ["producer_consumer"])
def test_unbounded_sweep_scenarios_match_bounded(name, translated):
    """One unbounded symbolic scenario run at a chosen length equals the
    bounded scenario built directly at that length."""
    result = translated(name)
    system_model = result.translation.system_model
    length = _scenario_length(result, cap=32)
    bounded = scenario_sweep(system_model, length=length, variants=2, seed=11)
    unbounded = scenario_sweep(system_model, length=None, variants=2, seed=11)

    reference = simulate_batch(system_model, bounded, strict=False)
    override = simulate_batch(system_model, unbounded, strict=False, length=length)
    for index, (expected, actual) in enumerate(
        zip(reference.traces, override.traces)
    ):
        _assert_traces_identical(expected, actual, f"{name}, sweep scenario {index}")
