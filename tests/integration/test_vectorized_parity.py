"""Vectorized-backend parity over the full case-study catalog.

The ``vectorized`` backend must be a drop-in replacement for the compiled
execution plan (and therefore for the reference interpreter): same flows
bit-for-bit — including the Python *types* of every value — same warning
list, same errors, on the single-run path, the sharded batch path and the
streaming-sink path.  Odd block sizes exercise the block boundaries.
"""

import pytest

from repro.casestudies import catalog_names, load_case_study, scenario_sweep
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain
from repro.scheduling.static_scheduler import SchedulingError
from repro.sig.engine import CompiledBackend, VectorizedBackend, simulate_batch
from repro.sig.sinks import MaterializeSink, StatisticsSink


@pytest.fixture(scope="module")
def translated():
    """Translate each catalog entry once, caching per module."""
    cache = {}

    def get(name):
        if name not in cache:
            entry = load_case_study(name)
            options = ToolchainOptions(
                root_implementation=entry.root_implementation,
                default_package=entry.default_package,
                simulate_hyperperiods=0,
                cost_model=None,
            )
            try:
                cache[name] = run_toolchain(entry.load_model(), options)
            except SchedulingError:
                options.translation = TranslationConfig(include_scheduler=False)
                cache[name] = run_toolchain(entry.load_model(), options)
        return cache[name]

    return get


def _scenario_length(result, fallback=24, cap=None):
    if result.schedules:
        length = next(iter(result.schedules.values())).simulation_length(1)
    else:
        length = fallback
    return min(length, cap) if cap else length


def _assert_traces_identical(reference, candidate, context):
    assert candidate.length == reference.length, context
    assert set(candidate.flows) == set(reference.flows), context
    for signal in reference.flows:
        assert candidate.flows[signal] == reference.flows[signal], (
            f"{context}: flow of {signal!r} diverges"
        )
        for expected, actual in zip(
            reference.flows[signal].values, candidate.flows[signal].values
        ):
            assert type(expected) is type(actual), (
                f"{context}: {signal!r} value {actual!r} has type "
                f"{type(actual).__name__}, expected {type(expected).__name__}"
            )
    assert candidate.warnings == reference.warnings, context


@pytest.mark.parametrize("name", catalog_names())
def test_vectorized_backend_produces_identical_traces(name, translated):
    """Single-run trace, value-type and warning parity, odd block size."""
    result = translated(name)
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=48), variants=2, seed=17
    )

    compiled = CompiledBackend(system_model, strict=False)
    vectorized = VectorizedBackend(system_model, strict=False, block_size=13)
    for index, scenario in enumerate(scenarios):
        reference_trace = compiled.run(scenario)
        trace = vectorized.run(scenario)
        _assert_traces_identical(reference_trace, trace, f"{name}, scenario {index}")


@pytest.mark.parametrize("name", catalog_names())
def test_vectorized_backend_streams_identically(name, translated):
    """Streaming sinks observe the exact same instants as on ``compiled``."""
    result = translated(name)
    system_model = result.translation.system_model
    scenario = scenario_sweep(
        system_model, length=_scenario_length(result, cap=32), variants=1, seed=5
    )[0]

    sinks = {}
    for factory in (CompiledBackend, VectorizedBackend):
        materialize, stats = MaterializeSink(), StatisticsSink()
        runner = factory(system_model, strict=False)
        assert runner.run(scenario, sinks=[materialize, stats]) is None
        sinks[factory.name] = (materialize.trace, stats.result())

    compiled_trace, compiled_stats = sinks["compiled"]
    vector_trace, vector_stats = sinks["vectorized"]
    _assert_traces_identical(compiled_trace, vector_trace, name)
    assert {
        s: vector_stats.count_present(s) for s in vector_stats.signals()
    } == {s: compiled_stats.count_present(s) for s in compiled_stats.signals()}


@pytest.mark.parametrize("name", ["producer_consumer", "autobrake"])
def test_vectorized_batch_workers_identical(name, translated):
    """``simulate_batch(workers=2)`` on the vectorized backend matches the
    sequential compiled run bit for bit (plans pickled or fork-inherited)."""
    result = translated(name)
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=24), variants=4, seed=9
    )

    compiled = simulate_batch(
        system_model, scenarios, strict=False, collect_errors=True, backend="compiled"
    )
    sharded = simulate_batch(
        system_model,
        scenarios,
        strict=False,
        collect_errors=True,
        backend="vectorized",
        workers=2,
        backend_options={"block_size": 7},
    )
    assert len(compiled.traces) == len(sharded.traces)
    assert [(i, type(e).__name__, str(e)) for i, e in compiled.errors] == [
        (i, type(e).__name__, str(e)) for i, e in sharded.errors
    ]
    for index, (reference_trace, trace) in enumerate(
        zip(compiled.traces, sharded.traces)
    ):
        if reference_trace is None:
            assert trace is None
            continue
        _assert_traces_identical(reference_trace, trace, f"{name}, scenario {index}")


def _stats_factory(index):
    """Picklable per-scenario sink factory for the streamed-batch test."""
    return StatisticsSink()


def test_vectorized_streamed_batch_across_workers(translated):
    """Streaming batches (``sink_factory`` + ``workers=2``) produce the same
    per-scenario statistics as the compiled sequential run."""
    result = translated("producer_consumer")
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=24), variants=4, seed=11
    )

    compiled = simulate_batch(
        system_model,
        scenarios,
        strict=False,
        collect_errors=True,
        backend="compiled",
        sink_factory=_stats_factory,
    )
    sharded = simulate_batch(
        system_model,
        scenarios,
        strict=False,
        collect_errors=True,
        backend="vectorized",
        workers=2,
        sink_factory=_stats_factory,
        backend_options={"block_size": 9},
    )
    assert sharded.streamed and compiled.streamed
    for reference_stats, stats in zip(compiled.sink_results, sharded.sink_results):
        if reference_stats is None:
            assert stats is None
            continue
        assert stats.length == reference_stats.length
        assert {
            s: stats.count_present(s) for s in stats.signals()
        } == {s: reference_stats.count_present(s) for s in reference_stats.signals()}


@pytest.mark.parametrize("name", catalog_names())
def test_vectorized_backend_fails_identically(name, translated):
    """Conflicting stimuli produce the same outcome (success or identical
    error) in strict mode on both backends."""
    result = translated(name)
    system_model = result.translation.system_model
    flat = system_model.flatten()
    outputs = [decl.name for decl in flat.outputs()]
    scenario = scenario_sweep(
        system_model, length=_scenario_length(result, cap=16), variants=1, seed=3
    )[0]
    if outputs:
        scenario.set_always(outputs[0], value=123456)

    outcomes = []
    for factory in (CompiledBackend, VectorizedBackend):
        runner = factory(system_model, strict=True)
        try:
            trace = runner.run(scenario)
        except Exception as error:  # noqa: BLE001 - compared across backends
            outcomes.append((type(error), str(error)))
        else:
            outcomes.append(("ok", trace.flows))
    assert outcomes[0] == outcomes[1]
