"""MaterializeSink parity over the full case-study catalog.

The streaming path must be an observation of the exact same run the legacy
materialising path performs: a :class:`~repro.sig.sinks.MaterializeSink`
fed by ``run(..., sinks=[...])`` has to rebuild the legacy
:class:`~repro.sig.simulator.SimulationTrace` bit for bit — flows, warnings
and length — on both backends, and under sharded batch execution
(``workers=N``) with per-scenario sink factories.  This is the contract
that lets million-instant runs switch to sinks without changing a single
observable value.
"""

import os

import pytest

from repro.casestudies import catalog_names, load_case_study, scenario_sweep
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain
from repro.scheduling.static_scheduler import SchedulingError
from repro.sig.engine import CompiledBackend, ReferenceBackend, simulate_batch
from repro.sig.sinks import MaterializeSink, StatisticsSink, batch_statistics_summary
from repro.sig.engine.batch import batch_flow_summary


@pytest.fixture(scope="module")
def translated():
    """Translate each catalog entry once, caching per module (same policy as
    ``test_backend_parity``: entries that are not RM-schedulable are
    translated without the scheduler)."""
    cache = {}

    def get(name):
        if name not in cache:
            entry = load_case_study(name)
            options = ToolchainOptions(
                root_implementation=entry.root_implementation,
                default_package=entry.default_package,
                simulate_hyperperiods=0,
                cost_model=None,
            )
            try:
                cache[name] = run_toolchain(entry.load_model(), options)
            except SchedulingError:
                options.translation = TranslationConfig(include_scheduler=False)
                cache[name] = run_toolchain(entry.load_model(), options)
        return cache[name]

    return get


def _scenario_length(result, hyperperiods=1, fallback=24, cap=None):
    if result.schedules:
        length = next(iter(result.schedules.values())).simulation_length(hyperperiods)
    else:
        length = fallback
    return min(length, cap) if cap else length


def _assert_bit_identical(produced, reference, context):
    assert produced is not None, context
    assert produced.length == reference.length, context
    assert set(produced.flows) == set(reference.flows), context
    for signal in reference.flows:
        assert produced.flows[signal] == reference.flows[signal], (
            f"{context}: flow of {signal!r} diverges between sink and legacy path"
        )
    assert produced.warnings == reference.warnings, context


@pytest.mark.parametrize("name", catalog_names())
@pytest.mark.parametrize("backend", [ReferenceBackend, CompiledBackend])
def test_materialize_sink_is_bit_identical_on_catalog(name, backend, translated):
    result = translated(name)
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=48), variants=2, seed=23
    )

    runner = backend(system_model, strict=False)
    for index, scenario in enumerate(scenarios):
        legacy = runner.run(scenario)
        sink = MaterializeSink()
        out = runner.run(scenario, sinks=[sink])
        assert out is None
        _assert_bit_identical(sink.trace, legacy, f"{name}, scenario {index}, {runner.name}")


def _materialize_factory(index):
    return MaterializeSink()


def _stats_factory(index):
    return StatisticsSink()


@pytest.mark.parametrize("name", catalog_names())
def test_materialize_sink_parity_under_workers(name, translated):
    """Sharded streaming batches rebuild the sequential legacy traces exactly,
    in scenario order, with per-worker sink factories."""
    result = translated(name)
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=32), variants=3, seed=29
    )
    workers = 2 if (os.cpu_count() or 1) > 1 else 1

    legacy = simulate_batch(system_model, scenarios, strict=False, collect_errors=True)
    streamed = simulate_batch(
        system_model,
        scenarios,
        strict=False,
        collect_errors=True,
        workers=workers,
        sink_factory=_materialize_factory,
    )
    assert [index for index, _ in streamed.errors] == [index for index, _ in legacy.errors]
    assert len(streamed.sink_results) == len(legacy.traces)
    for index, (produced, reference) in enumerate(zip(streamed.sink_results, legacy.traces)):
        if reference is None:
            assert produced is None
            continue
        _assert_bit_identical(produced, reference, f"{name}, scenario {index}, workers={workers}")


def test_statistics_summary_matches_flow_summary_on_case_study(translated):
    """The aggregate sink's batch summary reproduces batch_flow_summary on a
    real translated model (flow summaries compatible by construction)."""
    result = translated("producer_consumer")
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=32), variants=3, seed=31
    )
    legacy = simulate_batch(system_model, scenarios, strict=False, collect_errors=True)
    streamed = simulate_batch(
        system_model,
        scenarios,
        strict=False,
        collect_errors=True,
        sink_factory=_stats_factory,
    )
    reference_trace = next(trace for trace in legacy.traces if trace is not None)
    checked = 0
    for signal in reference_trace.signals():
        expected = batch_flow_summary(legacy, signal)
        assert batch_statistics_summary(streamed.sink_results, signal) == expected
        checked += 1
    assert checked > 0
