"""Backend parity over the full case-study catalog.

The compiled execution-plan backend must be a drop-in replacement for the
reference fixed-point interpreter: same flows bit-for-bit, same errors.
This is the contract that lets the tool chain default to the compiled
backend (and future backends be validated the same way).
"""

import pytest

from repro.casestudies import CATALOG, catalog_names, load_case_study, scenario_sweep
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain
from repro.scheduling.static_scheduler import SchedulingError
from repro.sig.engine import CompiledBackend, ReferenceBackend


@pytest.fixture(scope="module")
def translated():
    """Translate each catalog entry once, caching per module.

    Entries whose task set is not RM-schedulable are translated without the
    scheduler (as the scalability benchmarks do); trace parity between the
    backends must hold either way.
    """
    cache = {}

    def get(name):
        if name not in cache:
            entry = load_case_study(name)
            options = ToolchainOptions(
                root_implementation=entry.root_implementation,
                default_package=entry.default_package,
                simulate_hyperperiods=0,
                cost_model=None,
            )
            try:
                cache[name] = run_toolchain(entry.load_model(), options)
            except SchedulingError:
                options.translation = TranslationConfig(include_scheduler=False)
                cache[name] = run_toolchain(entry.load_model(), options)
        return cache[name]

    return get


def _scenario_length(result, hyperperiods=1, fallback=24, cap=None):
    if result.schedules:
        length = next(iter(result.schedules.values())).simulation_length(hyperperiods)
    else:
        length = fallback
    return min(length, cap) if cap else length


@pytest.mark.parametrize("name", catalog_names())
def test_backends_produce_identical_traces(name, translated):
    result = translated(name)
    system_model = result.translation.system_model

    # One quiet scenario plus randomised environment stimuli, covering one
    # hyper-period (capped so the reference interpreter stays affordable on
    # the largest entries): enough to exercise every thread job phase.
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=64), variants=2, seed=17
    )

    reference = ReferenceBackend(system_model, strict=False)
    compiled = CompiledBackend(system_model, strict=False)
    for index, scenario in enumerate(scenarios):
        ref_trace = reference.run(scenario)
        comp_trace = compiled.run(scenario)
        assert comp_trace.length == ref_trace.length
        assert set(comp_trace.flows) == set(ref_trace.flows)
        for signal in ref_trace.flows:
            assert comp_trace.flows[signal] == ref_trace.flows[signal], (
                f"{name}, scenario {index}: flow of {signal!r} diverges between backends"
            )
        assert comp_trace.warnings == ref_trace.warnings


@pytest.mark.parametrize("name", catalog_names())
def test_backends_fail_identically_under_conflicting_stimuli(name, translated):
    """Driving a non-input signal's clock from the environment must produce
    the same outcome (success or identical error) on both backends."""
    result = translated(name)
    system_model = result.translation.system_model

    # Force a conflict candidate: drive the first *declared output* as if it
    # were an input; the reference interpreter ignores it, and so must the
    # compiled backend (scenario flows only drive inputs/undeclared names).
    flat = system_model.flatten()
    outputs = [decl.name for decl in flat.outputs()]
    scenario = scenario_sweep(
        system_model, length=_scenario_length(result, cap=16), variants=1, seed=3
    )[0]
    if outputs:
        scenario.set_always(outputs[0], value=123456)

    outcomes = []
    for factory in (ReferenceBackend, CompiledBackend):
        runner = factory(system_model, strict=True)
        try:
            trace = runner.run(scenario)
        except Exception as error:  # noqa: BLE001 - compared across backends
            outcomes.append((type(error), str(error)))
        else:
            outcomes.append(("ok", trace.flows))
    assert outcomes[0] == outcomes[1]
