"""Integration tests spanning the whole pipeline on several case studies."""

import pytest

from repro.aadl.instance import Instantiator, instance_report
from repro.casestudies import CATALOG, GeneratorConfig, generate_case_study, load_case_study
from repro.core import TranslationConfig, translate_system
from repro.scheduling import (
    SchedulingError,
    SchedulingPolicy,
    StaticSchedulerConfig,
    export_affine_clocks,
    synthesise_schedule,
    task_set_from_threads,
)
from repro.sig.analysis import build_clock_report, check_determinism, detect_deadlocks
from repro.sig.simulator import Scenario, Simulator


class TestCatalogTranslation:
    @pytest.mark.parametrize("name", ["flight_guidance", "cruise_control", "landing_gear", "cabin_pressure"])
    def test_catalog_entry_translates_and_analyses(self, name):
        entry = load_case_study(name)
        root = entry.instantiate()
        result = translate_system(root)
        flat = result.system_model.flatten()
        assert flat.signal_count() > 20
        assert detect_deadlocks(flat).deadlock_free
        report = build_clock_report(flat)
        assert report.clock_count > 5

    def test_non_harmonic_case_study_schedules(self):
        entry = load_case_study("cruise_control")
        root = entry.instantiate()
        threads = root.threads()
        task_set = task_set_from_threads(threads)
        schedule = synthesise_schedule(task_set)
        assert schedule.is_valid()
        export = export_affine_clocks(schedule)
        assert export.start_clocks_mutually_disjoint()

    def test_every_catalog_entry_translates(self):
        failures = []
        for entry in CATALOG:
            root = entry.instantiate()
            try:
                result = translate_system(root, TranslationConfig(include_scheduler=False))
            except Exception as exc:  # pragma: no cover - reported as failure
                failures.append((entry.name, str(exc)))
                continue
            assert result.system_model.flatten().signal_count() > 10, entry.name
        assert failures == []


class TestScheduledSimulation:
    def test_generated_model_simulates_one_hyperperiod(self):
        generated = generate_case_study(GeneratorConfig(name="Sim", processes=1, threads_per_process=3,
                                                        harmonic=True, seed=12))
        root = Instantiator(generated.model, default_package="Sim").instantiate(generated.root_implementation)
        result = translate_system(root)
        schedule = next(iter(result.schedules.values()))
        scenario = Scenario(schedule.hyperperiod_ticks).set_always("tick")
        trace = Simulator(result.system_model, strict=False).run(scenario)
        # Every thread dispatch clock is periodic with its period.
        for thread_path, period in generated.thread_periods_ms.items():
            thread = thread_path.split(".")[-1]
            signal = next(n for n in trace.signals() if n.endswith(f"sched_{thread}_dispatch"))
            ticks = trace.clock_of(signal)
            assert ticks[0] == 0
            steps = {b - a for a, b in zip(ticks, ticks[1:])}
            assert steps <= {int(period / schedule.tick_ms)} or len(ticks) == 1

    def test_alarms_raised_when_scheduler_is_too_slow(self, pc_root):
        """Deliberately stretch the producer WCET so its deadline is missed and
        the translated Alarm output fires during simulation."""
        from repro.scheduling.task import task_set_from_instance

        task_set = task_set_from_instance(pc_root, ["prProdCons"])
        task_set.by_name("thProducer").__dict__["wcet_ms"] = 3.0
        task_set.by_name("thConsumer").__dict__["wcet_ms"] = 3.0
        with pytest.raises(SchedulingError):
            synthesise_schedule(task_set, StaticSchedulerConfig(policy=SchedulingPolicy.RATE_MONOTONIC))


class TestCrossChecks:
    def test_translation_statistics_scale_with_model_size(self):
        small = generate_case_study(GeneratorConfig(name="SizeS", processes=1, threads_per_process=2, seed=1))
        large = generate_case_study(GeneratorConfig(name="SizeL", processes=2, threads_per_process=6, seed=1))
        small_root = Instantiator(small.model, default_package="SizeS").instantiate(small.root_implementation)
        large_root = Instantiator(large.model, default_package="SizeL").instantiate(large.root_implementation)
        small_stats = translate_system(small_root, TranslationConfig(include_scheduler=False)).statistics()
        large_stats = translate_system(large_root, TranslationConfig(include_scheduler=False)).statistics()
        assert large_stats["signals"] > small_stats["signals"]
        assert large_stats["equations"] > small_stats["equations"]

    def test_translated_models_deterministic_across_catalog_subset(self):
        for name in ("flight_guidance", "engine_monitor"):
            root = load_case_study(name).instantiate()
            result = translate_system(root, TranslationConfig(include_scheduler=False))
            assert check_determinism(result.system_model.flatten()).deterministic, name

    def test_instance_report_consistency(self):
        for entry in CATALOG[:5]:
            root = entry.instantiate()
            report = instance_report(root)
            assert report.components >= report.threads + report.processes
