"""Served-vs-direct parity over the full case-study catalog.

The serving layer must be a transport, not a semantics layer: for every
catalog entry and every registered backend, simulating a symbolic
scenario program through :class:`repro.serve.service.SimulationService`
(with the request and response pushed through real JSON, exactly as they
travel over HTTP) must produce traces bit-identical — values *and* value
types — to compiling the model directly with ``run_toolchain`` and
running the same scenarios on the backend in-process.

The HTTP adapter variant at the bottom needs fastapi+httpx and skips on a
bare install; the JSON-boundary core runs everywhere.
"""

import json

import pytest

from repro.aadl.printer import render_model
from repro.casestudies import catalog_names, load_case_study, scenario_sweep
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain
from repro.scheduling.static_scheduler import SchedulingError
from repro.serve.errors import ServeError
from repro.serve.programs import decode_trace, scenario_to_payload
from repro.serve.service import ServiceConfig, SimulationService
from repro.sig.engine import create_backend

try:
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAS_NUMPY = False

#: Backends under parity test.  ``vectorized`` without numpy degrades to the
#: compiled plan, so testing it there would duplicate ``compiled``.
BACKEND_NAMES = ["reference", "compiled"] + (["vectorized"] if HAS_NUMPY else [])

#: Reference-interpreter affordability cap, mirroring test_backend_parity.
LENGTH_CAP = 48


@pytest.fixture(scope="module")
def service():
    return SimulationService(ServiceConfig(cache_capacity=len(catalog_names()) + 2))


@pytest.fixture(scope="module")
def prepared(service):
    """Submit + directly compile each entry once, cached per module.

    Entries whose task set is not RM-schedulable are served and compiled
    without the scheduler (the service reports them as ``unschedulable``);
    parity must hold either way, on identical translation options.
    """
    cache = {}

    def get(name):
        if name in cache:
            return cache[name]
        entry = load_case_study(name)
        source = render_model(entry.load_model())
        body = {
            "source": source,
            "root": entry.root_implementation,
            "package": entry.default_package,
        }
        options = ToolchainOptions(
            root_implementation=entry.root_implementation,
            default_package=entry.default_package,
            simulate_hyperperiods=0,
            cost_model=None,
        )
        try:
            submitted = service.submit(dict(body))
        except ServeError as error:
            assert error.code == "unschedulable"
            body["include_scheduler"] = False
            submitted = service.submit(dict(body))
            options.translation = TranslationConfig(include_scheduler=False)
        try:
            direct = run_toolchain(entry.load_model(), options)
        except SchedulingError:  # pragma: no cover - caught as ServeError above
            pytest.fail(f"{name}: direct toolchain disagrees with service")
        system_model = direct.translation.system_model
        if direct.schedules:
            length = next(iter(direct.schedules.values())).simulation_length(1)
            length = min(length, LENGTH_CAP)
        else:
            length = 24
        scenarios = scenario_sweep(system_model, length=length, variants=2, seed=17)
        cache[name] = {
            "fingerprint": submitted["fingerprint"],
            "system_model": system_model,
            "scenarios": scenarios,
            "length": length,
        }
        return cache[name]

    return get


def served_request(scenarios, backend, **extra):
    """Build a simulate body and push it through real JSON."""
    body = {
        "scenarios": [scenario_to_payload(s) for s in scenarios],
        "backend": backend,
        "strict": False,
    }
    body.update(extra)
    return json.loads(json.dumps(body))


def assert_traces_identical(name, backend, served_payload, direct_trace):
    served = decode_trace(served_payload)
    assert served.length == direct_trace.length
    assert set(served.flows) == set(direct_trace.flows)
    for signal in direct_trace.flows:
        assert served.flows[signal] == direct_trace.flows[signal], (
            f"{name} on {backend}: flow of {signal!r} diverges between the "
            "served and the direct run"
        )
        assert [type(v) for v in served.flows[signal].values] == [
            type(v) for v in direct_trace.flows[signal].values
        ], f"{name} on {backend}: value types of {signal!r} not preserved"
    assert served.warnings == direct_trace.warnings


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("name", catalog_names())
def test_served_traces_bit_identical(name, backend, service, prepared):
    info = prepared(name)
    response = json.loads(
        json.dumps(
            service.simulate(
                info["fingerprint"],
                served_request(info["scenarios"], backend),
            )
        )
    )
    assert response["ok"] is True, response
    assert response["backend"] == backend
    direct = create_backend(info["system_model"], backend, strict=False)
    assert len(response["results"]) == len(info["scenarios"])
    for index, scenario in enumerate(info["scenarios"]):
        direct_trace = direct.run(scenario)
        assert_traces_identical(
            name, backend, response["results"][index]["trace"], direct_trace
        )


def test_served_workers_match_sequential(service, prepared):
    """Worker-pool execution through the service matches workers=1 exactly."""
    info = prepared("producer_consumer")
    bodies = [
        served_request(info["scenarios"] * 2, "compiled", workers=workers)
        for workers in (1, 2)
    ]
    sequential, pooled = (
        service.simulate(info["fingerprint"], body) for body in bodies
    )
    assert pooled["workers"] == 2
    assert json.dumps(pooled["results"], sort_keys=True) == json.dumps(
        sequential["results"], sort_keys=True
    )


def test_served_parity_over_http(prepared):
    """One entry end-to-end through the real HTTP adapter."""
    pytest.importorskip("fastapi")
    pytest.importorskip("httpx")
    from fastapi.testclient import TestClient

    from repro.serve import create_app

    entry = load_case_study("producer_consumer")
    info = prepared("producer_consumer")
    with TestClient(create_app()) as client:
        submitted = client.post(
            "/models",
            json={
                "source": render_model(entry.load_model()),
                "root": entry.root_implementation,
                "package": entry.default_package,
            },
        )
        assert submitted.status_code == 200
        response = client.post(
            f"/models/{submitted.json()['fingerprint']}/simulate",
            json=served_request(info["scenarios"], "compiled"),
        )
        assert response.status_code == 200
        direct = create_backend(info["system_model"], "compiled", strict=False)
        for index, scenario in enumerate(info["scenarios"]):
            assert_traces_identical(
                "producer_consumer",
                "compiled",
                response.json()["results"][index]["trace"],
                direct.run(scenario),
            )
