"""Lowered-backend and recurrence-kernel parity over the full catalog.

The ``lowered`` backend generates flat Python source per equation, and the
``vectorized`` backend's recurrence scans + residue clustering +
``lowered_residue`` rewrite its residual sweep; all of them must stay
drop-in replacements for the compiled plan — same flows bit-for-bit
(including Python value types), same warning list, same errors, on the
single-run path, the sharded batch path and the streaming-sink path.
"""

import pytest

from repro.casestudies import catalog_names, load_case_study, scenario_sweep
from repro.core import ToolchainOptions, TranslationConfig, run_toolchain
from repro.scheduling.static_scheduler import SchedulingError
from repro.sig.engine import (
    CompiledBackend,
    LoweredBackend,
    VectorizedBackend,
    numpy_available,
    simulate_batch,
)
from repro.sig.sinks import MaterializeSink, StatisticsSink


@pytest.fixture(scope="module")
def translated():
    """Translate each catalog entry once, caching per module."""
    cache = {}

    def get(name):
        if name not in cache:
            entry = load_case_study(name)
            options = ToolchainOptions(
                root_implementation=entry.root_implementation,
                default_package=entry.default_package,
                simulate_hyperperiods=0,
                cost_model=None,
            )
            try:
                cache[name] = run_toolchain(entry.load_model(), options)
            except SchedulingError:
                options.translation = TranslationConfig(include_scheduler=False)
                cache[name] = run_toolchain(entry.load_model(), options)
        return cache[name]

    return get


def _scenario_length(result, fallback=24, cap=None):
    if result.schedules:
        length = next(iter(result.schedules.values())).simulation_length(1)
    else:
        length = fallback
    return min(length, cap) if cap else length


def _assert_traces_identical(reference, candidate, context):
    assert candidate.length == reference.length, context
    assert set(candidate.flows) == set(reference.flows), context
    for signal in reference.flows:
        assert candidate.flows[signal] == reference.flows[signal], (
            f"{context}: flow of {signal!r} diverges"
        )
        for expected, actual in zip(
            reference.flows[signal].values, candidate.flows[signal].values
        ):
            assert type(expected) is type(actual), (
                f"{context}: {signal!r} value {actual!r} has type "
                f"{type(actual).__name__}, expected {type(expected).__name__}"
            )
    assert candidate.warnings == reference.warnings, context


def _candidate_backends(system_model):
    """The configurations under test: the lowered backend, and the fully
    armed vectorized backend (scans + clustering + lowered residue)."""
    candidates = [("lowered", LoweredBackend(system_model, strict=False))]
    if numpy_available():
        candidates.append(
            (
                "vectorized+scan+cluster+lowered",
                VectorizedBackend(
                    system_model,
                    strict=False,
                    block_size=13,
                    lowered_residue=True,
                ),
            )
        )
    return candidates


@pytest.mark.parametrize("name", catalog_names())
def test_lowered_backend_produces_identical_traces(name, translated):
    """Single-run trace, value-type and warning parity."""
    result = translated(name)
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=48), variants=2, seed=17
    )

    compiled = CompiledBackend(system_model, strict=False)
    candidates = _candidate_backends(system_model)
    for index, scenario in enumerate(scenarios):
        reference_trace = compiled.run(scenario)
        for label, candidate in candidates:
            trace = candidate.run(scenario)
            _assert_traces_identical(
                reference_trace, trace, f"{name}, scenario {index}, {label}"
            )


@pytest.mark.parametrize("name", catalog_names())
def test_lowered_backend_streams_identically(name, translated):
    """Streaming sinks observe the exact same instants as on ``compiled``."""
    result = translated(name)
    system_model = result.translation.system_model
    scenario = scenario_sweep(
        system_model, length=_scenario_length(result, cap=32), variants=1, seed=5
    )[0]

    materialize, stats = MaterializeSink(), StatisticsSink()
    reference = CompiledBackend(system_model, strict=False)
    assert reference.run(scenario, sinks=[materialize, stats]) is None
    reference_trace, reference_stats = materialize.trace, stats.result()

    for label, candidate in _candidate_backends(system_model):
        materialize, stats = MaterializeSink(), StatisticsSink()
        assert candidate.run(scenario, sinks=[materialize, stats]) is None
        _assert_traces_identical(reference_trace, materialize.trace, f"{name}, {label}")
        streamed = stats.result()
        assert {
            s: streamed.count_present(s) for s in streamed.signals()
        } == {
            s: reference_stats.count_present(s)
            for s in reference_stats.signals()
        }, f"{name}, {label}"


@pytest.mark.parametrize("name", ["producer_consumer", "autobrake"])
def test_lowered_batch_workers_identical(name, translated):
    """``simulate_batch(workers=2)`` on the lowered backend matches the
    sequential compiled run bit for bit (plans pickled or fork-inherited)."""
    result = translated(name)
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=24), variants=4, seed=9
    )

    compiled = simulate_batch(
        system_model, scenarios, strict=False, collect_errors=True, backend="compiled"
    )
    sharded = simulate_batch(
        system_model,
        scenarios,
        strict=False,
        collect_errors=True,
        backend="lowered",
        workers=2,
    )
    assert len(compiled.traces) == len(sharded.traces)
    assert [(i, type(e).__name__, str(e)) for i, e in compiled.errors] == [
        (i, type(e).__name__, str(e)) for i, e in sharded.errors
    ]
    for index, (reference_trace, trace) in enumerate(
        zip(compiled.traces, sharded.traces)
    ):
        if reference_trace is None:
            assert trace is None
            continue
        _assert_traces_identical(reference_trace, trace, f"{name}, scenario {index}")


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_lowered_residue_batch_workers_identical(translated):
    """The fully armed vectorized backend shards over workers identically
    (its options survive pickling into spawn-based workers)."""
    result = translated("producer_consumer")
    system_model = result.translation.system_model
    scenarios = scenario_sweep(
        system_model, length=_scenario_length(result, cap=24), variants=4, seed=11
    )

    compiled = simulate_batch(
        system_model, scenarios, strict=False, collect_errors=True, backend="compiled"
    )
    sharded = simulate_batch(
        system_model,
        scenarios,
        strict=False,
        collect_errors=True,
        backend="vectorized",
        workers=2,
        backend_options={"block_size": 7, "lowered_residue": True},
    )
    assert len(compiled.traces) == len(sharded.traces)
    for index, (reference_trace, trace) in enumerate(
        zip(compiled.traces, sharded.traces)
    ):
        _assert_traces_identical(reference_trace, trace, f"scenario {index}")


@pytest.mark.parametrize("name", catalog_names())
def test_lowered_backend_fails_identically(name, translated):
    """Conflicting stimuli produce the same outcome (success or identical
    error) in strict mode on every candidate configuration."""
    result = translated(name)
    system_model = result.translation.system_model
    flat = system_model.flatten()
    outputs = [decl.name for decl in flat.outputs()]
    scenario = scenario_sweep(
        system_model, length=_scenario_length(result, cap=16), variants=1, seed=3
    )[0]
    if outputs:
        scenario.set_always(outputs[0], value=123456)

    def outcome(runner):
        try:
            trace = runner.run(scenario)
        except Exception as error:  # noqa: BLE001 - compared across backends
            return (type(error), str(error))
        return ("ok", trace.flows)

    reference = outcome(CompiledBackend(system_model, strict=True))
    assert outcome(LoweredBackend(system_model, strict=True)) == reference, name
    if numpy_available():
        armed = VectorizedBackend(
            system_model, strict=True, block_size=13, lowered_residue=True
        )
        assert outcome(armed) == reference, name
