"""Modular clock-calculus parity over the full case-study catalog.

The modular solver (per-subprocess extraction, memoisation, composition at
interface signals) must produce the *identical* analysis — synchronisation
classes, resolved clocks, hierarchy, endochrony verdicts, unresolved
constraints, the whole printed report — as flattening the model and running
the flat solver.  This is the contract that lets the tool chain default to
the modular calculus.
"""

import pytest

from repro.casestudies import GeneratorConfig, catalog_names, generate_case_study, load_case_study
from repro.aadl.instance import Instantiator
from repro.core import TranslationConfig, translate_system
from repro.sig.calculus_modular import ExtractionCache, ModularClockCalculus
from repro.sig.clock_calculus import run_clock_calculus


@pytest.fixture(scope="module")
def system_models():
    """Translate each catalog entry once (no scheduler: the analysis layer
    does not depend on it and this keeps the flat oracle affordable)."""
    cache = {}

    def get(name):
        if name not in cache:
            entry = load_case_study(name)
            result = translate_system(
                entry.instantiate(), TranslationConfig(include_scheduler=False)
            )
            cache[name] = result.system_model
        return cache[name]

    return get


def assert_same_calculus(system_model, cache=None):
    flat = system_model.flatten()
    reference = run_clock_calculus(flat, flatten=False)
    calculus = ModularClockCalculus(system_model, cache=cache)
    modular = calculus.run()

    assert modular.same_analysis(reference)
    # The printed report is what the tool chain shows: identical text too.
    assert modular.report() == reference.report()
    # Belt and braces on the individual verdicts the acceptance names.
    assert [cls.members for cls in modular.classes] == [cls.members for cls in reference.classes]
    assert [(n.representative, n.parent, n.depth) for n in modular.hierarchy] == [
        (n.representative, n.parent, n.depth) for n in reference.hierarchy
    ]
    assert modular.endochronous == reference.endochronous
    return calculus, modular


@pytest.mark.parametrize("name", catalog_names())
def test_modular_calculus_matches_flat_on_catalog(name, system_models):
    assert_same_calculus(system_models(name))


def test_modular_calculus_matches_flat_on_generated_model():
    config = GeneratorConfig(
        name="ParityGen", processes=3, threads_per_process=5, harmonic=True, seed=42
    )
    generated = generate_case_study(config)
    root = Instantiator(generated.model, default_package=config.name).instantiate(
        generated.root_implementation
    )
    system_model = translate_system(root, TranslationConfig(include_scheduler=False)).system_model
    calculus, result = assert_same_calculus(system_model)
    # The generated model instantiates the same port/observer shapes for every
    # thread: the memoised extractions must actually be reused.
    assert calculus.stats.extraction_hits > calculus.stats.extraction_misses
    assert result.resolution == "directed"


def test_modular_calculus_matches_flat_with_scheduler():
    entry = load_case_study("sensor_fusion")
    system_model = translate_system(
        entry.instantiate(), TranslationConfig(include_scheduler=True)
    ).system_model
    assert_same_calculus(system_model)


def test_cyclic_cluster_falls_back_to_flat_solver():
    """producer_consumer has a genuinely cyclic clock cluster: the modular
    solver must detect it, fall back to the flat fixpoint, and still match."""
    entry = load_case_study("producer_consumer")
    system_model = translate_system(
        entry.instantiate(), TranslationConfig(include_scheduler=False)
    ).system_model
    calculus, result = assert_same_calculus(system_model)
    assert result.resolution == "iterative-fallback"


def test_extraction_cache_is_reusable_across_runs():
    cache = ExtractionCache()
    entry = load_case_study("cruise_control")
    system_model = translate_system(
        entry.instantiate(), TranslationConfig(include_scheduler=False)
    ).system_model
    assert_same_calculus(system_model, cache=cache)
    first_misses = cache.misses
    # A second run over the same tree is answered from the cache alone.
    calculus, _ = assert_same_calculus(system_model, cache=cache)
    assert cache.misses == first_misses
    assert calculus.stats.extraction_misses == 0
    assert calculus.stats.extraction_hits > 0
