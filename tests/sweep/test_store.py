"""The post-hoc aggregation API: out-of-core queries over shard directories."""

import pytest

from repro.sweep import GridSpace, SweepResultStore, run_sweep

from tests.sweep.conftest import conflict_scenario, pipeline_scenario


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    from tests.sweep.conftest import make_pipeline_model

    out = str(tmp_path_factory.mktemp("store") / "sweep")
    space = GridSpace(
        {"period": [1, 2, 3, 4, 5], "value": [1, 10]}, pipeline_scenario
    )
    result = run_sweep(
        make_pipeline_model(), space, out,
        partition_size=4, length=20, deltas=["acc"],
    )
    assert result.ok
    return out


class TestQueries:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SweepResultStore(str(tmp_path / "nope"))

    def test_counts_come_from_the_manifest(self, sweep_dir):
        store = SweepResultStore(sweep_dir)
        assert store.count == 10
        assert store.complete
        assert store.rows("scenarios") == 10
        assert len(store.partitions()) == 3

    def test_projection_limits_columns(self, sweep_dir):
        rows = list(
            SweepResultStore(sweep_dir).query(
                "scenarios", columns=["scenario_id", "status"]
            )
        )
        assert len(rows) == 10
        assert all(set(row) == {"scenario_id", "status"} for row in rows)
        assert [row["scenario_id"] for row in rows] == list(range(10))

    def test_predicates_filter_across_partitions(self, sweep_dir):
        rows = list(
            SweepResultStore(sweep_dir).query(
                "statistics",
                where=[("signal", "==", "acc"), ("present", ">", 0)],
            )
        )
        assert rows
        assert all(row["signal"] == "acc" for row in rows)
        assert {row["scenario_id"] for row in rows} == set(range(10))

    def test_mapping_where_is_equality(self, sweep_dir):
        store = SweepResultStore(sweep_dir)
        triple = list(store.query("deltas", where=[("signal", "==", "acc")]))
        shorthand = list(store.query("deltas", where={"signal": "acc"}))
        assert triple == shorthand and shorthand

    def test_limit_stops_early(self, sweep_dir):
        rows = list(SweepResultStore(sweep_dir).query("deltas", limit=3))
        assert len(rows) == 3

    def test_scenario_lookup(self, sweep_dir):
        row = SweepResultStore(sweep_dir).scenario(7)
        assert row["scenario_id"] == 7
        assert row["status"] == "ok"
        assert row["params"]["period"] == 4
        assert SweepResultStore(sweep_dir).scenario(99) is None

    def test_signal_statistics_helper(self, sweep_dir):
        rows = list(SweepResultStore(sweep_dir).signal_statistics("y"))
        assert len(rows) == 10
        assert all(row["signal"] == "y" for row in rows)

    def test_no_faults_on_a_clean_sweep(self, sweep_dir):
        assert SweepResultStore(sweep_dir).faults() == []

    def test_unknown_table_rejected(self, sweep_dir):
        with pytest.raises(ValueError):
            list(SweepResultStore(sweep_dir).query("bogus"))


class TestFaultyStore:
    def test_faults_surface_error_rows(self, conflict_model, tmp_path):
        space = GridSpace({"period": [1, 2, 1]}, conflict_scenario)
        out = str(tmp_path / "sweep")
        run_sweep(conflict_model, space, out, partition_size=2, length=5)
        faults = SweepResultStore(out).faults()
        assert [row["scenario_id"] for row in faults] == [1]
        assert faults[0]["status"] == "error"
        assert faults[0]["detail"]
