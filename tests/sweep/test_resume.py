"""Crash-consistency of sweeps: a hard kill mid-partition must be recoverable.

The scripted crash fires in the worst window — after the partition's shard
files have been renamed into place but before the manifest commit — via a
child process that calls ``os._exit`` from the progress callback.  Resume
must detect the uncommitted shards, quarantine them, re-execute exactly the
missing partitions, and converge on results bit-identical to a sweep that
was never interrupted.
"""

import os
import subprocess
import sys

import pytest

from repro.sweep import GridSpace, SweepResultStore, run_sweep
from repro.sweep.manifest import QUARANTINE_DIR, load_manifest

from tests.sweep.conftest import make_pipeline_model, pipeline_scenario

PERIODS = [1, 2, 3, 4, 5, 6, 7, 8]
PARTITION_SIZE = 2
LENGTH = 10
CRASH_PARTITION = 2

CRASH_SCRIPT = """
import os, sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from tests.sweep.conftest import make_pipeline_model, pipeline_scenario
from repro.sweep import GridSpace, run_sweep

def die_after_flush(event, partition):
    if event == "partition-flushed" and partition == {crash}:
        os._exit(137)

run_sweep(
    make_pipeline_model(),
    GridSpace({{"period": {periods}}}, pipeline_scenario),
    sys.argv[1],
    partition_size={partition_size},
    length={length},
    progress=die_after_flush,
)
os._exit(0)
"""


def _crash_sweep(out):
    """Run a sweep in a child process that kills itself mid-partition."""
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    script = CRASH_SCRIPT.format(
        src=os.path.join(root, "src"),
        root=root,
        crash=CRASH_PARTITION,
        periods=PERIODS,
        partition_size=PARTITION_SIZE,
        length=LENGTH,
    )
    return subprocess.run(
        [sys.executable, "-c", script, out],
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_killed_sweep_resumes_to_identical_results(tmp_path):
    out = str(tmp_path / "crashed")
    proc = _crash_sweep(out)
    assert proc.returncode == 137, proc.stderr

    # The child died after renaming partition 2's shards but before the
    # manifest commit: files exist that the manifest does not list.
    manifest = load_manifest(out)
    assert manifest["complete"] is False
    assert sorted(manifest["partitions"]) == ["0", "1"]
    on_disk = {n for n in os.listdir(out) if n.endswith(".jsonl")}
    assert "scenarios-00002.jsonl" in on_disk
    assert "statistics-00002.jsonl" in on_disk

    model = make_pipeline_model()
    space = GridSpace({"period": PERIODS}, pipeline_scenario)
    resumed = run_sweep(
        model, space, out,
        partition_size=PARTITION_SIZE, length=LENGTH, resume=True,
    )
    assert resumed.complete
    assert resumed.skipped == 2
    assert resumed.executed == [2, 3]
    assert sorted(resumed.quarantined) == [
        "scenarios-00002.jsonl", "statistics-00002.jsonl",
    ]
    quarantine = os.path.join(out, QUARANTINE_DIR)
    assert sorted(os.listdir(quarantine)) == sorted(resumed.quarantined)

    reference_dir = str(tmp_path / "reference")
    run_sweep(
        model, space, reference_dir,
        partition_size=PARTITION_SIZE, length=LENGTH,
    )
    crashed_store = SweepResultStore(out)
    reference_store = SweepResultStore(reference_dir)
    for table in ("scenarios", "statistics"):
        assert list(crashed_store.query(table)) == list(
            reference_store.query(table)
        )
    assert crashed_store.aggregate() == reference_store.aggregate()
    assert crashed_store.rows("scenarios") == len(PERIODS)


@pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="worker-crash injection relies on fork-started workers",
)
def test_killed_worker_is_recorded_and_survivors_flush(tmp_path):
    """A worker that dies mid-scenario becomes a per-scenario fault row;
    the partition still commits and the sweep completes."""
    from repro.sig.engine import FaultPlan, FaultSpec

    model = make_pipeline_model()
    space = GridSpace({"period": [1, 2, 3, 4]}, pipeline_scenario)
    out = str(tmp_path / "sweep")
    result = run_sweep(
        model, space, out,
        partition_size=4, length=6, workers=2, retries=0,
        fault_plan=FaultPlan((FaultSpec("crash", 2, attempts=None),)),
    )
    assert result.complete
    assert result.fault_count == 1
    (fault,) = result.faults
    assert fault.scenario == 2
    store = SweepResultStore(out)
    rows = list(store.query("scenarios", where={"status": "fault"}))
    assert [row["scenario_id"] for row in rows] == [2]
    assert store.rows("scenarios") == 4
    survivors = list(store.query("statistics", where={"scenario_id": 0}))
    assert survivors
