"""Scenario-space generators: lazy, deterministic, random-access.

The load-bearing property is determinism by index: a resumed or
re-executed partition must rebuild exactly the scenarios the first attempt
ran, whatever order (or process) the requests arrive in.  The hypothesis
section fuzzes that property with the same rule-shape generators the
symbolic-scenario fuzz suite uses (tests/sig/scenario_strategies.py).
"""

import itertools
import pickle

import pytest

from repro.sig.scenario import ConstantRule, PeriodicRule, Scenario
from repro.sweep import (
    ChainSpace,
    GridSpace,
    RandomSpace,
    ScenarioSpace,
    StimulusBuilder,
    stimulus_space,
)


def grid_build(period, value=True):
    """Top-level grid builder (picklable)."""
    return Scenario(None).set_periodic("x", period, value=value)


def random_build(rng):
    """Top-level random builder publishing its draws as params."""
    period = rng.randint(1, 9)
    return {"period": period}, Scenario(None).set_periodic("x", period)


class TestGridSpace:
    def test_decodes_in_product_order(self):
        axes = {"period": [1, 2, 3], "value": [True, 7]}
        space = GridSpace(axes, grid_build)
        expected = list(itertools.product(axes["period"], axes["value"]))
        assert len(space) == len(expected)
        for index, (period, value) in enumerate(expected):
            assert space.point(index) == {"period": period, "value": value}
            params, scenario = space.build(index)
            assert params == {"period": period, "value": value}
            rule = scenario.inputs["x"]
            assert isinstance(rule, PeriodicRule)
            assert rule.period == period

    def test_never_expands_the_grid(self):
        space = GridSpace(
            {"period": range(1, 1001), "value": range(1, 1001)}, grid_build
        )
        assert len(space) == 10**6
        # Random access into a million-point grid is O(axes), instant.
        assert space.point(999_999) == {"period": 1000, "value": 1000}

    def test_bounds_checked(self):
        space = GridSpace({"period": [1]}, grid_build)
        with pytest.raises(IndexError):
            space.scenario(1)
        with pytest.raises(IndexError):
            space.scenario(-1)

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            GridSpace({}, grid_build)
        with pytest.raises(ValueError):
            GridSpace({"a": []}, grid_build)

    def test_batch_is_a_bounded_window(self):
        space = GridSpace({"period": [1, 2, 3, 4, 5]}, grid_build)
        window = space.batch(1, 3)
        assert [s.inputs["x"].period for s in window] == [2, 3]
        assert space.batch(3, 99) and len(space.batch(3, 99)) == 2

    def test_spaces_are_picklable(self):
        space = GridSpace({"period": [1, 2], "value": [5]}, grid_build)
        clone = pickle.loads(pickle.dumps(space))
        assert clone.point(1) == space.point(1)


class TestRandomSpace:
    def test_index_determinism_independent_of_order(self):
        space = RandomSpace(50, random_build, seed=7)
        forward = [space.params(i)["period"] for i in range(50)]
        backward = [space.params(i)["period"] for i in reversed(range(50))]
        assert forward == list(reversed(backward))

    def test_seed_changes_the_draws(self):
        a = RandomSpace(30, random_build, seed=1)
        b = RandomSpace(30, random_build, seed=2)
        assert [a.params(i) for i in range(30)] != [b.params(i) for i in range(30)]
        assert a.fingerprint() != b.fingerprint()

    def test_publishes_seed_and_draw(self):
        space = RandomSpace(3, random_build, seed=9)
        params = space.params(2)
        assert params["seed"] == 9 and params["draw"] == 2
        assert "period" in params

    def test_fingerprint_stable_across_instances(self):
        assert (
            RandomSpace(10, random_build, seed=3).fingerprint()
            == RandomSpace(10, random_build, seed=3).fingerprint()
        )


class TestChainSpace:
    def test_concatenates_with_offset_arithmetic(self):
        grid = GridSpace({"period": [1, 2, 3]}, grid_build)
        rand = RandomSpace(4, random_build, seed=0)
        chain = ChainSpace([grid, rand])
        assert len(chain) == 7
        assert chain.params(0)["sub_space"] == 0
        assert chain.params(2)["period"] == 3
        assert chain.params(3)["sub_space"] == 1
        assert chain.params(3)["draw"] == 0
        with pytest.raises(IndexError):
            chain.scenario(7)

    def test_fingerprint_covers_children(self):
        grid = GridSpace({"period": [1, 2]}, grid_build)
        one = ChainSpace([grid])
        two = ChainSpace([grid, RandomSpace(1, random_build)])
        assert one.fingerprint() != two.fingerprint()


class TestStimulusSpace:
    def test_ticks_always_on_and_stimuli_periodic(self):
        class FakeDecl:
            def __init__(self, name):
                self.name = name

        class FakeProcess:
            def inputs(self):
                return [FakeDecl("tick"), FakeDecl("cpu_tick"), FakeDecl("stim")]

        space = stimulus_space(FakeProcess(), 5, seed=3, period_range=(2, 6))
        params, scenario = space.build(2)
        for tick in ("tick", "cpu_tick"):
            assert isinstance(scenario.inputs[tick], ConstantRule)
        rule = scenario.inputs["stim"]
        assert isinstance(rule, PeriodicRule)
        assert 2 <= rule.period <= 6
        assert params["period_stim"] == rule.period
        assert 0 <= params["phase_stim"] < rule.period

    def test_builder_shape_feeds_the_fingerprint(self):
        builder = StimulusBuilder(["tick"], ["stim"], (2, 6))
        a = RandomSpace(5, builder, seed=0)
        b = RandomSpace(5, StimulusBuilder(["tick"], ["stim"], (2, 9)), seed=0)
        assert a.fingerprint() != b.fingerprint()


class TestBaseClassContract:
    def test_abstract_hooks_raise(self):
        space = ScenarioSpace()
        with pytest.raises(NotImplementedError):
            len(space)
        with pytest.raises(NotImplementedError):
            space.describe()


# ----------------------------------------------------------------------
# hypothesis: random-access enumeration over fuzzed rule programs
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from tests.sig.scenario_strategies import RULE_LENGTH, scenarios  # noqa: E402


@settings(max_examples=25, deadline=None)
@given(drawn=st.lists(scenarios(), min_size=1, max_size=6), data=st.data())
def test_grid_random_access_equals_enumeration(drawn, data):
    """A space over fuzzed rule programs answers random access identically
    to in-order enumeration — the property partitioned re-execution needs."""
    space = GridSpace({"pick": list(range(len(drawn)))}, lambda pick: drawn[pick])
    sequential = [space.scenario(i).materialized() for i in range(len(space))]
    index = data.draw(st.integers(min_value=0, max_value=len(drawn) - 1))
    again = space.scenario(index).materialized()
    expected = sequential[index]
    assert again.length == expected.length == RULE_LENGTH
    assert {n: r.values for n, r in again.inputs.items()} == {
        n: r.values for n, r in expected.inputs.items()
    }


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32), data=st.data())
def test_random_space_is_a_pure_function_of_seed_and_index(seed, data):
    space = RandomSpace(40, random_build, seed=seed)
    index = data.draw(st.integers(min_value=0, max_value=39))
    # Query other indices in between: the draw must not depend on history.
    first = space.params(index)
    for other in (0, 39, index // 2):
        space.params(other)
    assert space.params(index) == first
