"""Tests of the fleet-scale sweep layer (repro.sweep)."""
