"""The partitioned sweep executor: parity, partitioning, faults, resume.

The central claim: ``run_sweep`` produces, through shards, exactly what an
in-memory ``simulate_batch`` over the same scenarios produces through
sinks — while holding only one partition at a time and surviving errors,
injected faults and interruptions.
"""

import os

import pytest

from repro.sig.engine import FaultPlan, FaultSpec, create_backend, simulate_batch
from repro.sig.sinks import DeltaSink, StatisticsSink
from repro.sweep import GridSpace, SweepResultStore, run_sweep
from repro.sweep.manifest import QUARANTINE_DIR, load_manifest
from repro.sweep.shards import delta_rows, statistics_rows

from tests.sweep.conftest import conflict_scenario, pipeline_scenario


def _stats_factory(index):
    return StatisticsSink()


def _build_period_one(rng):
    return pipeline_scenario(1)


class TestParity:
    """Shard-store query results == in-memory simulate_batch reference."""

    def test_statistics_rows_bit_identical_to_reference(self, pipeline_model, tmp_path):
        space = GridSpace(
            {"period": [1, 2, 3, 4], "value": [1, 5]}, pipeline_scenario
        )
        out = str(tmp_path / "sweep")
        result = run_sweep(
            pipeline_model, space, out, partition_size=3, length=20
        )
        assert result.ok and result.complete

        reference = simulate_batch(
            pipeline_model,
            [space.scenario(i) for i in range(len(space))],
            sink_factory=_stats_factory,
            length=20,
        )
        expected = []
        for scenario_id, stats in enumerate(reference.sink_results):
            expected.extend(statistics_rows(scenario_id, stats))
        stored = list(SweepResultStore(out).query("statistics"))
        assert stored == expected

    def test_delta_rows_bit_identical_to_reference(self, pipeline_model, tmp_path):
        space = GridSpace({"period": [1, 3]}, pipeline_scenario)
        out = str(tmp_path / "sweep")
        run_sweep(
            pipeline_model, space, out, partition_size=1, length=12, deltas=["acc"]
        )
        runner = create_backend(pipeline_model, backend="compiled", strict=True)
        expected = []
        for scenario_id in range(len(space)):
            sink = DeltaSink(["acc"])
            runner.run(space.scenario(scenario_id), sinks=[sink], length=12)
            expected.extend(delta_rows(scenario_id, sink.result()))
        stored = list(SweepResultStore(out).query("deltas"))
        assert stored == expected

    def test_aggregate_equals_merging_every_scenario(self, pipeline_model, tmp_path):
        space = GridSpace({"period": [1, 2, 5]}, pipeline_scenario)
        result = run_sweep(
            pipeline_model, space, str(tmp_path / "s"), partition_size=2, length=30
        )
        reference = simulate_batch(
            pipeline_model,
            [space.scenario(i) for i in range(len(space))],
            sink_factory=_stats_factory,
            length=30,
        )
        merged = None
        for stats in reference.sink_results:
            if merged is None:
                from repro.sig.sinks import TraceStatistics

                merged = TraceStatistics(stats.process_name, 0)
            merged.merge(stats)
        assert result.aggregate == merged
        # And the store serves the same aggregate without re-reading shards.
        assert SweepResultStore(str(tmp_path / "s")).aggregate() == merged


class TestPartitioning:
    def test_one_shard_set_per_partition(self, pipeline_model, tmp_path):
        space = GridSpace({"period": [1, 2, 3, 4, 5]}, pipeline_scenario)
        out = str(tmp_path / "sweep")
        result = run_sweep(pipeline_model, space, out, partition_size=2, length=8)
        assert result.partitions == 3
        assert result.executed == [0, 1, 2]
        names = sorted(os.listdir(out))
        assert names == [
            "manifest.json",
            "scenarios-00000.jsonl", "scenarios-00001.jsonl", "scenarios-00002.jsonl",
            "statistics-00000.jsonl", "statistics-00001.jsonl", "statistics-00002.jsonl",
        ]
        manifest = load_manifest(out)
        assert manifest["complete"] is True
        assert manifest["partitions"]["2"] == {
            "start": 4,
            "stop": 5,
            "files": {
                "scenarios": "scenarios-00002.jsonl",
                "statistics": "statistics-00002.jsonl",
            },
            "rows": {"scenarios": 1, "statistics": manifest["partitions"]["2"]["rows"]["statistics"]},
        }

    def test_progress_events_in_order(self, pipeline_model, tmp_path):
        events = []
        space = GridSpace({"period": [1, 2, 3]}, pipeline_scenario)
        run_sweep(
            pipeline_model, space, str(tmp_path / "s"), partition_size=2, length=4,
            progress=lambda event, partition: events.append((event, partition)),
        )
        assert events == [
            ("partition-start", 0), ("partition-flushed", 0), ("partition-complete", 0),
            ("partition-start", 1), ("partition-flushed", 1), ("partition-complete", 1),
        ]

    def test_empty_space_completes_immediately(self, pipeline_model, tmp_path):
        from repro.sweep import RandomSpace

        empty = RandomSpace(0, _build_period_one)
        result = run_sweep(pipeline_model, empty, str(tmp_path / "s"), length=4)
        assert result.complete and result.partitions == 0
        assert load_manifest(str(tmp_path / "s"))["complete"] is True

    def test_invalid_partition_size_rejected(self, pipeline_model, tmp_path):
        space = GridSpace({"period": [1]}, pipeline_scenario)
        with pytest.raises(ValueError):
            run_sweep(pipeline_model, space, str(tmp_path / "s"), partition_size=0)


class TestErrorsAndFaults:
    def test_model_errors_recorded_with_global_ids(self, conflict_model, tmp_path):
        # Periods: 1 is clock-clean, everything else violates in strict mode.
        space = GridSpace({"period": [1, 1, 2, 1, 3, 1]}, conflict_scenario)
        out = str(tmp_path / "sweep")
        result = run_sweep(conflict_model, space, out, partition_size=2, length=6)
        assert result.error_count == 2
        assert sorted(index for index, _ in result.errors) == [2, 4]
        store = SweepResultStore(out)
        rows = list(store.query("scenarios", where={"status": "error"}))
        assert [row["scenario_id"] for row in rows] == [2, 4]
        assert all(row["kind"] for row in rows)
        # Errored scenarios contribute no statistics rows.
        assert not list(store.query("statistics", where={"scenario_id": 2}))
        # Survivors are unaffected.
        assert store.rows("statistics") > 0
        assert len(store.faults()) == 2

    def test_injected_faults_re_keyed_per_partition(self, pipeline_model, tmp_path):
        # A fault plan is applied per partition with batch-local indices:
        # local scenario 1 of each partition dies persistently, so the
        # global ids 1, 4 and 7 must surface as faults.
        space = GridSpace(
            {"period": [1, 2, 3, 1, 2, 3, 1, 2]}, pipeline_scenario
        )
        out = str(tmp_path / "sweep")
        plan = FaultPlan((FaultSpec("exception", 1, attempts=None),))
        result = run_sweep(
            pipeline_model, space, out, partition_size=3, length=6,
            fault_plan=plan, retries=1,
        )
        assert result.fault_count == 3
        assert sorted(fault.scenario for fault in result.faults) == [1, 4, 7]
        store = SweepResultStore(out)
        rows = list(store.query("scenarios", where={"status": "fault"}))
        assert [row["scenario_id"] for row in rows] == [1, 4, 7]
        assert all(row["attempts"] == 2 for row in rows)
        # Survivors match an unsupervised reference bit for bit.
        survivors = [i for i in range(len(space)) if i not in (1, 4, 7)]
        reference = simulate_batch(
            pipeline_model,
            [space.scenario(i) for i in survivors],
            sink_factory=_stats_factory,
            length=6,
        )
        expected = []
        for slot, scenario_id in enumerate(survivors):
            expected.extend(
                statistics_rows(scenario_id, reference.sink_results[slot])
            )
        assert list(store.query("statistics")) == expected


class TestResume:
    def test_existing_manifest_refused_without_resume(self, pipeline_model, tmp_path):
        space = GridSpace({"period": [1, 2]}, pipeline_scenario)
        out = str(tmp_path / "sweep")
        run_sweep(pipeline_model, space, out, length=4)
        with pytest.raises(RuntimeError, match="resume"):
            run_sweep(pipeline_model, space, out, length=4)

    def test_resume_refuses_a_different_space(self, pipeline_model, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(
            pipeline_model, GridSpace({"period": [1, 2]}, pipeline_scenario),
            out, length=4,
        )
        with pytest.raises(RuntimeError, match="space_fingerprint"):
            run_sweep(
                pipeline_model, GridSpace({"period": [1, 3]}, pipeline_scenario),
                out, length=4, resume=True,
            )

    def test_resume_refuses_a_different_shape(self, pipeline_model, tmp_path):
        space = GridSpace({"period": [1, 2]}, pipeline_scenario)
        out = str(tmp_path / "sweep")
        run_sweep(pipeline_model, space, out, length=4, partition_size=2)
        with pytest.raises(RuntimeError, match="partition_size"):
            run_sweep(
                pipeline_model, space, out, length=4, partition_size=1, resume=True
            )

    def test_interrupted_sweep_resumes_to_identical_results(
        self, pipeline_model, tmp_path
    ):
        space = GridSpace({"period": [1, 2, 3, 4, 5, 6]}, pipeline_scenario)
        out = str(tmp_path / "interrupted")

        class Interrupt(Exception):
            pass

        def explode_at_2(event, partition):
            if event == "partition-start" and partition == 2:
                raise Interrupt()

        with pytest.raises(Interrupt):
            run_sweep(
                pipeline_model, space, out, partition_size=2, length=10,
                progress=explode_at_2,
            )
        manifest = load_manifest(out)
        assert sorted(manifest["partitions"]) == ["0", "1"]
        assert manifest["complete"] is False

        resumed = run_sweep(
            pipeline_model, space, out, partition_size=2, length=10, resume=True
        )
        assert resumed.executed == [2]
        assert resumed.skipped == 2
        assert resumed.complete

        reference_dir = str(tmp_path / "uninterrupted")
        run_sweep(pipeline_model, space, reference_dir, partition_size=2, length=10)
        for table in ("scenarios", "statistics"):
            assert list(SweepResultStore(out).query(table)) == list(
                SweepResultStore(reference_dir).query(table)
            )
        assert SweepResultStore(out).aggregate() == SweepResultStore(
            reference_dir
        ).aggregate()

    def test_orphaned_shards_are_quarantined_and_reexecuted(
        self, pipeline_model, tmp_path
    ):
        space = GridSpace({"period": [1, 2, 3, 4]}, pipeline_scenario)
        out = str(tmp_path / "sweep")

        class Torn(Exception):
            pass

        def tear_after_flush(event, partition):
            # The crash window: shards renamed, manifest not yet committed.
            if event == "partition-flushed" and partition == 1:
                raise Torn()

        with pytest.raises(Torn):
            run_sweep(
                pipeline_model, space, out, partition_size=2, length=8,
                progress=tear_after_flush,
            )
        orphans = {
            name for name in os.listdir(out)
            if name.endswith(".jsonl") and name.endswith("1.jsonl")
        }
        assert orphans == {"scenarios-00001.jsonl", "statistics-00001.jsonl"}

        resumed = run_sweep(
            pipeline_model, space, out, partition_size=2, length=8, resume=True
        )
        assert sorted(resumed.quarantined) == sorted(orphans)
        assert resumed.executed == [1]
        assert os.path.isdir(os.path.join(out, QUARANTINE_DIR))
        assert sorted(os.listdir(os.path.join(out, QUARANTINE_DIR))) == sorted(orphans)

        reference_dir = str(tmp_path / "reference")
        run_sweep(pipeline_model, space, reference_dir, partition_size=2, length=8)
        assert list(SweepResultStore(out).query("statistics")) == list(
            SweepResultStore(reference_dir).query("statistics")
        )

    def test_resume_of_a_complete_sweep_is_a_noop(self, pipeline_model, tmp_path):
        space = GridSpace({"period": [1, 2]}, pipeline_scenario)
        out = str(tmp_path / "sweep")
        first = run_sweep(pipeline_model, space, out, length=4)
        again = run_sweep(pipeline_model, space, out, length=4, resume=True)
        assert again.executed == []
        assert again.skipped == first.partitions
        assert again.complete
        assert again.aggregate == first.aggregate


class TestWorkers:
    def test_sharded_sweep_matches_sequential(self, pipeline_model, tmp_path):
        space = GridSpace({"period": [1, 2, 3, 4]}, pipeline_scenario)
        sequential = str(tmp_path / "seq")
        sharded = str(tmp_path / "par")
        run_sweep(pipeline_model, space, sequential, partition_size=2, length=10)
        run_sweep(
            pipeline_model, space, sharded, partition_size=2, length=10, workers=2
        )
        for table in ("scenarios", "statistics"):
            assert list(SweepResultStore(sharded).query(table)) == list(
                SweepResultStore(sequential).query(table)
            )
