"""Shared fixtures of the sweep-layer tests: small cheap models and spaces."""

import pytest

from repro.sig import builder as b
from repro.sig.process import ProcessModel
from repro.sig.scenario import Scenario
from repro.sig.values import INTEGER


def make_pipeline_model(name="sweep_pipe"):
    """Stateless map plus an accumulator: enough structure for statistics,
    deltas and (via mismatched input clocks) strict-mode errors."""
    model = ProcessModel(name)
    model.input("x", INTEGER)
    model.output("y", INTEGER)
    model.define("y", b.func("+", b.ref("x"), 1))
    model.local("zacc", INTEGER)
    model.output("acc", INTEGER)
    model.define("zacc", b.delay(b.ref("acc"), init=0))
    model.define("acc", b.func("+", b.ref("zacc"), b.ref("x")))
    model.synchronise("acc", "x")
    model.synchronise("zacc", "x")
    return model


def make_conflict_model(name="sweep_conflict"):
    """``bad = x + y`` is a clock violation whenever x and y differ in clock."""
    model = ProcessModel(name)
    model.input("x", INTEGER)
    model.input("y", INTEGER)
    model.output("bad", INTEGER)
    model.define("bad", b.func("+", b.ref("x"), b.ref("y")))
    return model


def pipeline_scenario(period, value=1):
    """One symbolic scenario driving the pipeline model's input."""
    return Scenario(None).set_periodic("x", period, value=value)


def conflict_scenario(period):
    """x always on, y periodic: period 1 agrees, anything else violates."""
    scenario = Scenario(None).set_always("x", 1)
    scenario.set_periodic("y", period, value=2)
    return scenario


@pytest.fixture()
def pipeline_model():
    return make_pipeline_model()


@pytest.fixture()
def conflict_model():
    return make_conflict_model()
