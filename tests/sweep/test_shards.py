"""Columnar shard format: codec round-trips, writers, readers, predicates.

Every test that exercises a reader/writer runs against the jsonl fallback
(always available); the parquet counterparts run when pyarrow is
importable and assert the two formats yield identical decoded rows —
CI proves both sides with and without the 'sweep' extra installed.
"""

import json
import os

import pytest

from repro.sig.sinks import DeltaLog, SignalStatistics, TraceStatistics
from repro.sig.values import ABSENT
from repro.sweep.shards import (
    PYARROW_FALLBACK_MESSAGE,
    SHARD_FORMATS,
    ShardWriter,
    decode_row,
    delta_rows,
    encode_row,
    iter_shard_rows,
    normalize_where,
    parse_shard_name,
    pyarrow_available,
    resolve_shard_format,
    row_matches,
    scenario_row,
    shard_name,
    statistics_rows,
    unwrap_value,
    wrap_value,
)

needs_pyarrow = pytest.mark.skipif(
    not pyarrow_available(), reason="pyarrow not installed"
)


class TestValueCodec:
    def test_wrap_distinguishes_absence_from_falsy_values(self):
        assert wrap_value(ABSENT) is None
        assert wrap_value(None) is None
        assert wrap_value(0) == [0]
        assert wrap_value(False) == [False]
        assert wrap_value("") == [""]

    def test_unwrap_inverts_wrap(self):
        for value in (0, False, True, 1, "x", 3.5, ""):
            assert unwrap_value(wrap_value(value)) == value
            assert type(unwrap_value(wrap_value(value))) is type(value)
        assert unwrap_value(None) is None
        assert unwrap_value(None, absent=ABSENT) is ABSENT

    def test_bool_and_int_stay_distinct_through_json(self):
        restored = json.loads(json.dumps(wrap_value(True)))
        assert unwrap_value(restored) is True
        restored = json.loads(json.dumps(wrap_value(1)))
        assert unwrap_value(restored) == 1 and unwrap_value(restored) is not True


class TestRowBuilders:
    def test_statistics_rows_in_sorted_signal_order(self):
        stats = TraceStatistics(
            "p",
            10,
            {
                "b": SignalStatistics("b", present=3, absent=7, minimum=1, maximum=9,
                                      first_instant=0, last_instant=8),
                "a": SignalStatistics("a", present=10, absent=0),
            },
        )
        rows = statistics_rows(5, stats)
        assert [row["signal"] for row in rows] == ["a", "b"]
        assert all(row["scenario_id"] == 5 for row in rows)
        assert rows[1]["minimum"] == 1 and rows[1]["maximum"] == 9

    def test_delta_rows_expand_change_instants(self):
        log = DeltaLog(
            "p", 10, ("x", "y"),
            entries=[(0, {"y": 2, "x": True}), (4, {"x": ABSENT})],
            change_counts={"x": 2, "y": 1},
        )
        rows = delta_rows(9, log)
        assert [(r["instant"], r["signal"]) for r in rows] == [
            (0, "x"), (0, "y"), (4, "x"),
        ]
        assert rows[2]["value"] is ABSENT

    def test_scenario_row_round_trips_through_codec(self):
        row = scenario_row(3, "fault", {"period": 4}, kind="crash",
                           detail="worker died", attempts=2)
        decoded = decode_row("scenarios", json.loads(json.dumps(encode_row("scenarios", row))))
        assert decoded == row

    def test_statistics_row_codec_preserves_absent_range(self):
        stats = TraceStatistics("p", 4, {"s": SignalStatistics("s", absent=4)})
        row = statistics_rows(0, stats)[0]
        decoded = decode_row("statistics", json.loads(json.dumps(encode_row("statistics", row))))
        assert decoded["minimum"] is None and decoded["maximum"] is None
        # A present range of None-adjacent values still survives: False/0.
        stats2 = TraceStatistics(
            "p", 4, {"s": SignalStatistics("s", present=4, minimum=False, maximum=0)}
        )
        row2 = statistics_rows(0, stats2)[0]
        decoded2 = decode_row("statistics", json.loads(json.dumps(encode_row("statistics", row2))))
        assert decoded2["minimum"] is False and decoded2["maximum"] == 0


class TestPredicates:
    def test_normalize_mapping_and_triples(self):
        assert normalize_where(None) == []
        assert normalize_where({"a": 1}) == [("a", "==", 1)]
        assert normalize_where([("a", ">", 1)]) == [("a", ">", 1)]
        with pytest.raises(ValueError):
            normalize_where([("a", "~", 1)])

    def test_row_matches_operators(self):
        row = {"n": 5, "s": "ok"}
        assert row_matches(row, [("n", ">=", 5), ("s", "==", "ok")])
        assert not row_matches(row, [("n", "<", 5)])
        assert row_matches(row, [("s", "in", ("ok", "error"))])
        # None never satisfies an ordering predicate (and raises nowhere).
        assert not row_matches({"n": None}, [("n", ">", 0)])


class TestNames:
    def test_shard_name_round_trips(self):
        for fmt in SHARD_FORMATS:
            name = shard_name("statistics", 7, fmt)
            assert parse_shard_name(name) == ("statistics", 7)
        assert parse_shard_name("manifest.json") is None
        assert parse_shard_name("bogus-00001.jsonl") is None
        assert parse_shard_name("statistics-x.jsonl") is None


class TestFormatResolution:
    def test_auto_matches_environment(self):
        expected = "parquet" if pyarrow_available() else "jsonl"
        assert resolve_shard_format("auto") == expected

    def test_jsonl_always_resolves(self):
        assert resolve_shard_format("jsonl") == "jsonl"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            resolve_shard_format("csv")

    @pytest.mark.skipif(pyarrow_available(), reason="pyarrow installed")
    def test_explicit_parquet_without_pyarrow_raises_with_hint(self):
        with pytest.raises(RuntimeError, match="sweep"):
            resolve_shard_format("parquet")
        with pytest.raises(RuntimeError):
            ShardWriter("/tmp/unused", "parquet")


def _sample_rows():
    return [
        scenario_row(0, "ok", {"period": 2, "note": "first"}, warnings=1),
        scenario_row(1, "error", {"period": 3}, kind="ClockViolation", detail="boom"),
        scenario_row(2, "fault", {"period": 4}, kind="crash", detail="died", attempts=2),
    ]


def _roundtrip(tmp_path, fmt, table, rows):
    writer = ShardWriter(str(tmp_path / fmt), fmt)
    name = writer.write(table, 0, rows)
    return os.path.join(str(tmp_path / fmt), name)


class TestJsonlRoundTrip:
    def test_rows_survive_exactly(self, tmp_path):
        rows = _sample_rows()
        path = _roundtrip(tmp_path, "jsonl", "scenarios", rows)
        assert list(iter_shard_rows(path, "scenarios", "jsonl")) == rows

    def test_projection_and_predicates(self, tmp_path):
        rows = _sample_rows()
        path = _roundtrip(tmp_path, "jsonl", "scenarios", rows)
        got = list(
            iter_shard_rows(
                path, "scenarios", "jsonl",
                columns=["scenario_id"],
                predicates=[("status", "!=", "ok")],
            )
        )
        assert got == [{"scenario_id": 1}, {"scenario_id": 2}]

    def test_empty_shard(self, tmp_path):
        path = _roundtrip(tmp_path, "jsonl", "deltas", [])
        assert list(iter_shard_rows(path, "deltas", "jsonl")) == []

    def test_delta_values_decode_to_absent(self, tmp_path):
        log = DeltaLog("p", 5, ("x",), entries=[(1, {"x": ABSENT}), (3, {"x": 0})],
                       change_counts={"x": 2})
        path = _roundtrip(tmp_path, "jsonl", "deltas", delta_rows(0, log))
        values = [row["value"] for row in iter_shard_rows(path, "deltas", "jsonl")]
        assert values[0] is ABSENT and values[1] == 0

    def test_writes_are_atomic(self, tmp_path):
        directory = tmp_path / "jsonl"
        _roundtrip(tmp_path, "jsonl", "scenarios", _sample_rows())
        leftovers = [n for n in os.listdir(directory) if n.startswith(".tmp")]
        assert leftovers == []


@needs_pyarrow
class TestParquetRoundTrip:
    def test_parquet_equals_jsonl(self, tmp_path):
        rows = _sample_rows()
        jsonl_path = _roundtrip(tmp_path, "jsonl", "scenarios", rows)
        parquet_path = _roundtrip(tmp_path, "parquet", "scenarios", rows)
        assert list(iter_shard_rows(parquet_path, "scenarios", "parquet")) == list(
            iter_shard_rows(jsonl_path, "scenarios", "jsonl")
        )

    def test_pushdown_matches_python_filtering(self, tmp_path):
        stats = TraceStatistics(
            "p", 6,
            {
                "a": SignalStatistics("a", present=6, minimum=1, maximum=6,
                                      first_instant=0, last_instant=5),
                "b": SignalStatistics("b", present=0, absent=6),
            },
        )
        rows = statistics_rows(0, stats) + statistics_rows(1, stats)
        jsonl_path = _roundtrip(tmp_path, "jsonl", "statistics", rows)
        parquet_path = _roundtrip(tmp_path, "parquet", "statistics", rows)
        predicates = [("present", ">", 0), ("scenario_id", "==", 1)]
        assert list(
            iter_shard_rows(parquet_path, "statistics", "parquet",
                            columns=["signal", "present"], predicates=predicates)
        ) == list(
            iter_shard_rows(jsonl_path, "statistics", "jsonl",
                            columns=["signal", "present"], predicates=predicates)
        )

    def test_empty_parquet_shard(self, tmp_path):
        path = _roundtrip(tmp_path, "parquet", "deltas", [])
        assert list(iter_shard_rows(path, "deltas", "parquet")) == []
