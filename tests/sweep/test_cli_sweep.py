"""End-to-end `repro sweep` CLI: run, info and query over a shard directory."""

import json
import os

import pytest

from repro.casestudies import PRODUCER_CONSUMER_AADL
from repro.cli import _parse_predicate, build_parser, main


@pytest.fixture()
def model_file(tmp_path):
    path = tmp_path / "producer_consumer.aadl"
    path.write_text(PRODUCER_CONSUMER_AADL)
    return str(path)


class TestPredicateParsing:
    def test_operators_and_json_values(self):
        assert _parse_predicate("present>0") == ("present", ">", 0)
        assert _parse_predicate("status!=ok") == ("status", "!=", "ok")
        assert _parse_predicate("signal=acc") == ("signal", "==", "acc")
        assert _parse_predicate("scenario_id==3") == ("scenario_id", "==", 3)
        assert _parse_predicate('name=="3"') == ("name", "==", "3")

    def test_unparseable_predicate_exits(self):
        with pytest.raises(SystemExit):
            _parse_predicate("no-operator-here")


class TestSweepParser:
    def test_run_defaults(self, model_file, tmp_path):
        args = build_parser().parse_args(
            ["sweep", "run", model_file, "--out", str(tmp_path / "d")]
        )
        assert args.scenarios == 1000
        assert args.partition_size == 1024
        assert args.format == "auto"
        assert args.resume is False

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])


class TestSweepCommands:
    def test_run_info_query_round_trip(self, model_file, tmp_path, capsys):
        out = str(tmp_path / "shards")
        code = main([
            "sweep", "run", model_file, "--out", out,
            "--scenarios", "10", "--partition-size", "4",
            "--length", "40", "--format", "jsonl",
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "10 scenario(s)" in printed
        assert "3 partition" in printed
        assert os.path.exists(os.path.join(out, "manifest.json"))

        assert main(["sweep", "info", out]) == 0
        info = capsys.readouterr().out
        assert "complete" in info
        assert "statistics" in info

        assert main([
            "sweep", "query", out,
            "--table", "scenarios",
            "--columns", "scenario_id,status",
            "--where", "status=ok",
            "--limit", "5",
        ]) == 0
        captured = capsys.readouterr()
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert 0 < len(lines) <= 5
        for line in lines:
            row = json.loads(line)
            assert row["status"] == "ok"
            assert set(row) == {"scenario_id", "status"}

    def test_resume_of_finished_sweep(self, model_file, tmp_path, capsys):
        out = str(tmp_path / "shards")
        argv = [
            "sweep", "run", model_file, "--out", out,
            "--scenarios", "6", "--length", "20",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Without --resume the directory is refused...
        with pytest.raises(SystemExit):
            main(argv)
        # ...with it, the completed sweep is a cheap no-op.
        assert main(argv + ["--resume"]) == 0
        assert "resumed" in capsys.readouterr().out

    def test_query_statistics_table(self, model_file, tmp_path, capsys):
        out = str(tmp_path / "shards")
        assert main([
            "sweep", "run", model_file, "--out", out,
            "--scenarios", "4", "--length", "20",
        ]) == 0
        capsys.readouterr()
        assert main([
            "sweep", "query", out, "--table", "statistics",
            "--where", "present>0", "--limit", "3",
        ]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert lines
        assert all(json.loads(line)["present"] > 0 for line in lines)
