"""Tests of the thread timing execution model (Fig. 2) and the traceability map."""

import pytest

from repro.aadl.properties import DispatchProtocol, IOReference, IOTimeSpec
from repro.core.timing import (
    PREDECLARED_EVENT_PORTS,
    ThreadEvent,
    ThreadTimingModel,
    input_freeze_instants,
    output_send_instants,
    thread_timing_model,
)
from repro.core.traceability import TraceabilityMap, sanitize_identifier


class TestThreadTimingModel:
    def make_model(self, input_ref=IOReference.DISPATCH, output_ref=IOReference.COMPLETION,
                   period=4.0, deadline=4.0, wcet=1.0):
        return ThreadTimingModel(
            name="th",
            dispatch_protocol=DispatchProtocol.PERIODIC,
            period_ms=period,
            deadline_ms=deadline,
            wcet_ms=wcet,
            input_time=IOTimeSpec(input_ref),
            output_time=IOTimeSpec(output_ref),
        )

    def test_job_events_default_profile(self):
        events = self.make_model().job_events_ms(8.0)
        assert events[ThreadEvent.DISPATCH] == 8.0
        assert events[ThreadEvent.INPUT_FREEZE] == 8.0
        assert events[ThreadEvent.START] == 8.0
        assert events[ThreadEvent.COMPLETE] == 9.0
        assert events[ThreadEvent.OUTPUT_SEND] == 9.0
        assert events[ThreadEvent.DEADLINE] == 12.0

    def test_job_events_with_scheduled_start(self):
        events = self.make_model().job_events_ms(8.0, start_ms=10.0)
        assert events[ThreadEvent.START] == 10.0
        assert events[ThreadEvent.COMPLETE] == 11.0

    def test_output_at_deadline_for_delayed_connection(self):
        events = self.make_model(output_ref=IOReference.DEADLINE).job_events_ms(0.0)
        assert events[ThreadEvent.OUTPUT_SEND] == 4.0

    def test_input_freeze_at_start(self):
        events = self.make_model(input_ref=IOReference.START).job_events_ms(0.0, start_ms=2.0)
        assert events[ThreadEvent.INPUT_FREEZE] == 2.0

    def test_visible_inputs_fig2_scenario(self):
        """Fig. 2: values arriving after Input_Time wait for the next dispatch."""
        model = self.make_model(period=4.0)
        visible = model.visible_inputs(arrivals_ms=[1.0, 5.0, 6.5], horizon_ms=12.0)
        assert visible[0.0] == []
        assert visible[4.0] == [1.0]
        assert visible[8.0] == [5.0, 6.5]

    def test_visible_inputs_requires_periodic(self):
        model = ThreadTimingModel(
            name="t", dispatch_protocol=DispatchProtocol.SPORADIC, period_ms=None, deadline_ms=None,
            wcet_ms=0.0, input_time=IOTimeSpec(IOReference.DISPATCH), output_time=IOTimeSpec(IOReference.COMPLETION),
        )
        with pytest.raises(ValueError):
            model.visible_inputs([], 10)

    def test_per_port_io_times_override_default(self):
        model = self.make_model()
        model.port_input_times["special"] = IOTimeSpec(IOReference.START)
        assert model.input_time_of("special").reference is IOReference.START
        assert model.input_time_of("other").reference is IOReference.DISPATCH

    def test_helper_functions(self):
        assert input_freeze_instants(IOTimeSpec(IOReference.DISPATCH, 0, 1), 4.0, None) == 5.0
        assert input_freeze_instants(IOTimeSpec(IOReference.NO_IO), 4.0, None) == 4.0
        assert output_send_instants(IOTimeSpec(IOReference.START, 0, 1), 6.0, 8.0, 5.0) == 6.0

    def test_predeclared_ports_list(self):
        assert PREDECLARED_EVENT_PORTS == ("dispatch", "complete", "error")


class TestExtractionFromInstance:
    def test_case_study_thread_timing(self, pc_root):
        producer = pc_root.find(["prProdCons", "thProducer"])
        timing = thread_timing_model(producer)
        assert timing.is_periodic
        assert timing.period_ms == 4.0
        assert timing.deadline_ms == 4.0
        assert timing.wcet_ms == 1.0
        assert timing.input_time.reference is IOReference.DISPATCH
        assert timing.output_time.reference is IOReference.COMPLETION

    def test_default_wcet_fraction_when_missing(self):
        from repro.aadl.instance import instantiate
        from repro.aadl.parser import parse_string

        text = """
        package P
        public
          thread t
          properties
            Dispatch_Protocol => Periodic;
            Period => 10 ms;
          end t;
          thread implementation t.impl
          end t.impl;
          process p
          end p;
          process implementation p.impl
          subcomponents
            w: thread t.impl;
          end p.impl;
        end P;
        """
        root = instantiate(parse_string(text), "p.impl")
        timing = thread_timing_model(root.subcomponents["w"], default_wcet_fraction=0.3)
        assert timing.wcet_ms == pytest.approx(3.0)


class TestTraceability:
    def test_sanitize_identifier(self):
        assert sanitize_identifier("prProdCons") == "prProdCons"
        assert sanitize_identifier("Pkg::Comp.impl") == "Pkg_Comp_impl"
        assert sanitize_identifier("a.b c") == "a_b_c"
        assert sanitize_identifier("1st") == "_1st"
        assert sanitize_identifier("") == "_"

    def test_bidirectional_links(self):
        trace = TraceabilityMap()
        trace.add("sys.proc.th", "th", "process", "thread")
        trace.add("sys.proc.th.port", "th.port_p", "instance")
        assert trace.signal_names_of("sys.proc.th") == ["th"]
        assert trace.aadl_names_of("th") == ["sys.proc.th"]
        assert len(trace) == 2
        assert len(trace.links_of_kind("process")) == 1
        assert "sys.proc.th" in trace.report()

    def test_case_study_trace_preserves_names(self, pc_translation):
        trace = pc_translation.trace
        assert "thProducer" in trace.signal_names_of("ProducerConsumerSystem.prProdCons.thProducer")
        assert trace.links_of_kind("instance")
