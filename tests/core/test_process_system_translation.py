"""Tests of the process / processor / system translation and the ASME2SSME driver."""

import pytest

from repro.core import TranslationConfig, translate_process, translate_system
from repro.core.process_model import translate_process as translate_process_fn
from repro.scheduling.static_scheduler import SchedulingPolicy
from repro.sig.analysis import check_determinism, detect_deadlocks
from repro.sig.printer import interface_summary, to_signal_source


@pytest.fixture(scope="module")
def translated_process(pc_process):
    return translate_process_fn(pc_process)


class TestProcessTranslation:
    def test_threads_instantiated(self, translated_process):
        names = {inst.instance_name for inst in translated_process.model.instances}
        assert {"thProducer", "thConsumer", "thProdTimer", "thConsTimer"} <= names

    def test_shared_data_instantiated_once(self, translated_process):
        names = [inst.instance_name for inst in translated_process.model.instances]
        assert names.count("Queue") == 1
        assert len(translated_process.shared_data) == 1

    def test_queue_partial_definition_from_single_writer(self, translated_process):
        queue = translated_process.shared_data[0]
        assert [w.thread_name for w in queue.writers] == ["thProducer"]
        assert [r.thread_name for r in queue.readers] == ["thConsumer"]
        partial = [eq for eq in translated_process.model.equations if eq.partial]
        assert any(eq.target == "Queue_w" for eq in partial)

    def test_control_inputs_exposed_per_thread(self, translated_process):
        inputs = {d.name for d in translated_process.model.inputs()}
        assert {"thProducer_dispatch", "thProducer_start", "thProducer_deadline"} <= inputs
        assert translated_process.control_signal("thProducer", "start") == "thProducer_start"

    def test_timing_inputs_exposed_per_port(self, translated_process):
        inputs = {d.name for d in translated_process.model.inputs()}
        assert "thProducer_pProdStart_Frozen_time" in inputs
        assert "thProducer_pProdOK_Output_time" in inputs
        assert translated_process.timing_signal("thProducer", "pProdStart", "frozen") == \
            "thProducer_pProdStart_Frozen_time"

    def test_process_boundary_ports(self, translated_process):
        summary = interface_summary(translated_process.model)
        assert "pProdStart" in summary["inputs"]
        assert "pProdTimeOut" in summary["outputs"]

    def test_alarm_outputs_exposed(self, translated_process):
        outputs = {d.name for d in translated_process.model.outputs()}
        assert "thProducer_Alarm" in outputs and "thConsTimer_Alarm" in outputs

    def test_connection_wiring_to_timer(self, translated_process):
        # thProducer.pProdStartTimer -> thProdTimer.pStartTimer: the timer's
        # arrival input is bound to the producer's out-port local.
        instance = next(i for i in translated_process.model.instances if i.instance_name == "thProdTimer")
        assert instance.bindings["pStartTimer"] == "thProducer_pProdStartTimer"

    def test_process_statically_clean(self, translated_process):
        assert detect_deadlocks(translated_process.model).deadlock_free
        assert check_determinism(translated_process.model).deterministic


class TestSystemTranslation:
    def test_fig3_structure(self, pc_translation):
        system = pc_translation.system
        instance_names = {inst.instance_name for inst in system.model.instances}
        assert "Processor1" in instance_names
        assert "sysEnv" in instance_names
        assert "sysOperatorDisplay" in instance_names
        assert "System_behavior" in instance_names
        assert "System_property" in instance_names

    def test_processor_contains_bound_process_and_scheduler(self, pc_translation):
        processor = pc_translation.processors["ProducerConsumerSystem.Processor1"]
        instance_names = {inst.instance_name for inst in processor.model.instances}
        assert "prProdCons" in instance_names
        assert "scheduler" in instance_names
        assert processor.schedule is not None

    def test_schedule_synthesised_for_bound_processor(self, pc_translation):
        assert "ProducerConsumerSystem.Processor1" in pc_translation.schedules
        schedule = pc_translation.schedules["ProducerConsumerSystem.Processor1"]
        assert schedule.hyperperiod_ms == 24.0

    def test_environment_ports_become_system_inputs(self, pc_translation):
        inputs = {d.name for d in pc_translation.system_model.inputs()}
        assert "sysEnv_pProdStart_stimulus" in inputs
        assert "tick" in inputs

    def test_timeout_routed_to_operator_display(self, pc_translation):
        # The system connection dispProd links the process out port to the
        # display observation through one shared local signal.
        system = pc_translation.system.model
        locals_ = {d.name for d in system.locals()}
        assert "conn_dispProd" in locals_ and "conn_envProd" in locals_

    def test_statistics_and_model_lookup(self, pc_translation):
        stats = pc_translation.statistics()
        assert stats["models"] > 50
        assert stats["signals"] > 300
        assert stats["trace_links"] > 20
        assert pc_translation.thread_model("thProducer").name == "thProducer"
        assert pc_translation.process_model("prProdCons").name == "prProdCons"
        with pytest.raises(KeyError):
            pc_translation.thread_model("ghost")
        with pytest.raises(KeyError):
            pc_translation.process_model("ghost")

    def test_system_source_rendering_mentions_fig3_instances(self, pc_translation):
        text = to_signal_source(pc_translation.system_model, include_submodels=False)
        assert "Processor1 ::" in text
        assert "sysEnv ::" in text
        assert "System_behavior ::" in text

    def test_whole_system_deadlock_free_and_deterministic(self, pc_translation):
        flat = pc_translation.system_model.flatten()
        assert detect_deadlocks(flat).deadlock_free
        assert check_determinism(flat).deterministic


class TestTranslationConfig:
    def test_translation_without_scheduler_keeps_control_inputs_free(self, pc_root):
        result = translate_system(pc_root, TranslationConfig(include_scheduler=False))
        assert not result.schedules
        processor = next(iter(result.processors.values()))
        inputs = {d.name for d in processor.model.inputs()}
        assert any(name.endswith("thProducer_dispatch") for name in inputs)

    def test_translation_with_edf_policy(self, pc_root):
        result = translate_system(pc_root, TranslationConfig(scheduling_policy=SchedulingPolicy.EARLIEST_DEADLINE_FIRST))
        schedule = next(iter(result.schedules.values()))
        assert schedule.policy is SchedulingPolicy.EARLIEST_DEADLINE_FIRST

    def test_faithful_mode_translation_config(self, pc_root):
        result = translate_system(pc_root, TranslationConfig(resolve_mode_conflicts=False))
        report = check_determinism(result.thread_model("thProducer"))
        assert not report.deterministic

    def test_unbound_process_gets_logical_processor(self):
        from repro.aadl.instance import instantiate
        from repro.aadl.parser import parse_string

        text = """
        package P
        public
          thread t
          properties
            Dispatch_Protocol => Periodic;
            Period => 4 ms;
            Compute_Execution_Time => 0 ms .. 1 ms;
          end t;
          thread implementation t.impl
          end t.impl;
          process p
          end p;
          process implementation p.impl
          subcomponents
            w: thread t.impl;
          end p.impl;
          system s
          end s;
          system implementation s.impl
          subcomponents
            host: process p.impl;
          end s.impl;
        end P;
        """
        root = instantiate(parse_string(text), "s.impl")
        result = translate_system(root)
        assert "logical_processor" in result.processors
        assert "logical_processor" in result.schedules
