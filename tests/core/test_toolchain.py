"""Tests of the complete automatic tool chain (Section IV-E)."""

import pytest

from repro.casestudies import PRODUCER_CONSUMER_AADL
from repro.core import ToolchainOptions, run_toolchain
from repro.sig.vcd import parse_vcd


class TestToolchainRun:
    def test_all_stages_produced_artifacts(self, pc_toolchain):
        result = pc_toolchain
        assert result.root.name == "ProducerConsumerSystem"
        assert not result.diagnostics.has_errors
        assert result.schedules
        assert result.clock_report is not None
        assert result.determinism is not None and result.determinism.deterministic
        assert result.deadlocks is not None and result.deadlocks.deadlock_free
        assert result.trace is not None
        assert result.profile is not None

    def test_simulation_covers_two_hyperperiods(self, pc_toolchain):
        schedule = next(iter(pc_toolchain.schedules.values()))
        assert pc_toolchain.trace.length == 2 * schedule.hyperperiod_ticks

    def test_no_alarm_in_nominal_simulation(self, pc_toolchain):
        alarms = [name for name in pc_toolchain.trace.signals() if name.endswith("_Alarm")]
        assert alarms
        for alarm in alarms:
            assert pc_toolchain.trace.clock_of(alarm) == []

    def test_thread_dispatch_clocks_follow_periods(self, pc_toolchain):
        trace = pc_toolchain.trace
        dispatch = next(n for n in trace.signals() if n.endswith("sched_thProducer_dispatch"))
        assert trace.clock_of(dispatch) == [0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44]
        consumer = next(n for n in trace.signals() if n.endswith("sched_thConsumer_dispatch"))
        assert trace.clock_of(consumer) == [0, 6, 12, 18, 24, 30, 36, 42]

    def test_schedulability_and_synchronizability_reports(self, pc_toolchain):
        report = next(iter(pc_toolchain.schedulability.values()))
        assert report.schedulable
        sync = next(iter(pc_toolchain.synchronizability.values()))
        assert len(sync.pairs) == 6

    def test_task_sets_extracted_per_processor(self, pc_toolchain):
        task_set = next(iter(pc_toolchain.task_sets.values()))
        assert len(task_set) == 4

    def test_summary_text(self, pc_toolchain):
        text = pc_toolchain.summary()
        assert "hyper-period 24.0 ms" in text
        assert "clock calculus" in text

    def test_vcd_export(self, pc_toolchain, tmp_path):
        path = tmp_path / "cosim.vcd"
        signals = [n for n in pc_toolchain.trace.signals() if n.endswith("_dispatch")][:4]
        pc_toolchain.write_vcd(str(path), signals=signals)
        document = parse_vcd(path.read_text())
        assert set(document.variables) == set(signals)

    def test_profile_totals_positive(self, pc_toolchain):
        assert pc_toolchain.profile.total > 0
        assert pc_toolchain.profile.instants == pc_toolchain.trace.length


class TestToolchainOptions:
    def test_missing_root_raises(self):
        with pytest.raises(ValueError):
            run_toolchain(PRODUCER_CONSUMER_AADL, ToolchainOptions())

    def test_simulation_disabled(self):
        options = ToolchainOptions(
            root_implementation="ProducerConsumerSystem.others",
            default_package="ProducerConsumer",
            simulate_hyperperiods=0,
        )
        result = run_toolchain(PRODUCER_CONSUMER_AADL, options)
        assert result.trace is None
        assert result.profile is None
        with pytest.raises(RuntimeError):
            result.write_vcd("unused.vcd")

    def test_strict_validation_failure(self):
        bad = """
        package Bad
        public
          thread t
          properties
            Dispatch_Protocol => Periodic;
          end t;
          thread implementation t.impl
          end t.impl;
          process p
          end p;
          process implementation p.impl
          subcomponents
            w: thread t.impl;
          end p.impl;
        end Bad;
        """
        with pytest.raises(ValueError):
            run_toolchain(bad, ToolchainOptions(root_implementation="p.impl", default_package="Bad"))

    def test_lenient_validation_continues(self):
        text = """
        package Ok
        public
          thread t
          properties
            Dispatch_Protocol => Periodic;
            Period => 4 ms;
            Deadline => 6 ms;
            Compute_Execution_Time => 0 ms .. 1 ms;
          end t;
          thread implementation t.impl
          end t.impl;
          process p
          end p;
          process implementation p.impl
          subcomponents
            w: thread t.impl;
          end p.impl;
        end Ok;
        """
        result = run_toolchain(
            text,
            ToolchainOptions(root_implementation="p.impl", default_package="Ok", strict_validation=False,
                             simulate_hyperperiods=1),
        )
        assert result.diagnostics.warnings  # Deadline > Period
        assert result.trace is not None

    def test_record_signals_option(self):
        options = ToolchainOptions(
            root_implementation="ProducerConsumerSystem.others",
            default_package="ProducerConsumer",
            simulate_hyperperiods=1,
            record_signals=["tick"],
            cost_model=None,
        )
        result = run_toolchain(PRODUCER_CONSUMER_AADL, options)
        assert result.trace.signals() == ["tick"]
        assert result.profile is None
