"""Tests of the command-line interface (python -m repro …)."""

import os

import pytest

from repro.casestudies import PRODUCER_CONSUMER_AADL
from repro.cli import build_parser, main


@pytest.fixture()
def model_file(tmp_path):
    path = tmp_path / "producer_consumer.aadl"
    path.write_text(PRODUCER_CONSUMER_AADL)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyse_defaults(self, model_file):
        args = build_parser().parse_args(["analyse", model_file])
        assert args.policy == "RM"
        assert args.hyperperiods == 2
        assert args.root is None


class TestCommands:
    def test_schedule_command_prints_table(self, model_file, capsys):
        code = main(["schedule", model_file, "--affine"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hyper-period 24.0 ms" in out
        assert "thProducer" in out
        assert "Affine export" in out

    def test_schedule_with_edf_policy(self, model_file, capsys):
        assert main(["schedule", model_file, "--policy", "EDF"]) == 0
        assert "(EDF)" in capsys.readouterr().out

    def test_analyse_command_reports_clean_model(self, model_file, capsys):
        code = main(["analyse", model_file, "--hyperperiods", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Determinism report" in out
        assert "deadlock-free" in out

    def test_translate_command_writes_signal_sources(self, model_file, tmp_path, capsys):
        output = str(tmp_path / "sig")
        code = main(["translate", model_file, "-o", output])
        out = capsys.readouterr().out
        assert code == 0
        assert os.path.isdir(output)
        files = os.listdir(output)
        assert any(name.endswith(".sig") for name in files)
        assert "traceability links" in out

    def test_simulate_command_with_vcd(self, model_file, tmp_path, capsys):
        vcd = str(tmp_path / "trace.vcd")
        code = main(["simulate", model_file, "--hyperperiods", "1", "--vcd", vcd])
        out = capsys.readouterr().out
        assert code == 0
        assert os.path.exists(vcd)
        assert "deadline alarms: none" in out

    def test_simulate_stream_vcd_and_stats(self, model_file, tmp_path, capsys):
        stream = str(tmp_path / "stream.vcd")
        code = main(["simulate", model_file, "--hyperperiods", "1",
                     "--stream-vcd", stream, "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert os.path.exists(stream)
        assert f"streaming VCD trace written to {stream}" in out
        assert "streamed statistics" in out
        assert "$enddefinitions $end" in open(stream).read()

    def test_simulate_no_trace_streams_only(self, model_file, capsys):
        code = main(["simulate", model_file, "--hyperperiods", "1", "--no-trace", "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no trace materialised" in out
        assert "streamed statistics" in out
        # The alarm report survives --no-trace through the streaming sink.
        assert "deadline alarms: none" in out

    def test_simulate_no_trace_batch_streams_statistics(self, model_file, capsys):
        code = main(["simulate", model_file, "--hyperperiods", "1",
                     "--no-trace", "--batch", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "batch of 3 scenario(s)" in out
        assert "streamed" in out

    def test_simulate_no_trace_rejects_post_hoc_vcd(self, model_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", model_file, "--no-trace", "--vcd", str(tmp_path / "t.vcd")])

    def test_simulate_vectorized_backend_with_block_size(self, model_file, capsys):
        code = main(["simulate", model_file, "--hyperperiods", "1",
                     "--backend", "vectorized", "--block-size", "16", "--batch", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[vectorized backend]" in out
        assert "backend 'vectorized'" in out  # the --batch sweep uses it too

    def test_simulate_window_sink(self, model_file, capsys):
        code = main(["simulate", model_file, "--hyperperiods", "1",
                     "--no-trace", "--window", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "window: last 5 instant(s) retained" in out
        assert "deadline alarms: none" in out

    def test_simulate_delta_sink(self, model_file, capsys):
        code = main(["simulate", model_file, "--hyperperiods", "1",
                     "--no-trace", "--deltas", "tick,missing_signal"])
        out = capsys.readouterr().out
        assert code == 0
        assert "change log of" in out
        assert "tick" in out
        assert "missing_signal" not in out  # unknown names are ignored

    def test_simulate_delta_sink_watches_all(self, model_file, capsys):
        code = main(["simulate", model_file, "--hyperperiods", "1",
                     "--deltas", "all"])
        out = capsys.readouterr().out
        assert code == 0
        assert "change instant(s) across" in out

    def test_simulate_scenario_length_sweep(self, model_file, capsys):
        code = main(["simulate", model_file, "--hyperperiods", "1",
                     "--no-trace", "--scenario-length", "16", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario-length sweep over 2 horizon(s)" in out
        assert "one symbolic scenario" in out
        assert "length         16: 16 instants streamed" in out
        assert "length         64: 64 instants streamed" in out

    def test_default_root_detection(self, model_file, capsys):
        # No --root: the first system implementation is used.
        assert main(["schedule", model_file]) == 0
        assert "thConsumer" in capsys.readouterr().out

    def test_builtin_case_study_alias(self, capsys):
        assert main(["schedule", "producer_consumer"]) == 0
        assert "thProdTimer" in capsys.readouterr().out

    def test_casestudy_list(self, capsys):
        assert main(["casestudy", "--list"]) == 0
        out = capsys.readouterr().out
        assert "producer_consumer" in out and "flight_guidance" in out

    def test_casestudy_detail(self, capsys):
        assert main(["casestudy", "producer_consumer"]) == 0
        out = capsys.readouterr().out
        assert "threads" in out and ": 4" in out

    def test_missing_root_error(self, tmp_path):
        path = tmp_path / "datatypes.aadl"
        path.write_text("package Empty\npublic\n  data d\n  end d;\nend Empty;\n")
        with pytest.raises(SystemExit):
            main(["schedule", str(path)])
