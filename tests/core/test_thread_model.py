"""Tests of the thread translation (Fig. 4): bundles, ports, observer, modes."""

import pytest

from repro.core.thread_model import ThreadBehaviour, translate_thread
from repro.core.traceability import TraceabilityMap
from repro.sig import builder as b
from repro.sig.analysis import check_determinism, detect_deadlocks
from repro.sig.printer import interface_summary, to_signal_source
from repro.sig.simulator import Scenario, Simulator


@pytest.fixture(scope="module")
def producer_thread(pc_root):
    return pc_root.find(["prProdCons", "thProducer"])


@pytest.fixture(scope="module")
def translated_producer(producer_thread):
    return translate_thread(producer_thread)


class TestInterface:
    def test_ctl1_bundle_fields(self, translated_producer):
        model = translated_producer.model
        assert set(model.bundles["ctl1"].fields) == {"Dispatch", "Resume", "Deadline"}
        for signal in model.bundles["ctl1"].signal_names():
            assert model.signals[signal].direction.value == "input"

    def test_ctl2_bundle_and_alarm_outputs(self, translated_producer):
        model = translated_producer.model
        assert set(model.bundles["ctl2"].fields) == {"Complete", "Error"}
        outputs = {d.name for d in model.outputs()}
        assert {"ctl2_Complete", "ctl2_Error", "Alarm"} <= outputs

    def test_time1_bundle_lists_port_timing_events(self, translated_producer):
        model = translated_producer.model
        fields = set(model.bundles["time1"].fields)
        assert "pProdStart_Frozen_time" in fields
        assert "pProdStartTimer_Output_time" in fields

    def test_in_and_out_ports_appear_in_interface(self, translated_producer):
        summary = interface_summary(translated_producer.model)
        assert "pProdStart" in summary["inputs"]
        assert "pProdTimeOut" in summary["inputs"]
        assert "pProdStartTimer" in summary["outputs"]
        assert "pProdOK" in summary["outputs"]

    def test_data_access_signals(self, translated_producer):
        summary = interface_summary(translated_producer.model)
        assert "reqQueue_write" in summary["outputs"]  # write_only access
        assert "reqQueue_read_value" not in summary["inputs"]

    def test_port_instances_created(self, translated_producer):
        names = {inst.instance_name for inst in translated_producer.model.instances}
        assert "port_pProdStart" in names
        assert "port_pProdOK" in names
        assert "property_observer" in names

    def test_pragmas_preserve_aadl_name(self, translated_producer):
        assert translated_producer.model.pragmas["aadl_name"].endswith("thProducer")

    def test_signal_source_looks_like_fig4(self, translated_producer):
        text = to_signal_source(translated_producer.model, include_submodels=False)
        assert "process thProducer =" in text
        assert "ctl1_Dispatch" in text and "Alarm" in text

    def test_traceability_links_recorded(self, producer_thread):
        trace = TraceabilityMap()
        translate_thread(producer_thread, trace=trace)
        assert trace.signal_names_of(producer_thread.qualified_name)
        assert any("port" in (link.detail or "") for link in trace.links)


class TestBehaviourSimulation:
    def simulate(self, translated, length=24, resumes=None, dispatches=None, deadlines=None,
                 arrivals=None, send_times=None):
        model = translated.model
        sc = Scenario(length)
        sc.set_at("ctl1_Dispatch", {t: True for t in (dispatches or [])})
        sc.set_at("ctl1_Resume", {t: True for t in (resumes or [])})
        sc.set_at("ctl1_Deadline", {t: True for t in (deadlines or [])})
        for name, at in (arrivals or {}).items():
            sc.set_at(name, at)
        for name, at in (send_times or {}).items():
            sc.set_at(name, {t: True for t in at})
        return Simulator(model, strict=False).run(sc)

    def test_complete_follows_resume(self, translated_producer):
        trace = self.simulate(translated_producer, resumes=[0, 4, 8], dispatches=[0, 4, 8])
        assert trace.clock_of("ctl2_Complete") == [0, 4, 8]

    def test_job_index_counts_activations(self, translated_producer):
        trace = self.simulate(translated_producer, resumes=[0, 4, 8], dispatches=[0, 4, 8])
        assert trace.present_values("job_index") == [1, 2, 3]

    def test_event_data_output_sent_at_output_time(self, translated_producer):
        trace = self.simulate(
            translated_producer,
            resumes=[0, 4],
            dispatches=[0, 4],
            send_times={"time1_pProdOK_Output_time": [1, 5]},
        )
        assert trace.clock_of("pProdOK") == [1, 5]
        assert trace.present_values("pProdOK") == [1, 2]

    def test_no_alarm_when_completing_each_period(self, translated_producer):
        trace = self.simulate(
            translated_producer,
            dispatches=[0, 4, 8],
            resumes=[0, 4, 8],
            deadlines=[4, 8, 12],
            length=16,
        )
        assert trace.clock_of("Alarm") == []

    def test_alarm_raised_when_activation_missing(self, translated_producer):
        trace = self.simulate(
            translated_producer,
            dispatches=[0, 4, 8],
            resumes=[0, 8],  # the job dispatched at 4 never runs
            deadlines=[4, 8, 12],
            length=16,
        )
        assert 8 in trace.clock_of("Alarm")

    def test_write_access_produces_value_at_resume(self, translated_producer):
        trace = self.simulate(translated_producer, resumes=[0, 4], dispatches=[0, 4])
        assert trace.clock_of("reqQueue_write") == [0, 4]
        assert trace.present_values("reqQueue_write") == [1, 2]

    def test_custom_behaviour_overrides_default(self, producer_thread):
        behaviour = ThreadBehaviour(
            output_expressions={"pProdOK": lambda model: b.func("*", b.ref("job_index"), 10)}
        )
        translated = translate_thread(producer_thread, behaviour=behaviour)
        trace = self.simulate(
            translated,
            resumes=[0, 4],
            dispatches=[0, 4],
            send_times={"time1_pProdOK_Output_time": [1, 5]},
        )
        assert trace.present_values("pProdOK") == [10, 20]


class TestModeAutomaton:
    def test_deterministic_translation_by_default(self, producer_thread):
        translated = translate_thread(producer_thread, resolve_mode_conflicts=True)
        assert check_determinism(translated.model).deterministic

    def test_faithful_translation_is_flagged_nondeterministic(self, producer_thread):
        translated = translate_thread(producer_thread, resolve_mode_conflicts=False)
        report = check_determinism(translated.model)
        assert not report.deterministic
        assert report.issues_for("mode_update")

    def test_current_mode_output_present(self, producer_thread):
        translated = translate_thread(producer_thread)
        assert "current_mode" in {d.name for d in translated.model.outputs()}
        assert translated.model.pragmas["modes"] == "idle,producing,error"

    def test_mode_transition_simulation(self, producer_thread):
        translated = translate_thread(producer_thread)
        model = translated.model
        sc = Scenario(10)
        sc.set_at("ctl1_Dispatch", {0: True, 4: True, 8: True})
        sc.set_at("ctl1_Resume", {0: True, 4: True, 8: True})
        sc.set_at("pProdStart", {2: True})     # idle -> producing
        sc.set_at("pProdTimeOut", {6: True})   # producing -> idle (t2 wins by document order)
        trace = Simulator(model, strict=False).run(sc)
        modes = trace.present_values("current_mode")
        # mode indices: idle=0, producing=1, error=2 (declaration order)
        assert modes[0] == 0
        assert 1 in modes
        assert modes[-1] == 0

    def test_threads_without_modes_have_no_automaton(self, pc_root):
        consumer = pc_root.find(["prProdCons", "thConsumer"])
        translated = translate_thread(consumer)
        assert "current_mode" not in translated.model.signals


class TestStaticProperties:
    def test_translated_thread_deadlock_free(self, translated_producer):
        assert detect_deadlocks(translated_producer.model).deadlock_free

    def test_translated_thread_deterministic(self, translated_producer):
        assert check_determinism(translated_producer.model).deterministic

    def test_timer_thread_queue_size_respected(self, pc_root):
        timer = pc_root.find(["prProdCons", "thProdTimer"])
        translated = translate_thread(timer)
        port_model = translated.model.submodels["in_event_port_pStartTimer"]
        assert port_model.parameters["queue_size"] == 2
