"""Tests of the port translation (Fig. 5) and shared-data translation (Fig. 6)."""

import pytest

from repro.core.data_model import access_rights, standalone_shared_data_model
from repro.core.port_model import (
    frozen_signal_name,
    frozen_time_signal_name,
    output_time_signal_name,
    port_value_type,
    standalone_in_event_port_model,
)
from repro.aadl.model import AccessKind, DataAccess, Port, PortKind
from repro.aadl.properties import PropertyAssociation, enum_value
from repro.sig.analysis import check_determinism, detect_deadlocks
from repro.sig.simulator import Scenario, Simulator
from repro.sig.values import EVENT, INTEGER


class TestNamingConventions:
    def test_signal_names_follow_figure_conventions(self):
        assert frozen_signal_name("pProdStart") == "pProdStart_frozen"
        assert frozen_time_signal_name("pProdStart") == "time1_pProdStart_Frozen_time"
        assert output_time_signal_name("pProdOK") == "time1_pProdOK_Output_time"

    def test_port_value_types(self):
        assert port_value_type(Port(name="e", kind=PortKind.EVENT)) is EVENT
        assert port_value_type(Port(name="d", kind=PortKind.DATA)) is INTEGER
        assert port_value_type(Port(name="ed", kind=PortKind.EVENT_DATA)) is INTEGER


class TestStandaloneInEventPort:
    def simulate(self, arrivals, freezes, queue_size=1, length=16):
        model = standalone_in_event_port_model("pProdStart", queue_size=queue_size)
        sc = Scenario(length)
        sc.set_at("pProdStart", arrivals)
        sc.set_at("time1_pProdStart_Frozen_time", {t: True for t in freezes})
        return Simulator(model).run(sc)

    def test_fig5_in_fifo_then_frozen_fifo(self):
        """Items received between freezes are moved to the frozen fifo at Input_Time."""
        trace = self.simulate(arrivals={1: 11, 5: 22}, freezes=[0, 4, 8], queue_size=2)
        assert trace.present_values("pProdStart_frozen_count") == [0, 1, 1]
        assert trace.present_values("pProdStart_frozen") == [11, 22]

    def test_fig2_late_values_wait_for_next_freeze(self):
        """The two values arriving after the first Input_Time are not processed
        until the next Input_Time (the 2 and 3 of Fig. 2)."""
        trace = self.simulate(arrivals={1: 2, 2: 3}, freezes=[0, 4], queue_size=2)
        assert trace.present_values("pProdStart_frozen_count") == [0, 2]
        assert trace.present_values("pProdStart_frozen") == [3]

    def test_queue_size_one_drops_second_arrival(self):
        trace = self.simulate(arrivals={1: 2, 2: 3}, freezes=[0, 4], queue_size=1)
        assert trace.clock_of("pProdStart_dropped") == [2]

    def test_model_is_deadlock_free_and_deterministic(self):
        model = standalone_in_event_port_model("p", queue_size=2)
        assert detect_deadlocks(model).deadlock_free
        assert check_determinism(model).deterministic


class TestAccessRights:
    def make_access(self, right=None):
        access = DataAccess(name="reqQueue", access=AccessKind.REQUIRES)
        if right:
            access.properties.add(PropertyAssociation("Access_Right", enum_value(right)))
        return access

    def test_default_is_read_write(self):
        assert access_rights(self.make_access()) == (True, True)

    def test_read_only(self):
        assert access_rights(self.make_access("read_only")) == (True, False)

    def test_write_only(self):
        assert access_rights(self.make_access("write_only")) == (False, True)

    def test_read_write_explicit(self):
        assert access_rights(self.make_access("read_write")) == (True, True)


class TestStandaloneSharedData:
    def test_fig6_write_then_read(self):
        model = standalone_shared_data_model(("thProducer",), ("thConsumer",), data_name="Queue")
        sc = Scenario(10)
        sc.set_at("thProducer_write", {0: 7, 4: 9})
        sc.set_at("thConsumer_read_req", {2: True, 6: True})
        trace = Simulator(model).run(sc)
        assert trace.present_values("Queue_r") == [7, 9]

    def test_partial_definitions_per_writer(self):
        model = standalone_shared_data_model(("w1", "w2"), ("r1",))
        flat = model.flatten()
        partial = [eq for eq in flat.equations if eq.partial and eq.target == "Queue_w"]
        assert len(partial) == 2

    def test_two_writers_at_disjoint_instants_are_deterministic_at_runtime(self):
        model = standalone_shared_data_model(("w1", "w2"), ("r1",))
        sc = Scenario(8)
        sc.set_at("w1_write", {0: 1, 4: 2})
        sc.set_at("w2_write", {2: 10})
        sc.set_at("r1_read_req", {1: True, 3: True, 5: True})
        trace = Simulator(model).run(sc)
        assert trace.present_values("Queue_r") == [1, 10, 2]

    def test_two_writers_same_instant_detected_as_nondeterministic(self):
        from repro.sig.simulator import NonDeterministicDefinition

        model = standalone_shared_data_model(("w1", "w2"), ("r1",))
        sc = Scenario(2)
        sc.set_at("w1_write", {0: 1})
        sc.set_at("w2_write", {0: 2})
        with pytest.raises(NonDeterministicDefinition):
            Simulator(model).run(sc)

    def test_static_determinism_check_flags_unconstrained_writers(self):
        # The clock calculus cannot prove the two writer clocks disjoint without
        # the scheduler's mutual exclusion clocks: the analysis reports it.
        model = standalone_shared_data_model(("w1", "w2"), ("r1",))
        report = check_determinism(model)
        assert not report.deterministic
        assert report.issues_for("Queue_w")

    def test_single_writer_is_statically_deterministic(self):
        model = standalone_shared_data_model(("w1",), ("r1",))
        assert check_determinism(model).deterministic

    def test_reader_only_model_never_produces_values(self):
        model = standalone_shared_data_model((), ("r1",))
        sc = Scenario(4)
        sc.set_at("r1_read_req", {1: True})
        trace = Simulator(model).run(sc)
        assert trace.present_values("Queue_r") == [0]  # initial value

    def test_count_tracks_writes_and_reads(self):
        model = standalone_shared_data_model(("w1",), ("r1",))
        sc = Scenario(6)
        sc.set_at("w1_write", {0: 5, 1: 6})
        sc.set_at("r1_read_req", {3: True})
        trace = Simulator(model).run(sc)
        counts = trace.present_values("Queue_count")
        assert counts[:2] == [1, 2]
        assert counts[-1] == 1
