#!/usr/bin/env python
"""Documentation health checks: markdown links and docstring presence.

Run from the repository root (CI does, see ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python tools/check_docs.py

Two checks, both offline:

1. **Markdown link check** — every relative link of ``README.md`` and
   ``docs/*.md`` must point at an existing file or directory of the
   repository (external ``http(s)``/``mailto`` links are not fetched);
   in-page anchors are checked against the target file's headings.
2. **Docstring presence** — every module of ``repro.sig.engine`` and
   ``repro.sig.sinks``, and every public name they export via ``__all__``,
   must carry a docstring; ``__all__`` itself is audited (each listed name
   must resolve).

The same functions are exercised by ``tests/test_docs.py``, so the tier-1
suite enforces both checks locally as well.
"""

from __future__ import annotations

import importlib
import inspect
import os
import re
import sys
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown files under the link check.
MARKDOWN_FILES = ["README.md", "ROADMAP.md"]
MARKDOWN_GLOB_DIRS = ["docs"]

#: Modules whose module docstring, ``__all__`` audit and per-name docstrings
#: (classes, functions and public methods) are enforced — the engine
#: subpackage and the streaming-sink modules.
DOCUMENTED_MODULES = [
    "repro.sig.engine",
    "repro.sig.engine.backends",
    "repro.sig.engine.batch",
    "repro.sig.engine.faults",
    "repro.sig.engine.lowered",
    "repro.sig.engine.parallel",
    "repro.sig.engine.plan",
    "repro.sig.engine.supervisor",
    "repro.sig.engine.vectorized",
    "repro.sig.scenario",
    "repro.sig.sinks",
    "repro.sig.vcd",
    # The serving layer's framework-free modules.  repro.serve.app is
    # deliberately absent: it imports fastapi, which bare installs (and
    # this offline check) do not have.
    "repro.serve",
    "repro.serve.cache",
    "repro.serve.errors",
    "repro.serve.programs",
    "repro.serve.service",
    # The persistent artifact store.
    "repro.store",
    "repro.store.artifacts",
    "repro.store.toolchain",
    # Fleet-scale sweeps: pure-stdlib by default (pyarrow only upgrades
    # the shard format at runtime), so the whole package is checkable.
    "repro.sweep",
    "repro.sweep.spaces",
    "repro.sweep.shards",
    "repro.sweep.manifest",
    "repro.sweep.executor",
    "repro.sweep.store",
]

#: Modules whose ``__all__`` is audited (every listed name must resolve and
#: the module must carry a docstring) without enforcing per-name docstrings
#: on the whole re-exported kernel.
AUDITED_MODULES = [
    "repro",
    "repro.sig",
]

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _markdown_paths() -> List[str]:
    paths = [os.path.join(REPO_ROOT, name) for name in MARKDOWN_FILES]
    for directory in MARKDOWN_GLOB_DIRS:
        full = os.path.join(REPO_ROOT, directory)
        if os.path.isdir(full):
            for entry in sorted(os.listdir(full)):
                if entry.endswith(".md"):
                    paths.append(os.path.join(full, entry))
    return [path for path in paths if os.path.exists(path)]


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor of one heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def check_markdown_links(paths: Optional[List[str]] = None) -> List[str]:
    """Return one problem string per broken relative link/anchor."""
    problems: List[str] = []
    for path in paths if paths is not None else _markdown_paths():
        base = os.path.dirname(path)
        rel_name = os.path.relpath(path, REPO_ROOT)
        text = open(path, "r", encoding="utf-8").read()
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, anchor = target.partition("#")
            if not target:
                # In-page anchor.
                resolved = path
            else:
                resolved = os.path.normpath(os.path.join(base, target))
                if not os.path.exists(resolved):
                    problems.append(f"{rel_name}: broken link to {target!r}")
                    continue
            if anchor and resolved.endswith(".md"):
                headings = _HEADING_RE.findall(open(resolved, "r", encoding="utf-8").read())
                if anchor not in {_anchor_of(heading) for heading in headings}:
                    problems.append(f"{rel_name}: broken anchor {target!r}#{anchor}")
    return problems


def check_docstrings(module_names: Optional[List[str]] = None) -> List[str]:
    """Return one problem string per missing docstring / unresolvable name."""
    problems: List[str] = []
    for module_name in module_names if module_names is not None else DOCUMENTED_MODULES:
        module = importlib.import_module(module_name)
        if not (module.__doc__ or "").strip():
            problems.append(f"{module_name}: missing module docstring")
        exported = getattr(module, "__all__", None)
        if exported is None:
            problems.append(f"{module_name}: missing __all__")
            continue
        for name in exported:
            try:
                obj = getattr(module, name)
            except AttributeError:
                problems.append(f"{module_name}.__all__ lists {name!r}, which does not resolve")
                continue
            if inspect.ismodule(obj):
                if not (obj.__doc__ or "").strip():
                    problems.append(f"{module_name}.{name}: missing module docstring")
            elif inspect.isclass(obj) or inspect.isroutine(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    problems.append(f"{module_name}.{name}: missing docstring")
                if inspect.isclass(obj):
                    for member_name, member in vars(obj).items():
                        if member_name.startswith("_"):
                            continue
                        if inspect.isroutine(member) and not (inspect.getdoc(member) or "").strip():
                            problems.append(
                                f"{module_name}.{name}.{member_name}: missing docstring"
                            )
            # Constants / type aliases only need to resolve.
    return problems


def audit_all_exports(module_names: Optional[List[str]] = None) -> List[str]:
    """Audit ``__all__``: every listed name resolves, module has a docstring."""
    problems: List[str] = []
    for module_name in module_names if module_names is not None else AUDITED_MODULES:
        module = importlib.import_module(module_name)
        if not (module.__doc__ or "").strip():
            problems.append(f"{module_name}: missing module docstring")
        exported = getattr(module, "__all__", None)
        if exported is None:
            problems.append(f"{module_name}: missing __all__")
            continue
        seen = set()
        for name in exported:
            if name in seen:
                problems.append(f"{module_name}.__all__ lists {name!r} twice")
            seen.add(name)
            if not hasattr(module, name):
                problems.append(f"{module_name}.__all__ lists {name!r}, which does not resolve")
    return problems


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    problems = check_markdown_links() + check_docstrings() + audit_all_exports()
    for problem in problems:
        print(f"FAIL {problem}")
    if problems:
        print(f"{len(problems)} documentation problem(s) found")
        return 1
    print(
        f"documentation checks passed: {len(_markdown_paths())} markdown file(s), "
        f"{len(DOCUMENTED_MODULES)} module(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
