"""Scalability sweep: translation, clock calculus and batched simulation.

Run with::

    python examples/scalability_sweep.py [--workers W]

Reproduces the scalability discussion of Section IV-E with synthetic models
from the case-study generator: the number of generated SIGNAL signals,
equations and synchronisation classes (clocks) is reported for increasing
model sizes — comparing the flat clock calculus with the modular one (same
classes, hierarchy and verdicts; the modular solver reuses the per-process
structure and memoises repeated subprocess shapes) — together with the
catalog of more than ten case studies and a many-scenario simulation batch
comparing backends and, when requested, sharding the batch over worker
processes.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.aadl.instance import Instantiator, instance_report
from repro.casestudies import CATALOG, GeneratorConfig, generate_case_study, scenario_sweep
from repro.core import TranslationConfig, translate_system
from repro.sig.calculus_modular import ModularClockCalculus
from repro.sig.clock_calculus import run_clock_calculus
from repro.sig.engine import simulate_batch


def sweep() -> None:
    print(
        f"{'model':<14s} {'threads':>7s} {'signals':>8s} {'equations':>9s} {'clocks':>7s} "
        f"{'flat (s)':>9s} {'modular (s)':>12s} {'speedup':>8s}"
    )
    for processes, threads in [(1, 4), (2, 4), (2, 8), (4, 8), (6, 10), (10, 10)]:
        config = GeneratorConfig(
            name=f"Sweep{processes}x{threads}",
            processes=processes,
            threads_per_process=threads,
            harmonic=True,
            seed=processes + threads,
        )
        generated = generate_case_study(config)
        root = Instantiator(generated.model, default_package=config.name).instantiate(
            generated.root_implementation
        )
        result = translate_system(root, TranslationConfig(include_scheduler=False))

        start = time.perf_counter()
        flat = result.system_model.flatten()
        calculus = run_clock_calculus(flat, flatten=False)
        flat_seconds = time.perf_counter() - start

        start = time.perf_counter()
        modular_calc = ModularClockCalculus(result.system_model)
        modular = modular_calc.run()
        modular_seconds = time.perf_counter() - start
        assert modular.same_analysis(calculus), "modular clock calculus diverged"

        print(
            f"{processes}x{threads:<12d} {config.total_threads:>7d} {flat.signal_count():>8d} "
            f"{flat.equation_count():>9d} {calculus.clock_count():>7d} "
            f"{flat_seconds:>9.2f} {modular_seconds:>12.2f} "
            f"{flat_seconds / max(modular_seconds, 1e-9):>7.1f}x"
        )


def catalog() -> None:
    print()
    print("Case-study catalog (more than ten designs, Section IV-E):")
    for entry in CATALOG:
        root = entry.instantiate()
        report = instance_report(root)
        print(f"  {entry.name:<20s} {report.threads:>3d} threads, {report.components:>4d} components — {entry.description}")


def simulation_batch(variants: int = 16, workers: int = 1) -> None:
    """Run one scheduled model over many scenarios: backends, then sharding."""
    print()
    print(f"Batched simulation ({variants} randomised scenarios, both backends):")
    config = GeneratorConfig(
        name="BatchDemo", processes=2, threads_per_process=4, harmonic=True, seed=21
    )
    generated = generate_case_study(config)
    root = Instantiator(generated.model, default_package=config.name).instantiate(
        generated.root_implementation
    )
    result = translate_system(root, TranslationConfig(include_scheduler=True))
    schedule = next(iter(result.schedules.values()))
    scenarios = scenario_sweep(
        result.system_model,
        length=schedule.simulation_length(2),
        variants=variants,
        seed=config.seed,
    )
    from repro.sig.engine import numpy_available

    backends = ["reference", "compiled"] + (["vectorized"] if numpy_available() else [])
    timings = {}
    for backend in backends:
        start = time.perf_counter()
        batch = simulate_batch(
            result.system_model, scenarios, strict=False, backend=backend, collect_errors=True
        )
        timings[backend] = time.perf_counter() - start
        print(f"  {backend:<10s} {batch.summary()}")
    if timings["compiled"] > 0:
        print(f"  compiled backend speedup: {timings['reference'] / timings['compiled']:.1f}x")
    if timings.get("vectorized"):
        print(
            "  vectorized backend speedup over compiled: "
            f"{timings['compiled'] / timings['vectorized']:.1f}x"
        )

    if workers != 1:
        print()
        print(f"Process-parallel sharding (compiled backend, workers={workers}):")
        start = time.perf_counter()
        sharded = simulate_batch(
            result.system_model,
            scenarios,
            strict=False,
            backend="compiled",
            collect_errors=True,
            workers=workers,
        )
        sharded_seconds = time.perf_counter() - start
        print(f"  {sharded.summary()}")
        print(
            f"  sequential {timings['compiled']:.2f}s vs sharded {sharded_seconds:.2f}s "
            f"({timings['compiled'] / max(sharded_seconds, 1e-9):.1f}x on "
            f"{os.cpu_count() or 1} core(s))"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also shard the simulation batch over this many worker processes "
        "(0 = one per core)",
    )
    args = parser.parse_args()
    sweep()
    catalog()
    simulation_batch(workers=args.workers)
