"""The paper's ProducerConsumer avionic case study, end to end (Section V).

Run with::

    python examples/producer_consumer_case_study.py [output_dir]

The example reproduces the workflow of Section V on the tutorial case study:
the AADL model is parsed and instantiated, the thread-level scheduler is
synthesised (hyper-period 24 ms), the model is translated to SIGNAL
(Figs. 3-6), the static analyses are run, the scheduled system is simulated
for two hyper-periods and a VCD trace plus the generated SIGNAL sources are
written to the output directory.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.casestudies import PRODUCER_CONSUMER_AADL
from repro.core import ToolchainOptions, run_toolchain
from repro.scheduling import export_affine_clocks
from repro.sig.printer import to_signal_source


def main(output_dir: str = "output_producer_consumer") -> None:
    os.makedirs(output_dir, exist_ok=True)

    options = ToolchainOptions(
        root_implementation="ProducerConsumerSystem.others",
        default_package="ProducerConsumer",
        simulate_hyperperiods=2,
        stimuli_periods={"sysEnv_pProdStart_stimulus": 4, "sysEnv_pConsStart_stimulus": 6},
    )
    result = run_toolchain(PRODUCER_CONSUMER_AADL, options)

    print(result.summary())

    # --- scheduler synthesis and affine clocks (Section IV-D) ------------
    schedule = result.schedules["ProducerConsumerSystem.Processor1"]
    export = export_affine_clocks(schedule)
    print()
    print(export.summary())

    # --- generated SIGNAL sources (Figs. 3-6) -----------------------------
    system_path = os.path.join(output_dir, "system.sig")
    with open(system_path, "w", encoding="utf-8") as handle:
        handle.write(to_signal_source(result.translation.system_model))
    thread_path = os.path.join(output_dir, "thProducer.sig")
    with open(thread_path, "w", encoding="utf-8") as handle:
        handle.write(to_signal_source(result.translation.thread_model("thProducer")))
    print()
    print(f"Generated SIGNAL sources: {system_path}, {thread_path}")

    # --- analyses ----------------------------------------------------------
    print()
    print(result.clock_report.summary())
    print()
    print(result.determinism.summary())
    print(result.deadlocks.summary())
    for processor, report in result.schedulability.items():
        print()
        print(f"[{processor}]")
        print(report.summary())

    # --- co-simulation trace (VCD) ------------------------------------------
    vcd_path = os.path.join(output_dir, "producer_consumer.vcd")
    signals = sorted(
        name
        for name in result.trace.signals()
        if name.endswith(("_dispatch", "_start", "_complete", "_Alarm"))
    )[:24]
    result.write_vcd(vcd_path, signals=signals)
    print()
    print(f"VCD co-simulation trace written to {vcd_path} ({len(signals)} signals)")

    alarms = [n for n in result.trace.signals() if n.endswith("_Alarm")]
    fired = {n: result.trace.clock_of(n) for n in alarms if result.trace.clock_of(n)}
    print("Deadline alarms during simulation:", fired if fired else "none")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "output_producer_consumer")
