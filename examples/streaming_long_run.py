"""Streaming a long-horizon simulation through trace sinks.

Run with::

    python examples/streaming_long_run.py [--instants N] [--vcd PATH] [--workers W]

The legacy API materialises every recorded flow, so memory grows with
``signals × instants`` and a million-instant run is out of reach.  This
example runs the same stateful model over a very long horizon three ways:

1. **streaming** — a :class:`repro.sig.sinks.StatisticsSink` (and, with
   ``--vcd``, a :class:`repro.sig.vcd.StreamingVcdSink` writing the
   waveform to disk as it happens) observes each instant and drops it:
   peak memory stays O(signals);
2. **materialised** — the classic ``SimulationTrace`` on a shorter horizon,
   to show the O(signals × instants) growth the sinks avoid;
3. **sharded batch** — ``simulate_batch(workers=W, sink_factory=...)``
   streams many scenarios in parallel worker processes and merges the
   per-scenario statistics in order, without materialising anything in any
   process.
"""

import argparse
import os
import sys
import time
import tracemalloc

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sig import builder as b
from repro.sig.engine import CompiledBackend, simulate_batch
from repro.sig.process import ProcessModel
from repro.sig.simulator import Scenario
from repro.sig.sinks import StatisticsSink, batch_statistics_summary
from repro.sig.values import BOOLEAN, EVENT, INTEGER
from repro.sig.vcd import StreamingVcdSink


def build_model() -> ProcessModel:
    """A small stateful model: counter, parity and a wrap-around register."""
    model = ProcessModel("streaming_demo")
    model.input("tick", EVENT)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.output("even", BOOLEAN)
    model.output("wrap", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.func("+", b.ref("zcount"), 1), b.clock("tick")))
    model.synchronise("count", "tick")
    model.define("even", b.func("=", b.func("%", b.ref("count"), 2), b.const(0)))
    model.define("wrap", b.func("%", b.ref("count"), 1000))
    return model


def peak_of(action):
    """Run *action* and report (result, peak KiB, seconds)."""
    tracemalloc.start()
    start = time.perf_counter()
    result = action()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, peak / 1024.0, seconds


def stats_factory(index: int) -> StatisticsSink:
    """One fresh statistics sink per batch scenario (picklable for workers)."""
    return StatisticsSink()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instants", type=int, default=1_000_000,
                        help="streaming horizon (default one million instants)")
    parser.add_argument("--vcd", help="also stream the VCD waveform to this path")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes of the batched sweep (default 2)")
    args = parser.parse_args()

    model = build_model()
    runner = CompiledBackend(model, strict=False)

    # ONE unbounded symbolic scenario serves every horizon in this example:
    # the periodic rule is O(1) memory, and the run length is chosen at
    # simulate time (length=).
    scenario = Scenario().set_periodic("tick", 1)
    runner.run(scenario, sinks=[StatisticsSink()], length=8)  # warm-up

    # 1. Streaming run: O(signals) memory however long the horizon — and,
    # since PR 5, O(1) scenario memory too (the input is a symbolic rule,
    # not a million-entry list).
    sinks = [StatisticsSink()]
    if args.vcd:
        sinks.append(StreamingVcdSink(args.vcd, timescale="1 ms"))
    _, peak_kib, seconds = peak_of(
        lambda: runner.run(scenario, sinks=sinks, length=args.instants)
    )
    stats = sinks[0].result()
    print(f"streamed {args.instants} instants in {seconds:.1f}s, "
          f"run peak {peak_kib:.0f} KiB (symbolic scenario: a few dozen bytes)")
    print(stats.summary())
    if args.vcd:
        print(f"waveform streamed to {args.vcd} "
              f"({os.path.getsize(args.vcd) / 1024.0:.0f} KiB)")

    # 2. The same model materialised on a 100x shorter horizon, for scale.
    trace, short_peak_kib, _ = peak_of(
        lambda: runner.run(scenario, length=max(args.instants // 100, 1))
    )
    print(f"\nmaterialising just {trace.length} instants peaks at "
          f"{short_peak_kib:.0f} KiB ({len(trace.flows)} flows kept in memory); "
          f"streaming the full horizon used {peak_kib:.0f} KiB")

    # 3. A sharded batch of long scenarios, each streamed inside a worker.
    # The symbolic scenarios ship to the workers as a few bytes of rules.
    scenarios = [Scenario().set_periodic("tick", period) for period in (1, 2, 4, 8)]
    batch = simulate_batch(
        model,
        scenarios,
        strict=False,
        workers=args.workers,
        sink_factory=stats_factory,
        length=max(args.instants // 10, 1),
    )
    print(f"\n{batch.summary()}")
    summary = batch_statistics_summary(batch.sink_results, "count")
    print(f"count presence per scenario: {summary['per_scenario']} "
          f"(total {summary['total']}, min {summary['min']}, max {summary['max']})")


if __name__ == "__main__":
    main()
