"""Scheduling exploration: RM vs EDF vs a Cheddar-like preemptive baseline.

Run with::

    python examples/scheduling_exploration.py

The example extracts the task set of the ProducerConsumer case study, then

* synthesises static non-preemptive schedules under RM and EDF and shows the
  resulting event tables,
* exports the RM schedule to affine clock relations (what gets verified in
  SIGNAL),
* runs the utilisation / response-time schedulability analysis and the
  synchronizability analysis between the multi-periodic threads,
* compares against the preemptive simulation baseline, including an overloaded
  variant with an inflated producer execution time to show how each scheduler
  reports infeasibility.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.casestudies import instantiate_producer_consumer
from repro.scheduling import (
    SchedulingError,
    SchedulingPolicy,
    StaticSchedulerConfig,
    analyse_schedulability,
    analyse_synchronizability,
    export_affine_clocks,
    simulate_preemptive,
    synthesise_schedule,
    task_set_from_instance,
)
from repro.scheduling.task import Task


def main() -> None:
    root = instantiate_producer_consumer()
    task_set = task_set_from_instance(root, ["prProdCons"])

    print("Task set extracted from the AADL model:")
    for task in task_set:
        print(f"  {task}")

    for policy in (SchedulingPolicy.RATE_MONOTONIC, SchedulingPolicy.EARLIEST_DEADLINE_FIRST):
        schedule = synthesise_schedule(task_set, StaticSchedulerConfig(policy=policy))
        print()
        print(f"Static non-preemptive schedule under {policy.value} "
              f"(hyper-period {schedule.hyperperiod_ms} ms, utilisation {schedule.processor_utilisation():.2f}):")
        for row in schedule.table():
            print(
                f"  {row['task']:<12s} job {row['job']}  dispatch {row['dispatch_ms']:>5.1f}  "
                f"start {row['start_ms']:>5.1f}  complete {row['complete_ms']:>5.1f}  "
                f"deadline {row['deadline_ms']:>5.1f}"
            )

    rm_schedule = synthesise_schedule(task_set)
    print()
    print(export_affine_clocks(rm_schedule).summary())

    print()
    print(analyse_schedulability(task_set).summary())
    print()
    print(analyse_synchronizability(task_set).summary())

    print()
    baseline = simulate_preemptive(task_set)
    print(baseline.summary())

    # An overloaded variant: inflate the producer's execution time and compare
    # how the two schedulers report the infeasibility.
    heavy = task_set_from_instance(root, ["prProdCons"])
    heavy.tasks = [
        Task(name=t.name, period_ms=t.period_ms, deadline_ms=t.deadline_ms,
             wcet_ms=3.0 if t.name == "thProducer" else t.wcet_ms)
        for t in heavy.tasks
    ]
    print()
    print("Variant with Compute_Execution_Time of thProducer raised to 3 ms:")
    try:
        synthesise_schedule(heavy)
        print("  static non-preemptive: feasible")
    except SchedulingError as error:
        print(f"  static non-preemptive: infeasible ({error})")
    print(f"  preemptive baseline  : {'feasible' if simulate_preemptive(heavy).schedulable else 'infeasible'}")


if __name__ == "__main__":
    main()
