"""Quickstart: from a small AADL model to analysis results in one call.

Run with::

    python examples/quickstart.py

The example defines a two-thread AADL process inline, runs the complete tool
chain (parse → instantiate → validate → schedule → translate to SIGNAL →
clock calculus / determinism / deadlock analyses → simulation → profiling)
and prints the resulting artefacts.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import ToolchainOptions, run_toolchain
from repro.sig.printer import to_signal_source

SENSOR_ACTUATOR_AADL = """
package Quickstart
public
  thread sensor
  features
    sample: out event data port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 5 ms;
    Deadline => 5 ms;
    Compute_Execution_Time => 0 ms .. 1 ms;
  end sensor;

  thread implementation sensor.impl
  end sensor.impl;

  thread actuator
  features
    command: in event data port {Queue_Size => 2;};
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Deadline => 10 ms;
    Compute_Execution_Time => 0 ms .. 2 ms;
  end actuator;

  thread implementation actuator.impl
  end actuator.impl;

  process control
  end control;

  process implementation control.impl
  subcomponents
    sensor: thread sensor.impl;
    actuator: thread actuator.impl;
  connections
    feed: port sensor.sample -> actuator.command;
  end control.impl;

  processor cpu
  end cpu;
  processor implementation cpu.impl
  end cpu.impl;

  system rig
  end rig;

  system implementation rig.impl
  subcomponents
    control: process control.impl;
    cpu0: processor cpu.impl;
  properties
    Actual_Processor_Binding => (reference (cpu0)) applies to control;
  end rig.impl;
end Quickstart;
"""


def main() -> None:
    options = ToolchainOptions(
        root_implementation="rig.impl",
        default_package="Quickstart",
        simulate_hyperperiods=2,
    )
    result = run_toolchain(SENSOR_ACTUATOR_AADL, options)

    print("=" * 72)
    print("Tool chain summary")
    print("=" * 72)
    print(result.summary())

    schedule = next(iter(result.schedules.values()))
    print()
    print("Static schedule (one hyper-period):")
    for row in schedule.table():
        print(
            f"  {row['task']:<10s} job {row['job']}  dispatch {row['dispatch_ms']:>5.1f} ms  "
            f"start {row['start_ms']:>5.1f} ms  complete {row['complete_ms']:>5.1f} ms"
        )

    print()
    print("Clock calculus:", "endochronous" if result.clock_report.endochronous else "multi-rooted")
    print("Determinism   :", "ok" if result.determinism.deterministic else "issues")
    print("Deadlocks     :", "none" if result.deadlocks.deadlock_free else "found")

    print()
    print("Generated SIGNAL model of the sensor thread:")
    print(to_signal_source(result.translation.thread_model("sensor"), include_submodels=False))

    sensor_dispatch = next(n for n in result.trace.signals() if n.endswith("sched_sensor_dispatch"))
    print("Sensor dispatch instants:", result.trace.clock_of(sensor_dispatch))


if __name__ == "__main__":
    main()
